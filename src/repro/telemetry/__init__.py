"""repro.telemetry — structured observability for the simulators.

The paper's claim is behavioural: adaptive protocols *detect* migratory
blocks on-line.  This package makes that behaviour observable instead
of only its end-of-run aggregates:

* :mod:`repro.telemetry.metrics` — a labeled metrics registry
  (counters, gauges, histograms) with a deterministic, commutative
  merge so ``--jobs N`` workers combine byte-identically;
* :mod:`repro.telemetry.events` — typed event records (coherence
  steps, classification transitions, spans) and their schema;
* :mod:`repro.telemetry.recorder` — machine instrumentation through
  the ``step_hook`` observer on both machines;
* :mod:`repro.telemetry.timeline` — per-block classification
  timelines rebuilt from events alone;
* :mod:`repro.telemetry.sinks` — JSONL event logs and the Prometheus
  text exporter;
* :mod:`repro.telemetry.runtime` — the ambient session and ``span()``
  timing used by the experiment runner and the fuzz harness;
* :mod:`repro.telemetry.cli` — the ``repro-stats`` renderer.

Everything is zero-overhead when off: without an active session and
with no recorder attached, the machines replay through their packed
fast paths untouched, and each instrumentation point costs one
``is None`` test.  See ``docs/OBSERVABILITY.md`` for the event schema,
metric naming, and exporter formats.
"""

from repro.telemetry.events import (
    ClassificationEvent,
    CoherenceEvent,
    SpanEvent,
    deterministic_records,
    validate_jsonl,
    validate_record,
    validate_records,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_dicts,
)
from repro.telemetry.recorder import (
    BusRecorder,
    DirectoryRecorder,
    MachineRecorder,
    attach_recorder,
)
from repro.telemetry.runtime import (
    TelemetrySession,
    active,
    attach,
    configure,
    session,
    shutdown,
    span,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    read_jsonl,
    write_prometheus,
)
from repro.telemetry.timeline import (
    BlockTimeline,
    build_timelines,
    classification_counts,
    hot_block_table,
    migratory_blocks,
    render_timelines,
)

__all__ = [
    "BlockTimeline",
    "BusRecorder",
    "ClassificationEvent",
    "CoherenceEvent",
    "Counter",
    "DirectoryRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MachineRecorder",
    "MemorySink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "SpanEvent",
    "TelemetrySession",
    "active",
    "attach",
    "attach_recorder",
    "build_timelines",
    "classification_counts",
    "configure",
    "deterministic_records",
    "hot_block_table",
    "merge_dicts",
    "migratory_blocks",
    "read_jsonl",
    "render_timelines",
    "session",
    "shutdown",
    "span",
    "validate_jsonl",
    "validate_record",
    "validate_records",
    "write_prometheus",
]
