"""Event sinks and exporters.

A *sink* is anything with a ``write(record: dict)`` method; recorders
and spans feed flat JSON-able dicts to it.  Two sinks are provided —
an in-memory list (:class:`MemorySink`) and an append-only JSON-lines
file (:class:`JsonlSink`) — plus the Prometheus text exporter for a
:class:`~repro.telemetry.metrics.MetricsRegistry`.

JSONL records are written with sorted keys and compact separators, so
logs of deterministic event streams compare byte-for-byte.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping

from repro.common.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry


def encode_record(record: Mapping) -> str:
    """One event record as its canonical JSON line (no newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class MemorySink:
    """Collects records in a list (``sink.records``)."""

    __slots__ = ("records",)

    def __init__(self):
        self.records: list[dict] = []

    def write(self, record: Mapping) -> None:
        self.records.append(dict(record))

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Appends records to a JSON-lines file, one object per line."""

    __slots__ = ("path", "_fh", "count")

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="ascii")
        #: Records written through this sink instance.
        self.count = 0

    def write(self, record: Mapping) -> None:
        self._fh.write(encode_record(record) + "\n")
        self.count += 1

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Yield the records of a JSONL event log.

    Raises:
        TelemetryError: on a line that is not a JSON object.
    """
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TelemetryError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            yield record


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Dump a registry in Prometheus text format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(registry.render_prometheus(), encoding="ascii")
    return path
