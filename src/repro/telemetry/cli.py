"""The ``repro-stats`` console entry point.

Usage::

    repro-stats summary  events.jsonl
    repro-stats timeline events.jsonl [--engine E] [--block B] [--top N]
    repro-stats hot      events.jsonl [--top N]
    repro-stats validate events.jsonl

Reads a JSONL event log produced by a telemetry session (the
``--telemetry-dir`` flag of ``repro-experiments`` / ``repro-fuzz``, or
a :class:`repro.telemetry.sinks.JsonlSink` fed by a machine recorder)
and renders human summaries: per-block classification timelines
("block 0x40: migratory from step 812, 3 relapses"), top-N hot-block
tables, and stream-level counts.  ``validate`` checks every record
against the event schema and exits non-zero on the first violation —
that is the CI smoke hook.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.analysis.report import format_table
from repro.common.errors import ReproError
from repro.common.version import add_version_argument
from repro.telemetry import events, timeline
from repro.telemetry.sinks import read_jsonl


def _load(path: Path) -> list[dict]:
    return list(read_jsonl(path))


def _cmd_summary(args) -> int:
    records = _load(args.log)
    by_type: Counter = Counter(r.get("type", "?") for r in records)
    rows = [[name, count] for name, count in sorted(by_type.items())]
    print(format_table(["record type", "count"], rows,
                       title=f"{args.log}: {len(records)} records"))
    coherence: Counter = Counter()
    for record in records:
        if record.get("type") == "coherence":
            coherence[(record["engine"], record["kind"])] += 1
    if coherence:
        print()
        print(format_table(
            ["engine", "kind", "steps"],
            [[e, k, n] for (e, k), n in sorted(coherence.items())],
            title="Coherence steps",
        ))
    counts = timeline.classification_counts(records)
    if counts:
        print()
        print(format_table(
            ["engine", "transition", "count"],
            [[e, t, n] for (e, t), n in sorted(counts.items())],
            title="Classification transitions",
        ))
        by_family = timeline.family_breakdown(records)
        if any(family != "-" for family, _ in by_family):
            print()
            print(format_table(
                ["family", "transition", "count"],
                [[f, t, n] for (f, t), n in sorted(by_family.items())],
                title="Classification transitions by protocol family",
            ))
        timelines = timeline.build_timelines(records)
        engines = sorted({engine for engine, _ in timelines})
        rows = [
            [engine, len(timeline.migratory_blocks(timelines, engine))]
            for engine in engines
        ]
        print()
        print(format_table(
            ["engine", "blocks migratory at end"], rows,
            title="Final classification (from events alone)",
        ))
    return 0


def _cmd_timeline(args) -> int:
    records = _load(args.log)
    timelines = timeline.build_timelines(records)
    if args.block is not None:
        keys = [key for key in sorted(timelines)
                if key[1] == args.block
                and (args.engine is None or key[0] == args.engine)]
        if not keys:
            print(f"no classification events for block {args.block:#x}")
            return 1
        for key in keys:
            t = timelines[key]
            print(t.describe())
            for start, end in t.intervals():
                until = "end of run" if end is None else f"step {end}"
                print(f"  migratory from step {start} until {until}")
            if t.evidence:
                print(f"  evidence below threshold at steps "
                      f"{', '.join(map(str, t.evidence))}")
        return 0
    print(timeline.render_timelines(timelines, engine=args.engine,
                                    top=args.top))
    return 0


def _cmd_hot(args) -> int:
    records = _load(args.log)
    print(timeline.hot_block_table(records, top=args.top))
    return 0


def _cmd_validate(args) -> int:
    count = events.validate_jsonl(args.log)
    print(f"{args.log}: {count} records, all schema-valid")
    return 0


def _parse_block(text: str) -> int:
    return int(text, 0)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Render telemetry event logs: classification "
        "timelines, hot-block tables, stream summaries.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="stream-level counts")
    p_summary.set_defaults(fn=_cmd_summary)

    p_timeline = sub.add_parser(
        "timeline", help="per-block classification timelines"
    )
    p_timeline.add_argument("--engine", help="restrict to one engine label")
    p_timeline.add_argument("--block", type=_parse_block, default=None,
                            help="one block (accepts 0x... hex)")
    p_timeline.add_argument("--top", type=int, default=20,
                            help="most-active blocks to show (default 20)")
    p_timeline.set_defaults(fn=_cmd_timeline)

    p_hot = sub.add_parser("hot", help="top-N blocks by coherence events")
    p_hot.add_argument("--top", type=int, default=10)
    p_hot.set_defaults(fn=_cmd_hot)

    p_validate = sub.add_parser(
        "validate", help="check every record against the event schema"
    )
    p_validate.set_defaults(fn=_cmd_validate)

    for p in (p_summary, p_timeline, p_hot, p_validate):
        p.add_argument("log", type=Path, help="JSONL event log")

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"repro-stats: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro-stats: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
