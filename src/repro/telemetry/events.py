"""Typed telemetry event records and their schema.

Every record on the event stream is a flat JSON object with a ``type``
field; the recognised types are:

``coherence``
    One protocol-visible step (read miss, write miss, or upgrade) on one
    machine — the same points the built-in coherence checker audits.
``classification``
    A protocol classification transition for one block: ``promote``
    (replicate -> migrate), ``demote`` (migrate -> replicate),
    ``evidence`` (a hysteresis step: the evidence streak advanced
    without reaching the policy threshold), or ``pattern`` (the
    block's observational access-pattern label changed — emitted by
    machines exposing a richer taxonomy, e.g. the pattern-classifier
    family's producer-consumer / false-sharing labels).  These are the
    records the per-block classification timelines are rebuilt from.
    Each record carries the protocol family it was observed under in
    its ``family`` field (``-`` for ad-hoc unregistered protocols).
``span``
    A wall-clock timing span around a harness stage (experiment, trace
    replay, fuzz-oracle stage).  Span durations are *not* part of the
    deterministic-merge contract — wall time is not reproducible — so
    consumers that compare event logs byte-for-byte must filter them
    out (:func:`deterministic_records` does).
``progress``
    Campaign progress (the fuzz CLI emits one per case).

:func:`validate_record` checks one record against the schema and
:func:`validate_jsonl` checks a whole log; both raise
:class:`repro.common.errors.TelemetryError` naming the offending field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.common.errors import TelemetryError

#: Event-schema version stamped nowhere (the stream is flat records);
#: bump when a required field changes meaning.
SCHEMA_VERSION = 1

#: Coherence step kinds, matching the cache-stats counters they bump.
COHERENCE_KINDS = ("read_miss", "write_miss", "upgrade")

#: Classification transition kinds.
TRANSITIONS = ("promote", "demote", "evidence", "pattern")

#: Required fields (name -> type) per record type.  ``int`` accepts
#: bools being excluded explicitly; floats accept ints.
SCHEMA: dict[str, dict[str, type]] = {
    "coherence": {
        "step": int, "engine": str, "kind": str, "proc": int, "block": int,
    },
    "classification": {
        "step": int, "engine": str, "block": int, "proc": int,
        "transition": str, "from": str, "to": str, "streak": int,
    },
    "span": {"name": str, "seconds": float},
    "progress": {"campaign": str},
}


@dataclass(frozen=True, slots=True)
class CoherenceEvent:
    """One protocol-visible step on one machine."""

    step: int
    engine: str
    kind: str
    proc: int
    block: int

    def to_record(self) -> dict:
        return {
            "type": "coherence", "step": self.step, "engine": self.engine,
            "kind": self.kind, "proc": self.proc, "block": self.block,
        }


@dataclass(frozen=True, slots=True)
class ClassificationEvent:
    """One classification transition for one block.

    ``from_state``/``to_state`` are the engine's own state names (the
    directory machine's :class:`~repro.directory.entry.DirState` values,
    or ``migratory``/``non-migratory`` for the snooping machine, whose
    classification lives distributed in the cache-line states).  For
    ``pattern`` transitions they are the taxonomy labels instead.
    ``family`` is the registered protocol-family name the event was
    observed under (``-`` when the protocol is not a registered family).
    """

    step: int
    engine: str
    block: int
    proc: int
    transition: str
    from_state: str
    to_state: str
    streak: int = 0
    family: str = "-"

    def to_record(self) -> dict:
        return {
            "type": "classification", "step": self.step,
            "engine": self.engine, "block": self.block, "proc": self.proc,
            "transition": self.transition, "from": self.from_state,
            "to": self.to_state, "streak": self.streak,
            "family": self.family,
        }


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One wall-clock timing span around a harness stage."""

    name: str
    seconds: float
    meta: Mapping[str, object] = field(default_factory=dict)

    def to_record(self) -> dict:
        record = {"type": "span", "name": self.name,
                  "seconds": round(self.seconds, 6)}
        record.update({k: v for k, v in self.meta.items()
                       if k not in ("type", "name", "seconds")})
        return record


def validate_record(record: Mapping) -> None:
    """Check one event record against the schema.

    Raises:
        TelemetryError: naming the missing or mistyped field.
    """
    if not isinstance(record, Mapping):
        raise TelemetryError(f"event record must be an object, got {record!r}")
    rtype = record.get("type")
    if rtype not in SCHEMA:
        raise TelemetryError(
            f"unknown event type {rtype!r} (expected one of {sorted(SCHEMA)})"
        )
    for name, expected in SCHEMA[rtype].items():
        if name not in record:
            raise TelemetryError(f"{rtype} record missing field {name!r}")
        value = record[name]
        if isinstance(value, bool) or not isinstance(
            value, (int, float) if expected is float else expected
        ):
            raise TelemetryError(
                f"{rtype} record field {name!r} must be "
                f"{expected.__name__}, got {value!r}"
            )
    if rtype == "coherence" and record["kind"] not in COHERENCE_KINDS:
        raise TelemetryError(
            f"coherence record kind {record['kind']!r} not in "
            f"{COHERENCE_KINDS}"
        )
    if rtype == "classification" and record["transition"] not in TRANSITIONS:
        raise TelemetryError(
            f"classification record transition {record['transition']!r} "
            f"not in {TRANSITIONS}"
        )


def validate_records(records: Iterable[Mapping]) -> int:
    """Validate every record; returns the number checked."""
    count = 0
    for record in records:
        validate_record(record)
        count += 1
    return count


def validate_jsonl(path) -> int:
    """Validate a JSONL event log on disk; returns the record count."""
    from repro.telemetry.sinks import read_jsonl

    return validate_records(read_jsonl(path))


def deterministic_records(
    records: Iterable[Mapping],
) -> Iterator[Mapping]:
    """Drop the wall-clock (span) records from an event stream.

    What remains — coherence, classification, and progress records — is
    a pure function of the replayed traces, so two logs of the same run
    agree byte-for-byte after this filter.
    """
    for record in records:
        if record.get("type") != "span":
            yield record
