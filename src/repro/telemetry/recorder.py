"""Machine instrumentation: ``step_hook`` -> typed event stream.

A recorder installs itself as a machine's ``step_hook`` and, at every
protocol-visible step, emits a :class:`~repro.telemetry.events.CoherenceEvent`
plus — whenever the step changed the block's migratory classification —
a :class:`~repro.telemetry.events.ClassificationEvent`.  Classification
is read straight from the engine's own state after the step:

* the directory machine's from the directory entry
  (:meth:`DirectoryProtocol.peek`), including the hysteresis evidence
  streak, so ``evidence`` events mark every partial step toward the
  policy threshold;
* the snooping machine's from the cache-line states (a block is
  migratory when some cache holds it Migratory-Clean/-Dirty — the
  classification is distributed, exactly as in the hardware).

Installing a hook forces the machine onto the generic per-access replay
path (both machines guarantee this; see their ``run`` docstrings), so
recorded runs are slower but statistically identical to bare ones.  A
machine with *no* recorder attached pays nothing at all.

One sampling caveat, inherent to observing through the access stream:
a transition caused purely by an eviction of an unrelated block (the
``note_uncached`` path of a forgetting policy) is only observed — and
stamped — at the block's *next* protocol-visible step.  The paper's
directory policies remember classification across uncached intervals,
so for them the caveat is moot.
"""

from __future__ import annotations

from repro.common.errors import TelemetryError
from repro.directory.entry import DirState
from repro.telemetry.events import ClassificationEvent, CoherenceEvent
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.sinks import MemorySink

#: Metric names emitted by recorders (documented in docs/OBSERVABILITY.md).
STEPS_TOTAL = "repro_steps_total"
COHERENCE_TOTAL = "repro_coherence_events_total"
TRANSITIONS_TOTAL = "repro_classification_transitions_total"
MIGRATORY_BLOCKS = "repro_migratory_blocks"


class MachineRecorder:
    """Base recorder: step accounting and transition detection.

    Use :func:`attach_recorder` (or a telemetry session's ``attach``)
    rather than instantiating directly — it picks the right subclass
    for the machine and installs the hook.
    """

    __slots__ = ("engine", "family", "registry", "sink", "steps",
                 "migratory_blocks", "_blocks", "_patterns", "_counts")

    def __init__(self, engine: str, registry: MetricsRegistry | None = None,
                 sink=None, family: str = "-"):
        self.engine = engine
        #: Registered protocol-family name ("-" for ad-hoc protocols);
        #: stamped on every metric (``repro_protocol_family``) and
        #: classification record for per-family breakdowns.
        self.family = family
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.sink = sink if sink is not None else MemorySink()
        #: Protocol-visible steps observed.
        self.steps = 0
        #: Blocks currently classified migratory (as observed).
        self.migratory_blocks: set[int] = set()
        # block -> (migratory, streak, state name) after its last step.
        self._blocks: dict[int, tuple[bool, int, str]] = {}
        # block -> taxonomy label, for protocols exposing classify().
        self._patterns: dict[int, str] = {}
        # cache-stats snapshot used to infer each step's kind.
        self._counts = (0, 0, 0)

    # -- engine-specific classification readout -------------------------

    def _classify(self, machine, block: int) -> tuple[bool, int, str]:
        raise NotImplementedError

    def _initial(self, machine) -> tuple[bool, int, str]:
        raise NotImplementedError

    # -- the step_hook entry point --------------------------------------

    def hook(self, machine, proc: int, block: int) -> None:
        """The ``step_hook`` callable; fires after a protocol step."""
        stats = machine.cache_stats
        counts = (stats.read_misses, stats.write_misses, stats.upgrades)
        prev_counts = self._counts
        self._counts = counts
        step = stats.accesses
        if counts[0] > prev_counts[0]:
            kind = "read_miss"
        elif counts[1] > prev_counts[1]:
            kind = "write_miss"
        elif counts[2] > prev_counts[2]:
            kind = "upgrade"
        else:
            # A bus-silent write hit (the snooping machine's hook also
            # fires there): no protocol transition, nothing to record.
            return
        self.steps += 1
        registry = self.registry
        registry.counter(
            STEPS_TOTAL, "protocol-visible steps observed"
        ).inc(engine=self.engine, repro_protocol_family=self.family)
        registry.counter(
            COHERENCE_TOTAL, "coherence steps by kind"
        ).inc(engine=self.engine, kind=kind,
              repro_protocol_family=self.family)
        self.sink.write(
            CoherenceEvent(step, self.engine, kind, proc, block).to_record()
        )

        classify = getattr(machine.protocol, "classify", None)
        if classify is not None:
            # A taxonomy-exposing protocol (the pattern-classifier
            # family): emit a ``pattern`` event whenever the block's
            # label changes, independent of migratory transitions.
            label = classify(block)
            prev_label = self._patterns.get(block, "untouched")
            if label != prev_label:
                self._patterns[block] = label
                registry.counter(
                    TRANSITIONS_TOTAL,
                    "classification transitions by direction",
                ).inc(engine=self.engine, direction="pattern",
                      repro_protocol_family=self.family)
                self.sink.write(
                    ClassificationEvent(
                        step, self.engine, block, proc, "pattern",
                        prev_label, label, 0, self.family,
                    ).to_record()
                )

        migratory, streak, state = self._classify(machine, block)
        prev = self._blocks.get(block)
        if prev is None:
            prev = self._initial(machine)
        prev_migratory, prev_streak, prev_state = prev
        self._blocks[block] = (migratory, streak, state)
        # The sampled migratory set tracks every observation, not just
        # flips: under an initially-migratory policy a block can be
        # migratory at its first sample without ever transitioning.
        before = len(self.migratory_blocks)
        if migratory:
            self.migratory_blocks.add(block)
        else:
            self.migratory_blocks.discard(block)
        if len(self.migratory_blocks) != before:
            registry.gauge(
                MIGRATORY_BLOCKS, "blocks currently classified migratory"
            ).set(len(self.migratory_blocks), engine=self.engine,
                  repro_protocol_family=self.family)
        if migratory != prev_migratory:
            transition = "promote" if migratory else "demote"
        elif streak > prev_streak:
            # Hysteresis progress: evidence accrued below the threshold.
            transition = "evidence"
        else:
            return
        registry.counter(
            TRANSITIONS_TOTAL, "classification transitions by direction"
        ).inc(engine=self.engine, direction=transition,
              repro_protocol_family=self.family)
        self.sink.write(
            ClassificationEvent(
                step, self.engine, block, proc, transition,
                prev_state, state, streak, self.family,
            ).to_record()
        )

    # -- conveniences ----------------------------------------------------

    @property
    def records(self) -> list[dict]:
        """The collected records (memory-sink recorders only)."""
        if not isinstance(self.sink, MemorySink):
            raise TelemetryError(
                "records are only buffered on a MemorySink recorder"
            )
        return self.sink.records


class DirectoryRecorder(MachineRecorder):
    """Recorder for :class:`repro.system.machine.DirectoryMachine`."""

    __slots__ = ()

    def _classify(self, machine, block: int) -> tuple[bool, int, str]:
        ent = machine.protocol.peek(block)
        if ent is None:
            return self._initial(machine)
        return ent.migratory, ent.streak, ent.state.value

    def _initial(self, machine) -> tuple[bool, int, str]:
        if machine.policy.initial_migratory:
            return True, 0, DirState.UNCACHED_MIG.value
        return False, 0, DirState.UNCACHED.value


class BusRecorder(MachineRecorder):
    """Recorder for :class:`repro.snooping.machine.BusMachine`."""

    __slots__ = ()

    def _classify(self, machine, block: int) -> tuple[bool, int, str]:
        for cache in machine.caches:
            line = cache.lookup(block)
            if line is not None and line.state.is_migratory:
                return True, 0, "migratory"
        return False, 0, "non-migratory"

    def _initial(self, machine) -> tuple[bool, int, str]:
        if getattr(machine.protocol, "initial_migratory", False):
            return True, 0, "migratory"
        return False, 0, "non-migratory"


def attach_recorder(
    machine,
    registry: MetricsRegistry | None = None,
    sink=None,
    engine: str | None = None,
) -> MachineRecorder:
    """Install a recorder as ``machine.step_hook``; returns the recorder.

    The machine must not already have a hook (two observers would each
    see half a stream); the engine label defaults to the oracle-style
    ``directory[policy]`` / ``bus[protocol]`` form.

    Raises:
        TelemetryError: on an unknown machine type or an occupied hook.
    """
    from repro.protocols import registry as families
    from repro.snooping.machine import BusMachine
    from repro.system.machine import DirectoryMachine

    if getattr(machine, "step_hook", None) is not None:
        raise TelemetryError(
            "machine already has a step_hook installed; refusing to replace it"
        )
    if isinstance(machine, DirectoryMachine):
        fam = families.family_of_policy(machine.policy)
        recorder = DirectoryRecorder(
            engine or f"directory[{machine.policy.name}]", registry, sink,
            family=fam.name if fam is not None else "-",
        )
    elif isinstance(machine, BusMachine):
        fam = families.family_of_protocol(machine.protocol)
        recorder = BusRecorder(
            engine or f"bus[{machine.protocol.name}]", registry, sink,
            family=fam.name if fam is not None else "-",
        )
    else:
        raise TelemetryError(
            f"cannot attach a recorder to {type(machine).__name__}"
        )
    stats = machine.cache_stats
    recorder._counts = (
        stats.read_misses, stats.write_misses, stats.upgrades
    )
    machine.step_hook = recorder.hook
    return recorder
