"""Labeled metrics registry with a deterministic merge.

A :class:`MetricsRegistry` holds named metric families — counters,
gauges, and histograms — each fanned out into labeled series, in the
style of a Prometheus client library.  Two properties drive the design:

1. **Zero overhead when off.**  A registry constructed with
   ``enabled=False`` (or the shared :data:`NULL_REGISTRY`) hands out
   no-op metric objects whose ``inc``/``set``/``observe`` bodies are a
   single ``pass``; instrumented code pays one attribute call and
   nothing else.  The machines themselves pay *literally* nothing: with
   no ``step_hook`` installed they replay through the packed fast path
   untouched.

2. **Deterministic merge.**  Worker processes of a ``--jobs N`` sweep
   each build their own registry and ship it back as a plain dict
   (:meth:`MetricsRegistry.to_dict`); :func:`merge_dicts` folds any
   number of payloads into one registry with commutative, associative
   rules (counters and histograms sum, gauges take the max), so the
   merged registry — and its :meth:`render_prometheus` text, which
   sorts every family and series — is byte-identical for any job count
   and any merge order.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Mapping

from repro.common.errors import TelemetryError

#: Default histogram bucket upper bounds (seconds-flavoured; spans use
#: these).  The implicit ``+Inf`` bucket is always present.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: The recognised metric kinds, in render order of their TYPE comments.
KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _NullMetric:
    """No-op stand-in handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass


_NULL_METRIC = _NullMetric()


class Counter:
    """A monotonically increasing metric family."""

    kind = "counter"
    __slots__ = ("name", "help", "series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        #: label key -> accumulated value.
        self.series: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (must be non-negative) to one labeled series."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 when never bumped)."""
        return self.series.get(_label_key(labels), 0)


class Gauge:
    """A point-in-time value; merges take the maximum across workers."""

    kind = "gauge"
    __slots__ = ("name", "help", "series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite one labeled series."""
        self.series[_label_key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        """Adjust one labeled series (gauges may go down; pass negative)."""
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 when never set)."""
        return self.series.get(_label_key(labels), 0)


class Histogram:
    """A bucketed distribution (cumulative buckets, Prometheus-style)."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "series")

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise TelemetryError(f"histogram {self.name} needs >= 1 bucket")
        #: label key -> [per-bucket counts..., +Inf count, sum].
        self.series: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the right cumulative bucket."""
        key = _label_key(labels)
        cells = self.series.get(key)
        if cells is None:
            cells = self.series[key] = [0.0] * (len(self.buckets) + 2)
        cells[bisect_left(self.buckets, value)] += 1
        cells[-1] += value

    def count(self, **labels) -> int:
        """Total observations for one labeled series."""
        cells = self.series.get(_label_key(labels))
        return int(sum(cells[:-1])) if cells else 0

    def sum(self, **labels) -> float:
        """Sum of observed values for one labeled series."""
        cells = self.series.get(_label_key(labels))
        return cells[-1] if cells else 0.0


class MetricsRegistry:
    """A named collection of metric families.

    Families are created on first use (``registry.counter(name)``) and
    memoized by name; asking for an existing name with a different kind
    (or different histogram buckets) raises :class:`TelemetryError`
    rather than silently splitting the series.
    """

    __slots__ = ("enabled", "_families")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    # Family constructors
    # ------------------------------------------------------------------

    def _family(self, cls, name: str, help: str, **kw):
        if not self.enabled:
            return _NULL_METRIC
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(name, help, **kw)
        elif family.kind != cls.kind:
            raise TelemetryError(
                f"metric {name} already registered as a {family.kind}, "
                f"not a {cls.kind}"
            )
        elif kw.get("buckets") is not None and \
                tuple(sorted(kw["buckets"])) != family.buckets:
            raise TelemetryError(
                f"histogram {name} already registered with different buckets"
            )
        return family

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter family called ``name`` (created on first use)."""
        return self._family(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge family called ``name`` (created on first use)."""
        return self._family(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram family called ``name`` (created on first use)."""
        return self._family(Histogram, name, help, buckets=buckets)

    def families(self) -> list[Counter | Gauge | Histogram]:
        """All families, sorted by name (deterministic iteration)."""
        return [self._families[name] for name in sorted(self._families)]

    # ------------------------------------------------------------------
    # Serialization (the worker-merge wire format)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain, picklable/JSON-able snapshot of every series."""
        out: dict = {}
        for family in self.families():
            entry: dict = {
                "kind": family.kind,
                "help": family.help,
                "series": [
                    [list(map(list, key)), value]
                    for key, value in sorted(family.series.items())
                ],
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
            out[family.name] = entry
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        registry.merge_dict(payload)
        return registry

    def _declare(self, name: str, entry: Mapping):
        """Create or fetch the family a payload entry describes."""
        kind = entry["kind"]
        if kind == "counter":
            return self.counter(name, entry.get("help", ""))
        if kind == "gauge":
            return self.gauge(name, entry.get("help", ""))
        if kind == "histogram":
            return self.histogram(
                name, entry.get("help", ""),
                buckets=entry.get("buckets", DEFAULT_BUCKETS),
            )
        raise TelemetryError(f"metric {name}: unknown kind {kind!r}")

    def merge_dict(self, payload: Mapping) -> None:
        """Fold one :meth:`to_dict` payload into this registry.

        Counters and histogram cells sum; gauges keep the maximum.  For
        a byte-identical result regardless of merge *order*, use
        :func:`merge_dicts`, which reduces every additive series with
        ``math.fsum`` instead of pairwise float addition.
        """
        for name in sorted(payload):
            entry = payload[name]
            kind = entry["kind"]
            family = self._declare(name, entry)
            if family is _NULL_METRIC:
                continue
            for raw_key, value in entry["series"]:
                key = tuple(tuple(pair) for pair in raw_key)
                if kind == "counter":
                    family.series[key] = family.series.get(key, 0) + value
                elif kind == "gauge":
                    current = family.series.get(key)
                    family.series[key] = (
                        value if current is None else max(current, value)
                    )
                else:
                    cells = family.series.get(key)
                    if cells is None:
                        family.series[key] = list(value)
                    elif len(cells) != len(value):
                        raise TelemetryError(
                            f"histogram {name}: bucket count mismatch in merge"
                        )
                    else:
                        for i, v in enumerate(value):
                            cells[i] += v

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (same rules as payloads)."""
        self.merge_dict(other.to_dict())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Families render in name order and series in label order, so the
        text is byte-identical for equal registries however they were
        accumulated or merged.
        """
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                self._render_histogram(family, lines)
                continue
            for key, value in sorted(family.series.items()):
                lines.append(
                    f"{family.name}{_render_labels(key)} "
                    f"{_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram(family: Histogram, lines: list[str]) -> None:
        for key, cells in sorted(family.series.items()):
            cumulative = 0.0
            for bound, count in zip(family.buckets, cells):
                cumulative += count
                le = _label_key(dict(key) | {"le": _format_value(bound)})
                lines.append(
                    f"{family.name}_bucket{_render_labels(le)} "
                    f"{_format_value(cumulative)}"
                )
            cumulative += cells[len(family.buckets)]
            le = _label_key(dict(key) | {"le": "+Inf"})
            lines.append(
                f"{family.name}_bucket{_render_labels(le)} "
                f"{_format_value(cumulative)}"
            )
            lines.append(
                f"{family.name}_count{_render_labels(key)} "
                f"{_format_value(cumulative)}"
            )
            lines.append(
                f"{family.name}_sum{_render_labels(key)} "
                f"{_format_value(cells[-1])}"
            )


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + body + "}"


def merge_dicts(payloads: Iterable[Mapping]) -> MetricsRegistry:
    """Merge any number of :meth:`MetricsRegistry.to_dict` payloads.

    This is the worker-merge entry point: each ``parallel_map`` worker
    returns its registry as a dict, and the parent folds them all into
    one registry whose contents (and rendered text) are independent of
    the worker count and completion order.  Additive series (counters
    and histogram cells) are reduced with ``math.fsum``, whose exactly
    rounded result does not depend on addend order — naive pairwise
    float addition would leak the merge order into the last ulp of
    histogram sums.
    """
    registry = MetricsRegistry()
    pending: dict[tuple[str, tuple], list] = {}
    for payload in payloads:
        for name in sorted(payload):
            entry = payload[name]
            family = registry._declare(name, entry)
            for raw_key, value in entry["series"]:
                key = tuple(tuple(pair) for pair in raw_key)
                if family.kind == "gauge":
                    current = family.series.get(key)
                    family.series[key] = (
                        value if current is None else max(current, value)
                    )
                else:
                    pending.setdefault((name, key), []).append(value)
    for (name, key), values in pending.items():
        family = registry._families[name]
        if family.kind == "counter":
            family.series[key] = math.fsum(values)
        else:
            if len({len(v) for v in values}) > 1:
                raise TelemetryError(
                    f"histogram {name}: bucket count mismatch in merge"
                )
            family.series[key] = [math.fsum(col) for col in zip(*values)]
    return registry


# ----------------------------------------------------------------------
# Exposition-text aggregation (the cluster router's /metrics)
# ----------------------------------------------------------------------

#: Histogram sample suffixes (their family is the base name).
_HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _inject_label(sample: str, label: str, value: str) -> str:
    """Add ``label="value"`` to one exposition sample line."""
    body = f'{label}="{_escape_label(value)}"'
    name_part, _, value_part = sample.rpartition(" ")
    if "{" in name_part:
        name, _, rest = name_part.partition("{")
        return f"{name}{{{body},{rest} {value_part}"
    return f"{name_part}{{{body}}} {value_part}"


def combine_prometheus_texts(parts: Iterable[tuple[str, str]],
                             label: str = "shard") -> str:
    """Aggregate several Prometheus expositions into one.

    ``parts`` is an iterable of ``(label_value, exposition_text)``
    pairs — one per shard of a fleet, plus the router's own registry
    rendered under its own label.  Every sample is relabeled with
    ``label="label_value"`` so per-shard series stay distinguishable,
    and families (HELP/TYPE comments) are deduplicated and emitted
    once.  Output is sorted by family then sample line, so equal
    inputs render byte-identically whatever order the shards answered
    in.  Cross-shard sums are the scraper's job (or
    :func:`repro.service.client.metric_value`, which sums every series
    whose labels include the queried subset).
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    raw_samples: list[tuple[str, str]] = []  # (sample name, rendered line)
    for label_value, text in parts:
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                fields = line.split(None, 3)
                if len(fields) >= 3 and fields[1] in ("HELP", "TYPE"):
                    target = helps if fields[1] == "HELP" else types
                    target.setdefault(fields[2], line)
                continue
            name_part = line.rpartition(" ")[0]
            name = name_part.partition("{")[0]
            raw_samples.append(
                (name, _inject_label(line, label, str(label_value)))
            )

    def family(name: str) -> str:
        for suffix in _HISTOGRAM_SUFFIXES:
            base = name[: -len(suffix)]
            if name.endswith(suffix) and types.get(base, "").endswith(
                    "histogram"):
                return base
        return name

    grouped: dict[str, list[str]] = {}
    for name, line in raw_samples:
        grouped.setdefault(family(name), []).append(line)
    lines: list[str] = []
    for base in sorted(grouped):
        if base in helps:
            lines.append(helps[base])
        if base in types:
            lines.append(types[base])
        lines.extend(sorted(grouped[base]))
    return "\n".join(lines) + ("\n" if lines else "")


#: Shared disabled registry: instrument against this by default and the
#: instrumentation costs one no-op method call.
NULL_REGISTRY = MetricsRegistry(enabled=False)
