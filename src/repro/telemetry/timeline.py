"""Per-block classification timelines, rebuilt from the event stream.

Given the ``classification`` records of a JSONL event log (or a
memory-sink recorder), :func:`build_timelines` reconstructs, for every
``(engine, block)`` pair, the full promote/demote history — when the
block was first classified migratory, how often it relapsed, and where
it ended up.  This is the observable form of the paper's central claim:
the adaptive protocols *detect* migratory blocks on-line, and this
module shows exactly when and for how long.

:func:`render_timelines` prints the human summary the ``repro-stats``
CLI shows, e.g.::

    block 0x40 [directory[basic]]: migratory from step 812, 3 relapses
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.report import format_table


@dataclass(slots=True)
class BlockTimeline:
    """Classification history of one block on one engine."""

    engine: str
    block: int
    #: Classification before the first recorded transition.
    initial_migratory: bool = False
    #: Steps at which the block was promoted to migratory.
    promotions: list[int] = field(default_factory=list)
    #: Steps at which the block was demoted back to replicate mode.
    demotions: list[int] = field(default_factory=list)
    #: Steps at which hysteresis evidence accrued below the threshold.
    evidence: list[int] = field(default_factory=list)
    #: ``(step, label)`` pattern-taxonomy changes (classifier family).
    patterns: list[tuple[int, str]] = field(default_factory=list)
    #: Protocol family the events were observed under ("-" if none).
    family: str = "-"

    @property
    def final_migratory(self) -> bool:
        """Classification after the last recorded transition."""
        last_promote = self.promotions[-1] if self.promotions else None
        last_demote = self.demotions[-1] if self.demotions else None
        if last_promote is None and last_demote is None:
            return self.initial_migratory
        if last_demote is None:
            return True
        if last_promote is None:
            return False
        return last_promote > last_demote

    @property
    def ever_migratory(self) -> bool:
        """Whether the block was classified migratory at any point."""
        return self.initial_migratory or bool(self.promotions)

    @property
    def final_pattern(self) -> str | None:
        """The last observed taxonomy label, if any were recorded."""
        return self.patterns[-1][1] if self.patterns else None

    @property
    def relapses(self) -> int:
        """Promotions after the block had already been migratory once.

        A block that starts migratory (aggressive policy) counts every
        promotion as a relapse; one that earns its first promotion
        counts the promotions after it.
        """
        if self.initial_migratory:
            return len(self.promotions)
        return max(0, len(self.promotions) - 1)

    def intervals(self) -> list[tuple[int, int | None]]:
        """Migratory intervals as ``(start_step, end_step)`` pairs.

        An open final interval has ``end_step`` None.  The initial
        classification opens an interval at step 0.
        """
        transitions = sorted(
            [(step, True) for step in self.promotions]
            + [(step, False) for step in self.demotions]
        )
        spans: list[tuple[int, int | None]] = []
        start: int | None = 0 if self.initial_migratory else None
        for step, promoted in transitions:
            if promoted and start is None:
                start = step
            elif not promoted and start is not None:
                spans.append((start, step))
                start = None
        if start is not None:
            spans.append((start, None))
        return spans

    def describe(self) -> str:
        """One summary line, repro-stats style."""
        label = f"block {self.block:#x} [{self.engine}]"
        pattern = (
            f", pattern: {self.final_pattern}" if self.patterns else ""
        )
        if not self.ever_migratory:
            if self.evidence:
                return (
                    f"{label}: never migratory "
                    f"({len(self.evidence)} evidence event(s) below "
                    f"threshold){pattern}"
                )
            return f"{label}: never migratory{pattern}"
        spans = self.intervals()
        first = spans[0][0]
        origin = (
            "migratory from the start" if self.initial_migratory
            else f"migratory from step {first}"
        )
        parts = [origin]
        if self.relapses:
            parts.append(f"{self.relapses} relapse(s)")
        if not self.final_migratory:
            parts.append(f"demoted for good at step {self.demotions[-1]}")
        return f"{label}: " + ", ".join(parts) + pattern


def build_timelines(
    records: Iterable[Mapping],
) -> dict[tuple[str, int], BlockTimeline]:
    """Rebuild per-block timelines from classification records.

    Non-classification records are ignored, so the full event stream
    (or a whole JSONL log) can be passed directly.
    """
    timelines: dict[tuple[str, int], BlockTimeline] = {}
    for record in records:
        if record.get("type") != "classification":
            continue
        key = (record["engine"], record["block"])
        timeline = timelines.get(key)
        if timeline is None:
            timeline = timelines[key] = BlockTimeline(*key)
            # The first transition's source state reveals the initial
            # classification (a first demote means it started migratory).
            timeline.initial_migratory = record["transition"] == "demote"
        family = record.get("family", "-")
        if family != "-":
            timeline.family = family
        step = record["step"]
        transition = record["transition"]
        if transition == "promote":
            timeline.promotions.append(step)
        elif transition == "demote":
            timeline.demotions.append(step)
        elif transition == "pattern":
            timeline.patterns.append((step, record["to"]))
        else:
            timeline.evidence.append(step)
    return timelines


def classification_counts(
    records: Iterable[Mapping],
) -> Counter:
    """Transition totals per (engine, direction) from events alone.

    The promote/demote totals here must equal the machine-side
    aggregate counters (``DirectoryProtocol.transitions``) for the same
    run — the reconstruction property the acceptance tests assert.
    """
    counts: Counter = Counter()
    for record in records:
        if record.get("type") == "classification":
            counts[(record["engine"], record["transition"])] += 1
    return counts


def family_breakdown(
    records: Iterable[Mapping],
) -> Counter:
    """Transition totals per (protocol family, direction).

    Classification records carry the registered family name they were
    observed under (``-`` for ad-hoc protocols and for logs written
    before the field existed), so the ``repro-stats`` summary can break
    adaptation activity down by family without re-running anything.
    """
    counts: Counter = Counter()
    for record in records:
        if record.get("type") == "classification":
            counts[(record.get("family", "-"),
                    record["transition"])] += 1
    return counts


def migratory_blocks(
    timelines: Mapping[tuple[str, int], BlockTimeline], engine: str
) -> set[int]:
    """Blocks finally classified migratory on ``engine``, from events."""
    return {
        block for (eng, block), timeline in timelines.items()
        if eng == engine and timeline.final_migratory
    }


def render_timelines(
    timelines: Mapping[tuple[str, int], BlockTimeline],
    engine: str | None = None,
    top: int | None = None,
) -> str:
    """Human timeline summary, most-active blocks first."""
    chosen = [
        timeline for (eng, _), timeline in sorted(timelines.items())
        if engine is None or eng == engine
    ]
    chosen.sort(
        key=lambda t: (
            -(len(t.promotions) + len(t.demotions)), t.engine, t.block
        )
    )
    total = len(chosen)
    if top is not None:
        chosen = chosen[:top]
    lines = [timeline.describe() for timeline in chosen]
    if total > len(chosen):
        lines.append(f"... and {total - len(chosen)} more block(s)")
    return "\n".join(lines) if lines else "(no classification events)"


def hot_block_table(
    records: Iterable[Mapping], top: int = 10
) -> str:
    """Top-N blocks by coherence events, with classification context."""
    events_per_block: Counter = Counter()
    kinds_per_block: dict[tuple[str, int], Counter] = {}
    for record in records:
        if record.get("type") != "coherence":
            continue
        key = (record["engine"], record["block"])
        events_per_block[key] += 1
        kinds_per_block.setdefault(key, Counter())[record["kind"]] += 1
    timelines = build_timelines(records)
    rows = []
    for (engine, block), count in events_per_block.most_common(top):
        kinds = kinds_per_block[(engine, block)]
        timeline = timelines.get((engine, block))
        rows.append([
            f"{block:#x}",
            engine,
            count,
            kinds.get("read_miss", 0),
            kinds.get("write_miss", 0),
            kinds.get("upgrade", 0),
            "yes" if timeline and timeline.ever_migratory else "no",
        ])
    return format_table(
        ["block", "engine", "events", "rd miss", "wr miss", "upgrades",
         "migratory?"],
        rows,
        title=f"Top {min(top, len(events_per_block))} blocks by coherence "
        "events",
    )
