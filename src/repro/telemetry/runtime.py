"""The ambient telemetry session and span timing.

A :class:`TelemetrySession` bundles a metrics registry with an event
sink and (optionally) an output directory; :func:`configure` installs
it as the process-wide active session, and the instrumentation points
scattered through the harness — the experiment runner, the trace-replay
helpers, the fuzz-oracle stages — consult :func:`active` and do nothing
when no session is installed.  "Nothing" is one module-global ``is
None`` test, which is what makes the whole subsystem zero-overhead
when off.

Spans measure wall-clock durations (``time.perf_counter``); they feed a
histogram (``repro_span_seconds``) and, when the session has an event
sink, ``span`` records.  Durations are inherently nondeterministic, so
they are excluded from the byte-identical merge contract (see
:func:`repro.telemetry.events.deterministic_records`).

Sessions do not cross process boundaries: ``parallel_map`` workers see
no active session, so a ``--jobs N`` sweep records spans and events
only for work done in the parent process.  Workers that want telemetry
build their own registry and return it as a payload for
:func:`repro.telemetry.metrics.merge_dicts` (the pattern the
worker-merge regression test locks in).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.events import SpanEvent
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import MachineRecorder, attach_recorder
from repro.telemetry.sinks import JsonlSink, write_prometheus

#: File names written into a session's output directory.
EVENTS_FILENAME = "events.jsonl"
METRICS_FILENAME = "metrics.prom"

#: Histogram receiving every span duration.
SPAN_SECONDS = "repro_span_seconds"

_ACTIVE: "TelemetrySession | None" = None


class TelemetrySession:
    """One observability scope: a registry, a sink, an output directory.

    Args:
        directory: when given, events stream to ``events.jsonl`` inside
            it and :meth:`close` dumps the registry to ``metrics.prom``.
        registry: the metrics registry (a fresh enabled one by default).
        sink: an explicit event sink; overrides ``directory``'s JSONL.
        instrument_machines: whether :meth:`attach` installs machine
            recorders.  When False the session records spans and
            campaign metrics only, leaving machines on their packed
            fast paths.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        registry: MetricsRegistry | None = None,
        sink=None,
        instrument_machines: bool = True,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.registry = registry if registry is not None else MetricsRegistry()
        if sink is None and self.directory is not None:
            sink = JsonlSink(self.directory / EVENTS_FILENAME)
        self.sink = sink
        self.instrument_machines = instrument_machines
        self._recorders: list[MachineRecorder] = []

    # ------------------------------------------------------------------

    def attach(self, machine) -> MachineRecorder | None:
        """Instrument one machine (returns None when machine events are
        disabled for this session)."""
        if not self.instrument_machines:
            return None
        recorder = attach_recorder(
            machine, registry=self.registry, sink=self.sink
        )
        self._recorders.append(recorder)
        return recorder

    @contextmanager
    def span(self, name: str, **meta):
        """Time a block; records a histogram sample and a span event."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.registry.histogram(
                SPAN_SECONDS, "harness stage durations"
            ).observe(elapsed, span=name)
            if self.sink is not None:
                self.sink.write(SpanEvent(name, elapsed, meta).to_record())

    def close(self) -> None:
        """Flush the sink and dump the metrics snapshot (idempotent)."""
        if self.directory is not None:
            write_prometheus(
                self.registry, self.directory / METRICS_FILENAME
            )
        closer = getattr(self.sink, "close", None)
        if closer is not None:
            closer()


# ----------------------------------------------------------------------
# The process-wide ambient session
# ----------------------------------------------------------------------

def configure(session: TelemetrySession | None) -> TelemetrySession | None:
    """Install ``session`` as the active one; returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    return previous


def active() -> TelemetrySession | None:
    """The active session, or None (the common, zero-cost case)."""
    return _ACTIVE


def shutdown() -> None:
    """Close and uninstall the active session, if any."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


@contextmanager
def session(
    directory: str | Path | None = None, **kwargs
):
    """Run a block under a fresh active session; closes it on exit."""
    sess = TelemetrySession(directory, **kwargs)
    previous = configure(sess)
    try:
        yield sess
    finally:
        sess.close()
        configure(previous)


@contextmanager
def span(name: str, **meta):
    """Time a block against the active session; free no-op without one.

    This is the form the harness instrumentation points use::

        with telemetry.span("replay.directory", app=trace.name):
            machine.run(trace)
    """
    sess = _ACTIVE
    if sess is None:
        yield
        return
    with sess.span(name, **meta):
        yield


def attach(machine) -> MachineRecorder | None:
    """Instrument ``machine`` against the active session, if any."""
    sess = _ACTIVE
    if sess is None:
        return None
    return sess.attach(machine)


def count(name: str, help_text: str, **labels) -> None:
    """Bump a counter on the active session's registry; free no-op
    without one.  The ambient-metric form instrumentation points use
    (the replay result cache records its hits and misses this way)."""
    sess = _ACTIVE
    if sess is None:
        return
    sess.registry.counter(name, help_text).inc(**labels)


def machine_instrumentation_active() -> bool:
    """Whether the active session instruments machine replays.

    Consumers that would change what an instrumented replay observes —
    the replay result cache, which skips the replay entirely — must
    stand down when this is True.
    """
    sess = _ACTIVE
    return sess is not None and sess.instrument_machines
