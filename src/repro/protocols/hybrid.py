"""Hybrid update/invalidate coherence with per-block write-run counters.

Modeled on the adaptive update/invalidate protocol of Dovgopol &
Rosonke (arXiv 1502.00101) and the classic competitive hybrids: each
block starts in *update* mode (a write to a shared block broadcasts the
new data, copies survive), a per-block write-run counter tracks
consecutive bus-visible writes by the same processor, and once a run
reaches ``invalid_threshold`` the block flips to *invalidate* mode (the
next write kills the other copies, MESI-style).  Shared *read misses*
are the counter-signal: in invalidate mode they accumulate toward
``revert_threshold = max(1, round(invalid_threshold *
invalidation_ratio))``, and reaching it flips the block back to update
mode.  The mode state is exactly the ``writeRunCounter`` /
``invalidThreshold`` / ``invalidationRatio`` trio of the adapt-cache
lineage, kept per block:

``[invalidate_mode, last_writer, run, shared_reads]``

Write runs are counted in *bus-visible* writes (update broadcasts and
invalidating upgrades), as a bus-based implementation must — silent
writes to an exclusively-held line are invisible to everyone.

Two realizations:

* :class:`HybridUpdateInvalidateProtocol` — snooping.  Inherits the
  pure write-update machinery and overrides the write path with the
  mode switch.  The per-block mode makes one block's transition depend
  on global write history, which the per-line DFA abstraction of
  :mod:`repro.kernels.tables` cannot express — the family declares the
  honest ``family-unkerneled`` fallback instead of compiling a wrong
  single-mode table.
* :class:`HybridDirectoryMachine` — CC-NUMA.  Update-mode writes leave
  every copy in place (charged like the equivalent invalidation
  fan-out, but copies survive, so sharers keep hitting); invalidate
  mode is exactly the stock machine.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.interconnect.costs import write_hit_counts, write_miss_counts
from repro.snooping.states import SnoopState as St
from repro.snooping.update_protocols import WriteUpdateProtocol
from repro.system.machine import CState, DirectoryMachine

#: Consecutive same-writer bus writes that flip a block to invalidate.
DEFAULT_INVALID_THRESHOLD = 2
#: Fraction of the write-run threshold that shared read misses must
#: reach (in invalidate mode) to flip the block back to update.
DEFAULT_INVALIDATION_RATIO = 0.5

#: A block with no recorded state: update mode, no run in progress.
_FRESH = [False, None, 0, 0]


def _revert_threshold(invalid_threshold: int, ratio: float) -> int:
    return max(1, round(invalid_threshold * ratio))


class _WriteRunModes:
    """Per-block ``[invalidate_mode, last_writer, run, shared_reads]``.

    Shared by both realizations; every component is bounded (mode is a
    bit, the run resets at the flip, shared reads reset at the revert),
    so the model checker's state space stays finite.
    """

    __slots__ = ("invalid_threshold", "invalidation_ratio",
                 "revert_threshold", "_modes")

    def __init__(self, invalid_threshold: int, invalidation_ratio: float):
        if invalid_threshold < 1:
            raise ProtocolError("invalid_threshold must be >= 1")
        if not 0.0 <= invalidation_ratio <= 1.0:
            raise ProtocolError("invalidation_ratio must be in [0, 1]")
        self.invalid_threshold = invalid_threshold
        self.invalidation_ratio = invalidation_ratio
        self.revert_threshold = _revert_threshold(
            invalid_threshold, invalidation_ratio
        )
        self._modes: dict[int, list] = {}

    def note_write(self, block: int, proc: int) -> bool:
        """Record one bus-visible write; True = invalidate mode now."""
        st = self._modes.get(block)
        if st is None:
            st = self._modes[block] = list(_FRESH)
        if st[0]:
            return True
        if st[1] == proc:
            st[2] += 1
        else:
            st[1] = proc
            st[2] = 1
        if st[2] >= self.invalid_threshold:
            # The flip applies to this very write.
            st[0] = True
            st[1] = None
            st[2] = 0
            st[3] = 0
            return True
        return False

    def note_read_miss(self, block: int) -> None:
        """A shared read breaks the run and, in invalidate mode,
        accumulates toward reverting to update mode."""
        st = self._modes.get(block)
        if st is None:
            return
        if st[0]:
            st[3] += 1
            if st[3] >= self.revert_threshold:
                del self._modes[block]  # back to fresh update mode
        else:
            st[1] = None
            st[2] = 0
            if st == _FRESH:
                del self._modes[block]

    # Model-checker hooks: fresh blocks canonicalize to None so cold
    # states hash identically regardless of history.

    def get(self, block: int):
        st = self._modes.get(block)
        if st is None or st == _FRESH:
            return None
        return tuple(st)

    def set(self, block: int, state) -> None:
        if state is None:
            self._modes.pop(block, None)
        else:
            self._modes[block] = list(state)

    def clear(self) -> None:
        self._modes.clear()


class HybridUpdateInvalidateProtocol(WriteUpdateProtocol):
    """Snooping hybrid: update until a write run, invalidate until reads.

    Coherence states are the write-update family's (``E``/``D``/``S``);
    only the write path depends on the block's mode.
    """

    invalidations_need_reply = False
    #: Remote copies stay current across update-mode writes (invalidate
    #: -mode writes leave no remote copies, so the sync is a no-op).
    updates_remote_copies = True
    #: Named reason the kernel gate records: the per-block mode couples
    #: transitions to global write history, outside the DFA abstraction.
    kernel_fallback_reason = "family-unkerneled"

    def __init__(self, invalid_threshold: int = DEFAULT_INVALID_THRESHOLD,
                 invalidation_ratio: float = DEFAULT_INVALIDATION_RATIO):
        self.modes = _WriteRunModes(invalid_threshold, invalidation_ratio)
        self.invalid_threshold = invalid_threshold
        self.invalidation_ratio = invalidation_ratio
        if (invalid_threshold == DEFAULT_INVALID_THRESHOLD
                and invalidation_ratio == DEFAULT_INVALIDATION_RATIO):
            self.name = "hybrid-update-invalidate"
        else:
            self.name = (f"hybrid-update-invalidate"
                         f"({invalid_threshold},{invalidation_ratio:g})")

    # -- per-block protocol state (model-checker hooks) -----------------

    def block_state(self, block: int):
        return self.modes.get(block)

    def set_block_state(self, block: int, state) -> None:
        self.modes.set(block, state)

    # -- handlers --------------------------------------------------------

    def read_miss_fill(self, caches, proc, block):
        self.modes.note_read_miss(block)
        return super().read_miss_fill(caches, proc, block)

    def write_miss_fill(self, caches, proc, block):
        if not self.modes.note_write(block, proc):
            return super().write_miss_fill(caches, proc, block)
        for cache, line in self._remote_lines(caches, proc, block):
            cache.remove(block)
        return St.D, True

    def write_hit_bus(self, caches, proc, block, line) -> str:
        if not self.modes.note_write(block, proc):
            return super().write_hit_bus(caches, proc, block, line)
        for cache, remote in self._remote_lines(caches, proc, block):
            if remote.state is not St.S:
                raise ProtocolError(
                    f"invalidation snooped non-shared state {remote.state}"
                )
            cache.remove(block)
        line.state = St.D
        line.dirty = True
        return "invalidation"


class HybridDirectoryMachine(DirectoryMachine):
    """CC-NUMA hybrid: update-mode writes keep every sharer's copy.

    An update-mode write to a shared block charges the same fan-out the
    invalidation would (one update message per sharer instead of one
    invalidation), but the copies survive — so stable single-writer /
    multi-reader blocks trade the sharers' re-fetch misses for the
    broadcasts.  Invalidate mode delegates to the stock machine.
    """

    __slots__ = ("modes",)

    kernel_fallback_reason = "family-unkerneled"

    def __init__(self, config, policy, placement=None, **kwargs):
        super().__init__(config, policy, placement, **kwargs)
        self.modes = _WriteRunModes(
            DEFAULT_INVALID_THRESHOLD, DEFAULT_INVALIDATION_RATIO
        )

    # -- per-block machine state (model-checker hooks) -------------------

    def block_extra(self, block: int):
        return self.modes.get(block)

    def set_block_extra(self, block: int, extra) -> None:
        self.modes.set(block, extra)

    # -- access paths ----------------------------------------------------

    def _read_miss(self, proc, block):
        self.modes.note_read_miss(block)
        super()._read_miss(proc, block)

    def _write_hit_shared(self, proc, block, line):
        invalidate = self.modes.note_write(block, proc)
        ent = self.protocol.entry(block)
        others = ent.copyset - {proc}
        if invalidate or not others:
            super()._write_hit_shared(proc, block, line)
            return
        # Update mode: broadcast the new value to every sharer.  The
        # copyset and directory state are untouched (no copy dies), the
        # writer's copy stays shared-clean (memory snoops the update),
        # and every surviving copy is current.
        home = self._home_of(block, proc)
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_hit_counts(home == proc, dc)
        self._charge("write_hit", block, short, data)
        self.caches[proc].touch(block)
        self.cache_stats.upgrades += 1
        self._bump_version(block, line)
        self._sync_update_versions(block)

    def _write_miss(self, proc, block):
        invalidate = self.modes.note_write(block, proc)
        ent = self.protocol.entry(block)
        dirty_owner = self._dirty_owner(block, ent.copyset)
        others = ent.copyset - {proc}
        if invalidate or dirty_owner is not None or not others:
            super()._write_miss(proc, block)
            return
        # Update mode with clean sharers: fetch the block and broadcast
        # the new value; existing copies absorb the update.  Directory-
        # state-wise the writer joins as one more sharer, so the entry
        # advances exactly as a replicating read miss does.
        home = self._home_of(block, proc)
        self.protocol.read_miss(block, proc, False)
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_miss_counts(home == proc, False, dc)
        self._charge("write_miss", block, short, data)
        self._fill(proc, block, CState.SHARED, dirty=False)
        ent.copyset.add(proc)
        victim = self.representation.on_sharer_added(ent, proc)
        if victim is not None:
            self.caches[victim].remove(block)
            ent.copyset.discard(victim)
            cost = 2 if victim != home else 0
            self._charge("pointer_eviction", block, cost, 0)
        self._bump_version(block, self.caches[proc].lookup(block))
        self._sync_update_versions(block)

    def _sync_update_versions(self, block: int) -> None:
        """Update broadcasts leave every surviving copy current."""
        if not self._check:
            return
        latest = self._latest.get(block, 0)
        for cache in self.caches:
            line = cache.lookup(block)
            if line is not None:
                line.version = latest
