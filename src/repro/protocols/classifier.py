"""Producer-consumer / false-sharing pattern classifier.

The paper's directory protocol watches for exactly one access pattern —
migratory sharing — through last-invalidator/streak evidence.  This
family keeps that machinery intact (all coherence decisions delegate to
the stock :class:`~repro.directory.protocol.DirectoryProtocol`) and
layers a *richer observational taxonomy* on top, in the spirit of the
adaptive-classification literature the related-work section surveys:

========================  ============================================
label                     evidence
========================  ============================================
``untouched``             no recorded access
``private``               one processor only (reads and/or writes)
``read-only``             multiple readers, never written
``producer-consumer``     one writer, other processors read
``migratory``             multiple writers with dirty hand-offs (or
                          the base evidence machinery classified it)
``false-sharing``         multiple writers whose written *words* are
                          pairwise disjoint — they share the block,
                          not the data
``multi-writer``          multiple writers, overlapping words
========================  ============================================

Word-level write footprints come from the machine, which must therefore
see every access — including the silent writes the packed fast path
retires inline.  :class:`ClassifierDirectoryMachine` consequently
forces the generic per-access replay path and registers the honest
``family-unkerneled`` fallback; classification is an observation layer,
so message statistics stay identical to the stock machine under the
same policy.

The taxonomy is surfaced through telemetry: a
:class:`repro.telemetry.recorder.DirectoryRecorder` attached to this
machine emits ``pattern`` classification events whenever a block's
label changes, and the final labels are available from
:meth:`ClassifierDirectoryProtocol.pattern_counts`.
"""

from __future__ import annotations

from collections import Counter

from repro.common.types import WORD_SIZE, Op
from repro.directory.protocol import DirectoryProtocol
from repro.kernels import registry as kernel_registry
from repro.system.machine import DirectoryMachine

#: The classification labels, in rough specificity order.
PATTERNS = ("untouched", "private", "read-only", "producer-consumer",
            "migratory", "false-sharing", "multi-writer")


class _BlockPattern:
    """Per-block observational evidence (never drives coherence)."""

    __slots__ = ("readers", "writers", "write_words", "handoffs")

    def __init__(self):
        self.readers: set[int] = set()
        self.writers: set[int] = set()
        #: proc -> set of written word offsets within the block.
        self.write_words: dict[int, set[int]] = {}
        #: Write misses that found the block dirty elsewhere.
        self.handoffs = 0


class ClassifierDirectoryProtocol(DirectoryProtocol):
    """Stock directory protocol plus the pattern taxonomy."""

    __slots__ = ("patterns",)

    def __init__(self, policy):
        super().__init__(policy)
        self.patterns: dict[int, _BlockPattern] = {}

    def _pattern(self, block: int) -> _BlockPattern:
        pat = self.patterns.get(block)
        if pat is None:
            pat = self.patterns[block] = _BlockPattern()
        return pat

    # -- evidence taps (coherence behavior is the superclass's) ----------

    def read_miss(self, block, proc, dirty):
        self._pattern(block).readers.add(proc)
        return super().read_miss(block, proc, dirty)

    def write_miss(self, block, proc, dirty):
        pat = self._pattern(block)
        pat.writers.add(proc)
        if dirty:
            pat.handoffs += 1
        super().write_miss(block, proc, dirty)

    def write_hit(self, block, proc, sole_copy):
        self._pattern(block).writers.add(proc)
        super().write_hit(block, proc, sole_copy)

    def note_word_write(self, block: int, proc: int, word: int) -> None:
        """Record one written word (fed by the machine for every write,
        including the bus-invisible silent ones)."""
        pat = self._pattern(block)
        pat.writers.add(proc)
        pat.write_words.setdefault(proc, set()).add(word)

    # -- the taxonomy ----------------------------------------------------

    def classify(self, block: int) -> str:
        """The block's current pattern label."""
        pat = self.patterns.get(block)
        if pat is None or (not pat.readers and not pat.writers):
            return "untouched"
        if not pat.writers:
            return "read-only" if len(pat.readers) > 1 else "private"
        if len(pat.writers) == 1:
            (writer,) = pat.writers
            if pat.readers - {writer}:
                return "producer-consumer"
            return "private"
        footprints = [words for words in pat.write_words.values() if words]
        if len(footprints) > 1 and len(footprints) == len(pat.writers):
            total = sum(len(words) for words in footprints)
            if len(set().union(*footprints)) == total:
                # Every writer touched its own disjoint words: the
                # processors share the block, not the data.
                return "false-sharing"
        if self.is_migratory(block) or pat.handoffs >= 2:
            return "migratory"
        return "multi-writer"

    def pattern_counts(self) -> Counter:
        """Label -> number of blocks currently classified that way."""
        return Counter(self.classify(block) for block in self.patterns)


class ClassifierDirectoryMachine(DirectoryMachine):
    """Directory machine running the classifier protocol.

    Message accounting is the stock machine's; the only behavioral
    difference is that every access takes the generic path so the
    protocol sees word-level write footprints.
    """

    __slots__ = ()

    kernel_fallback_reason = "family-unkerneled"

    def __init__(self, config, policy, placement=None, **kwargs):
        super().__init__(config, policy, placement, **kwargs)
        self.protocol = ClassifierDirectoryProtocol(policy)

    def run(self, trace):
        """Replay ``trace`` on the generic per-access path.

        The packed fast path retires silent writes inline, which would
        blind the word-footprint taps — so a packable replay counts one
        honest fallback and walks access by access.  ``PackedTrace``
        iterates as :class:`Access` records, so both input shapes work.
        """
        if (getattr(trace, "pack", None) is not None
                and not self._check and self.step_hook is None):
            kernel_registry.record_fallback(
                "directory", self.kernel_fallback_reason
            )
        access = self.access
        for acc in trace:
            access(acc.proc, acc.op is Op.WRITE, acc.addr)
        return self.stats

    def access(self, proc, is_write, addr, exclusive_hint=False):
        if is_write:
            block = addr >> self._block_shift
            word = (addr - (block << self._block_shift)) // WORD_SIZE
            self.protocol.note_word_write(block, proc, word)
        super().access(proc, is_write, addr, exclusive_hint)
