"""Neat-style self-invalidation / self-downgrade coherence.

The VIPS/Neat line of work (arXiv 2107.05453) shows that a coherence
protocol needs neither invalidation messages nor sharer lists: shared
copies *self-invalidate* at epoch boundaries, writers *self-downgrade*
by writing their data through, and the directory degenerates to an
owner pointer.  Two realizations are provided:

* :class:`SelfInvalidationProtocol` — the bus machine's realization.
  Shared copies carry a *lease* in the line counter: every remote read
  miss of the block ages every shared copy by one, and a copy older
  than ``epoch`` bus epochs invalidates itself instead of asserting the
  Shared line.  A write hit to a shared block is a write-through: the
  writer publishes the data (memory snoops it), the remaining shared
  copies treat the transaction as their epoch boundary and
  self-invalidate, and the writer's own copy self-downgrades to
  clean-exclusive.  No transaction of kind ``"invalidation"`` is ever
  issued — ``bus_stats.invalidation`` stays zero by construction.
* :class:`SelfInvalidationDirectoryMachine` — the directory machine's
  realization.  The home keeps only the owner pointer, so writes never
  fan invalidation messages out to sharers: sharer copies are dropped
  as self-invalidations at the epoch boundary the write defines, at
  zero message cost, and ``invalidation_sizes`` stays empty.  Write
  cost is therefore independent of the sharer count — the measurable
  form of "no sharer lists".  (The simulator still tracks the copyset
  as ground truth for the structural invariants; the cost model never
  reads it.)

Fidelity note: true self-invalidation protocols are sequentially
consistent only for data-race-free programs.  Our traces are arbitrary
interleavings, so writes here behave as write-throughs that retire
every other copy *immediately* rather than at the next synchronization
point.  That keeps the repo-wide SC checker and model-checked
properties intact while preserving the protocols' defining observable:
zero invalidation traffic and no per-sharer state.

The bus protocol stays inside the table-driven kernel envelope: its
per-line lease is exactly the bounded counter axis the snoop-row
compiler probes (``threshold`` attribute), so replays compile to
integer transition tables like MESI does.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.interconnect.costs import write_hit_counts, write_miss_counts
from repro.snooping.protocols import SnoopingProtocol
from repro.snooping.states import SnoopState as St
from repro.system.machine import CState, DirectoryMachine

#: Default lease length, in remote-read-miss epochs (must stay within
#: the kernel compiler's counter axis, ``MAX_COUNTER_THRESHOLD``).
DEFAULT_EPOCH = 4


class SelfInvalidationProtocol(SnoopingProtocol):
    """Self-invalidation/self-downgrade snooping (no invalidations).

    States used: ``E`` (owned clean), ``D`` (owned dirty), ``S``
    (leased read-only copy).  The lease lives in ``line.counter`` and
    ages on every remote read miss; the ``threshold`` attribute exposes
    the epoch to the kernel compiler as the counter axis.
    """

    invalidations_need_reply = False
    updates_remote_copies = False

    def __init__(self, epoch: int = DEFAULT_EPOCH):
        if not 1 <= epoch <= 8:
            raise ProtocolError("epoch must be between 1 and 8")
        self.epoch = epoch
        #: Kernel counter axis (see ``SnoopRows``): lease values are
        #: bounded by the epoch.
        self.threshold = epoch
        self.name = (
            "self-invalidation" if epoch == DEFAULT_EPOCH
            else f"self-invalidation({epoch})"
        )

    def read_miss_fill(self, caches, proc, block):
        shared = False
        for cache, line in self._remote_lines(caches, proc, block):
            state = line.state
            if state in (St.E, St.D):
                # The owner self-downgrades: data is provided, memory
                # snoops it, and the copy becomes a fresh lease.
                line.state = St.S
                line.dirty = False
                line.counter = 0
                shared = True
            elif state is St.S:
                # A remote read miss is one bus epoch: age the lease.
                line.counter += 1
                if line.counter > self.epoch:
                    cache.remove(block)  # lease expired: self-invalidate
                else:
                    shared = True
            else:
                raise ProtocolError(
                    f"self-invalidation snooped state {state}"
                )
        return (St.S if shared else St.E), False

    def write_miss_fill(self, caches, proc, block):
        # The write is the epoch boundary for every existing copy: the
        # owner (if any) supplies data and retires, leased copies
        # self-invalidate.  No invalidation request is sent.
        for cache, line in self._remote_lines(caches, proc, block):
            if line.state not in (St.E, St.D, St.S):
                raise ProtocolError(
                    f"self-invalidation snooped state {line.state}"
                )
            cache.remove(block)
        return St.D, True

    def write_hit_bus(self, caches, proc, block, line) -> str:
        """Write through a leased copy: kind ``"update"``, never
        ``"invalidation"`` — remote copies retire themselves."""
        for cache, remote in self._remote_lines(caches, proc, block):
            if remote.state is not St.S:
                raise ProtocolError(
                    f"write-through snooped non-leased state {remote.state}"
                )
            cache.remove(block)
        # Self-downgrade: memory snooped the write-through, so the
        # writer keeps a clean owned copy.
        line.state = St.E
        line.dirty = False
        line.counter = 0
        return "update"


class SelfInvalidationDirectoryMachine(DirectoryMachine):
    """Directory machine whose home keeps only an owner pointer.

    Writes never send invalidation messages: sharer copies are dropped
    as self-invalidations at the epoch boundary the write defines (zero
    message cost, ``invalidation_sizes`` untouched), so a write's cost
    is independent of how many nodes shared the block.
    """

    __slots__ = ()

    #: Named reason the table-driven kernels refuse this machine: the
    #: compiled rows encode the stock machine's per-sharer charging.
    kernel_fallback_reason = "family-unkerneled"

    def _write_hit_shared(self, proc, block, line):
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        others = ent.copyset - {proc}
        self.protocol.write_hit(block, proc, sole_copy=not others)
        # dc=0: no sharer list, so no invalidation fan-out to charge.
        short, data = write_hit_counts(home == proc, 0)
        self._charge("write_hit", block, short, data)
        for node in others:
            self.caches[node].remove(block)
        ent.copyset.intersection_update({proc})
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)
        line.state = CState.EXCL
        line.dirty = True
        self.caches[proc].touch(block)
        self.cache_stats.upgrades += 1
        self._bump_version(block, line)

    def _write_miss(self, proc, block):
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        dirty_owner = self._dirty_owner(block, ent.copyset)
        dirty = dirty_owner is not None
        self.protocol.write_miss(block, proc, dirty)
        # The owner pointer still forwards a dirty block; sharers cost
        # nothing (dc=0).
        short, data = write_miss_counts(home == proc, dirty, 0)
        self._charge("write_miss", block, short, data)
        for node in ent.copyset:
            self.caches[node].remove(block)
        ent.copyset.clear()
        self._fill(proc, block, CState.EXCL, dirty=True)
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)
        self._bump_version(block, self.caches[proc].lookup(block))
