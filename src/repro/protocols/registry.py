"""First-class registry of coherence-protocol families.

Every protocol either machine can run is described by one
:class:`ProtocolFamily` record: how to build it, whether the
table-driven kernels can compile it (and the honest fallback reason
when they can't), how the conformance oracle should exercise it,
whether bug-injection verification combos may wrap it, and the
behavioral tunables that feed result-cache digests.  The sweeps
(:mod:`repro.experiments`), the conformance oracle
(:mod:`repro.conformance.oracle`), the bounded model checker
(:mod:`repro.verification.model`), and the replay service
(:mod:`repro.service`) all iterate this registry instead of keeping
their own protocol lists — registering a family here is the *only*
step needed for it to reach every layer.

The shipped families:

===========================  =========  ======================================
name                         engine     notes
===========================  =========  ======================================
``mesi``                     bus        conventional write-invalidate
``adaptive``                 bus        the paper's adaptive protocol
``adaptive-initial-migratory``  bus     Section 2.1 cold-migratory variant
``always-migrate``           bus        Symmetry model-B migrate-on-read-miss
``write-update``             bus        pure update (Firefly/Dragon)
``competitive-update-1``     bus        competitive snooping, threshold 1
``hybrid-update-invalidate`` bus+dir    write-run adaptive update/invalidate
``self-invalidation``        bus+dir    Neat-style self-invalidation leases
``conventional`` … ``stenstrom``  dir   the paper's policy family
``pattern-classifier``       dir        producer-consumer / false-sharing
                                        taxonomy over the basic policy
===========================  =========  ======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError
from repro.directory.policy import (
    PAPER_POLICIES,
    STENSTROM,
    AdaptivePolicy,
)
from repro.protocols.classifier import ClassifierDirectoryMachine
from repro.protocols.hybrid import (
    DEFAULT_INVALID_THRESHOLD,
    DEFAULT_INVALIDATION_RATIO,
    HybridDirectoryMachine,
    HybridUpdateInvalidateProtocol,
)
from repro.protocols.selfinval import (
    DEFAULT_EPOCH,
    SelfInvalidationDirectoryMachine,
    SelfInvalidationProtocol,
)
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.system.machine import DirectoryMachine

#: Directory policies for the families that add machinery *around* the
#: stock classification engine rather than tuning its axes.  Their
#: distinct names keep service/CLI lookups and result-cache digests
#: honest; the behavioral fields pick the classification baseline each
#: family wants underneath (conventional for the hybrid and
#: self-invalidation cost models, basic for the classifier so its
#: ``migratory`` label can draw on the evidence machinery).
HYBRID_DIRECTORY_POLICY = AdaptivePolicy(
    "hybrid-update-invalidate", migratory_threshold=None
)
SELF_INVALIDATION_POLICY = AdaptivePolicy(
    "self-invalidation", migratory_threshold=None
)
CLASSIFIER_POLICY = AdaptivePolicy("pattern-classifier", migratory_threshold=1)


@dataclass(frozen=True, slots=True)
class ProtocolFamily:
    """One registered coherence-protocol family on one engine.

    Attributes:
        name: registry key; the name services, CLIs, and the verifier
            use.  Unique per engine.
        engine: ``"bus"`` or ``"directory"``.
        description: one-line human summary.
        factory: bus only — builds a fresh protocol instance per
            machine (protocols carry per-run state).
        policy: directory only — the family's
            :class:`~repro.directory.policy.AdaptivePolicy` (frozen,
            shared).
        machine: directory only — the machine class realizing the
            family (``DirectoryMachine`` for the stock policies).
        kernelable: whether the table-driven kernels can compile the
            family's transitions.
        fallback_reason: the *named* reason kernel gates record when
            ``kernelable`` is false (never silent).
        oracle: how the conformance oracle exercises the family —
            ``"full"`` (invariants, SC reference, packed and kernel
            diffs) or ``"kernel-only"`` (kernel-vs-packed diff only;
            used for the update protocols whose remote copies stay
            current, making the SC stages trivially satisfied).
        injectable: whether bug-injection verification combos may wrap
            this family (stock machinery only — the injected machines
            subclass the stock classes).
        tunables: behavioral knobs folded into :meth:`behavior_digest`
            so result-cache keys change when a family is re-tuned.
    """

    name: str
    engine: str
    description: str
    factory: Callable[[], object] | None = None
    policy: AdaptivePolicy | None = None
    machine: type | None = None
    kernelable: bool = True
    fallback_reason: str | None = None
    oracle: str = "full"
    injectable: bool = False
    tunables: tuple[tuple[str, object], ...] = ()
    #: Bus only: the ``protocol.name`` of a default-constructed
    #: instance (may differ from the registry key, e.g.
    #: ``competitive-update(1)`` under key ``competitive-update-1``).
    protocol_name: str = field(default="", compare=False)

    def __post_init__(self):
        if self.engine not in ("bus", "directory"):
            raise ConfigError(f"unknown engine {self.engine!r}")
        if self.engine == "bus":
            if self.factory is None:
                raise ConfigError(f"bus family {self.name!r} needs a factory")
        else:
            if self.policy is None:
                raise ConfigError(
                    f"directory family {self.name!r} needs a policy"
                )
            if self.policy.name != self.name:
                raise ConfigError(
                    f"directory family {self.name!r} must be keyed by its "
                    f"policy name {self.policy.name!r}"
                )
        if not self.kernelable and not self.fallback_reason:
            raise ConfigError(
                f"unkerneled family {self.name!r} must name its fallback"
            )

    def make_protocol(self):
        """A fresh bus protocol instance (bus families only)."""
        if self.factory is None:
            raise ConfigError(f"{self.name!r} is not a bus family")
        return self.factory()

    def machine_class(self) -> type:
        """The directory machine class realizing this family."""
        return self.machine or DirectoryMachine

    def behavior_digest(self) -> str:
        """Stable digest of everything that shapes the family's replay
        behavior — folded into result-cache keys (the ``|family:``
        component) so re-tuning a threshold can never serve a stale
        cached result."""
        parts = [
            self.engine,
            self.name,
            "ktable" if self.kernelable else (self.fallback_reason or "unkerneled"),
        ]
        if self.machine is not None:
            parts.append(self.machine.__qualname__)
        parts.extend(f"{key}={value}" for key, value in self.tunables)
        return ",".join(parts)


#: (engine, name) -> family, in registration order.
_FAMILIES: dict[tuple[str, str], ProtocolFamily] = {}


def register(family: ProtocolFamily) -> ProtocolFamily:
    """Add ``family`` to the registry (unique per engine)."""
    key = (family.engine, family.name)
    if key in _FAMILIES:
        raise ConfigError(
            f"{family.engine} family {family.name!r} already registered"
        )
    _FAMILIES[key] = family
    return family


def families(engine: str | None = None) -> tuple[ProtocolFamily, ...]:
    """All registered families, optionally restricted to one engine."""
    return tuple(
        fam for fam in _FAMILIES.values()
        if engine is None or fam.engine == engine
    )


def bus_families() -> tuple[ProtocolFamily, ...]:
    return families("bus")


def directory_families() -> tuple[ProtocolFamily, ...]:
    return families("directory")


def family(engine: str, name: str) -> ProtocolFamily:
    """The registered family, or :class:`ConfigError` naming the known set."""
    fam = _FAMILIES.get((engine, name))
    if fam is None:
        known = sorted(f.name for f in families(engine))
        raise ConfigError(
            f"unknown {engine} family {name!r}; known: {', '.join(known)}"
        )
    return fam


def find(engine: str, name: str) -> ProtocolFamily | None:
    """The registered family, or None."""
    return _FAMILIES.get((engine, name))


def bus_protocol(name: str):
    """A fresh protocol instance for the named bus family."""
    return family("bus", name).make_protocol()


def directory_policy(name: str) -> AdaptivePolicy:
    """The policy of the named directory family."""
    return family("directory", name).policy


def make_directory_machine(name: str, config, placement=None, **kwargs):
    """Build the named directory family's machine."""
    fam = family("directory", name)
    return fam.machine_class()(config, fam.policy, placement, **kwargs)


def family_of_policy(policy: AdaptivePolicy) -> ProtocolFamily | None:
    """The directory family a policy instance belongs to (by name)."""
    return _FAMILIES.get(("directory", policy.name))


def family_of_protocol(protocol) -> ProtocolFamily | None:
    """The bus family a protocol instance belongs to.

    Matches the default-constructed instance name, so a re-tuned
    instance (``CompetitiveUpdateProtocol(3)``, say) maps to no family
    — its parameterized ``protocol.name`` already keys caches honestly.
    """
    name = getattr(protocol, "name", None)
    for fam in _FAMILIES.values():
        if fam.engine == "bus" and fam.protocol_name == name:
            return fam
    return None


def _bus(name: str, description: str, factory: Callable[[], object],
         **kwargs) -> ProtocolFamily:
    probe = factory()
    return register(ProtocolFamily(
        name=name, engine="bus", description=description, factory=factory,
        protocol_name=probe.name, **kwargs,
    ))


def _directory(name: str, description: str, policy: AdaptivePolicy,
               **kwargs) -> ProtocolFamily:
    return register(ProtocolFamily(
        name=name, engine="directory", description=description,
        policy=policy, **kwargs,
    ))


# ----------------------------------------------------------------------
# Shipped bus families
# ----------------------------------------------------------------------

_bus("mesi", "conventional MESI write-invalidate",
     MesiProtocol, injectable=True)
_bus("adaptive", "the paper's adaptive snooping protocol (Figs. 1-2)",
     AdaptiveSnoopingProtocol)
_bus("adaptive-initial-migratory",
     "adaptive variant starting blocks migratory (Section 2.1)",
     lambda: AdaptiveSnoopingProtocol(initial_migratory=True))
_bus("always-migrate",
     "Symmetry model-B migrate-on-read-miss for modified blocks",
     AlwaysMigrateProtocol)
_bus("write-update", "pure write-update (Firefly/Dragon)",
     WriteUpdateProtocol, oracle="kernel-only")
_bus("competitive-update-1",
     "competitive-snooping update/invalidate hybrid, threshold 1",
     lambda: CompetitiveUpdateProtocol(1), oracle="kernel-only",
     tunables=(("threshold", 1),))
_bus("hybrid-update-invalidate",
     "write-run adaptive update/invalidate (adapt-cache style)",
     HybridUpdateInvalidateProtocol,
     kernelable=False, fallback_reason="family-unkerneled",
     tunables=(("invalid_threshold", DEFAULT_INVALID_THRESHOLD),
               ("invalidation_ratio", DEFAULT_INVALIDATION_RATIO)))
_bus("self-invalidation",
     "Neat-style self-invalidation/self-downgrade with leases",
     SelfInvalidationProtocol,
     tunables=(("epoch", DEFAULT_EPOCH),))

# ----------------------------------------------------------------------
# Shipped directory families
# ----------------------------------------------------------------------

for _policy in PAPER_POLICIES + (STENSTROM,):
    _directory(
        _policy.name,
        f"the paper's {_policy.name} directory policy",
        _policy, injectable=True,
    )

_directory("hybrid-update-invalidate",
           "write-run adaptive update/invalidate over the CC-NUMA model",
           HYBRID_DIRECTORY_POLICY, machine=HybridDirectoryMachine,
           kernelable=False, fallback_reason="family-unkerneled",
           tunables=(("invalid_threshold", DEFAULT_INVALID_THRESHOLD),
                     ("invalidation_ratio", DEFAULT_INVALIDATION_RATIO)))
_directory("self-invalidation",
           "owner-pointer directory: sharers self-invalidate at writes",
           SELF_INVALIDATION_POLICY,
           machine=SelfInvalidationDirectoryMachine,
           kernelable=False, fallback_reason="family-unkerneled")
_directory("pattern-classifier",
           "producer-consumer / false-sharing taxonomy over basic",
           CLASSIFIER_POLICY, machine=ClassifierDirectoryMachine,
           kernelable=False, fallback_reason="family-unkerneled")
