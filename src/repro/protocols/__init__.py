"""Adaptive-protocol family subsystem.

:mod:`repro.protocols.registry` is the single source of truth for which
coherence-protocol families exist, how to build them, and how the
kernels, sweeps, oracle, model checker, and service should treat them.
The family implementations live alongside it:

* :mod:`repro.protocols.hybrid` — write-run adaptive update/invalidate
  (snooping and directory realizations);
* :mod:`repro.protocols.selfinval` — Neat-style self-invalidation /
  self-downgrade (kernel-compilable bus leases, owner-pointer
  directory);
* :mod:`repro.protocols.classifier` — producer-consumer / false-sharing
  pattern taxonomy over the stock evidence machinery.

See ``docs/PROTOCOLS.md`` for the registry contract and how to add a
family.
"""

from repro.protocols.classifier import (
    ClassifierDirectoryMachine,
    ClassifierDirectoryProtocol,
)
from repro.protocols.hybrid import (
    HybridDirectoryMachine,
    HybridUpdateInvalidateProtocol,
)
from repro.protocols.registry import (
    ProtocolFamily,
    bus_families,
    bus_protocol,
    directory_families,
    directory_policy,
    families,
    family,
    family_of_policy,
    family_of_protocol,
    find,
    make_directory_machine,
    register,
)
from repro.protocols.selfinval import (
    SelfInvalidationDirectoryMachine,
    SelfInvalidationProtocol,
)

__all__ = [
    "ProtocolFamily",
    "ClassifierDirectoryMachine",
    "ClassifierDirectoryProtocol",
    "HybridDirectoryMachine",
    "HybridUpdateInvalidateProtocol",
    "SelfInvalidationDirectoryMachine",
    "SelfInvalidationProtocol",
    "bus_families",
    "bus_protocol",
    "directory_families",
    "directory_policy",
    "families",
    "family",
    "family_of_policy",
    "family_of_protocol",
    "find",
    "make_directory_machine",
    "register",
]
