"""Snooping protocol implementations.

Three protocols are provided:

* :class:`MesiProtocol` — the base write-invalidate MESI protocol
  (Papamarcos & Patel), the conventional comparison point.
* :class:`AdaptiveSnoopingProtocol` — the paper's adaptive extension
  (Figures 1 and 2): splits Shared into S2/S, adds the Migratory-Clean and
  Migratory-Dirty states, and asserts a Migratory bus line in responses to
  read misses, write misses, and invalidation requests.
* :class:`AlwaysMigrateProtocol` — the non-adaptive migrate-on-read-miss
  policy for modified blocks used by the Sequent Symmetry (model B) and
  MIT Alewife, which the related-work section calls out; migratory data is
  handled optimally but read-shared data ping-pongs.

Each protocol is a set of handlers invoked by
:class:`repro.snooping.machine.BusMachine`; the machine owns caches, the
replacement policy, transaction counting, and the coherence checker.  A
snoop over remote caches is modelled as a single bus transaction in which
every other cache reacts and may assert the Shared or Migratory lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.core import Cache, CacheLine
from repro.common.errors import ProtocolError
from repro.snooping.states import SnoopState as St


@dataclass(slots=True)
class SnoopResult:
    """Outcome of snooping one bus request across remote caches."""

    shared: bool = False  # the Shared line was asserted
    migratory: bool = False  # the Migratory line was asserted


class SnoopingProtocol:
    """Interface the bus machine drives.

    The handlers receive ``caches`` (all per-processor caches), the
    requesting processor, and the block; they mutate remote lines according
    to the bus request and return the fill state for the requester.
    """

    name = "abstract"
    #: Whether invalidation transactions await a reply (cost model 2
    #: charges these two units instead of one; Section 4.3).
    invalidations_need_reply = False
    #: Whether remote copies stay valid (and current) across writes —
    #: true for the write-update family, false for write-invalidate.
    updates_remote_copies = False

    def read_hit(self, line: CacheLine) -> None:
        """Hook invoked on every local read hit (default: nothing)."""

    def block_state(self, block: int):
        """Per-block protocol state beyond the cache lines, or ``None``.

        Protocols whose decisions depend on more than the lines (the
        hybrid family's per-block mode, say) expose that state here so
        the bounded model checker can fold it into its global states.
        ``None`` must mean "indistinguishable from a never-seen block".
        """
        return None

    def set_block_state(self, block: int, state) -> None:
        """Restore state previously returned by :meth:`block_state`."""
        if state is not None:
            raise ProtocolError(
                f"{self.name} keeps no per-block state to restore"
            )

    def read_miss_fill(
        self, caches: list[Cache], proc: int, block: int
    ) -> tuple[St, bool]:
        """Snoop a read-miss request; return ``(fill_state, fill_dirty)``."""
        raise NotImplementedError

    def write_miss_fill(
        self, caches: list[Cache], proc: int, block: int
    ) -> tuple[St, bool]:
        """Snoop a write-miss request; return ``(fill_state, fill_dirty)``."""
        raise NotImplementedError

    def write_hit_needs_bus(self, line: CacheLine) -> bool:
        """Whether a write hit to ``line`` requires a bus transaction."""
        return not line.state.is_writable

    def write_hit_silent(self, line: CacheLine) -> None:
        """Apply a write hit that needs no bus transaction."""
        state = line.state
        if state is St.E:
            line.state = St.D
        elif state is St.MC:
            line.state = St.MD
        elif state not in (St.D, St.MD):
            raise ProtocolError(f"silent write hit in state {state}")
        line.dirty = True

    def write_hit_invalidate(
        self, caches: list[Cache], proc: int, block: int, line: CacheLine
    ) -> None:
        """Issue an invalidation request and upgrade the writer's line."""
        raise NotImplementedError

    def write_hit_bus(
        self, caches: list[Cache], proc: int, block: int, line: CacheLine
    ) -> str:
        """Perform the bus transaction a non-silent write hit needs.

        Returns the transaction kind to record (``"invalidation"`` for
        the write-invalidate family; the update protocols override this
        to broadcast instead).
        """
        self.write_hit_invalidate(caches, proc, block, line)
        return "invalidation"

    @staticmethod
    def _remote_lines(caches: list[Cache], proc: int, block: int):
        """Yield ``(cache, line)`` for every remote cache holding block."""
        for node, cache in enumerate(caches):
            if node == proc:
                continue
            line = cache.lookup(block)
            if line is not None:
                yield cache, line


class MesiProtocol(SnoopingProtocol):
    """The conventional MESI write-invalidate protocol."""

    name = "mesi"
    invalidations_need_reply = False

    def read_miss_fill(self, caches, proc, block):
        shared = False
        for cache, line in self._remote_lines(caches, proc, block):
            shared = True
            if line.state in (St.E, St.D):
                # Dirty data is supplied and memory snoops the transfer.
                line.state = St.S
                line.dirty = False
            elif line.state is not St.S:
                raise ProtocolError(f"MESI snooped unexpected state {line.state}")
        return (St.S if shared else St.E), False

    def write_miss_fill(self, caches, proc, block):
        for cache, line in self._remote_lines(caches, proc, block):
            cache.remove(block)
        return St.D, True

    def write_hit_invalidate(self, caches, proc, block, line):
        for cache, remote in self._remote_lines(caches, proc, block):
            if remote.state not in (St.S,):
                raise ProtocolError(
                    f"invalidation snooped non-shared state {remote.state}"
                )
            cache.remove(block)
        line.state = St.D
        line.dirty = True


class AdaptiveSnoopingProtocol(SnoopingProtocol):
    """The adaptive protocol of Figures 1 and 2.

    By default replicate-on-read-miss is the initial policy for every
    block, as in the paper's main description.  Section 2.1 also sketches
    the variation that starts blocks under migrate-on-read-miss: a cold
    miss (no cache responds) then fills Migratory-Clean/-Dirty instead of
    Exclusive/Dirty, which leaves the Exclusive state with no
    in-transitions ("a dead state").  Pass ``initial_migratory=True`` for
    that variant.
    """

    invalidations_need_reply = True

    def __init__(self, initial_migratory: bool = False):
        self.initial_migratory = initial_migratory
        self.name = (
            "adaptive-initial-migratory" if initial_migratory else "adaptive"
        )

    def read_miss_fill(self, caches, proc, block):
        result = SnoopResult()
        for cache, line in self._remote_lines(caches, proc, block):
            state = line.state
            if state is St.E:
                line.state = St.S2
                result.shared = True
            elif state is St.D:
                line.state = St.S2
                line.dirty = False  # provided; memory snoops the data
                result.shared = True
            elif state is St.S2:
                # A third copy is being created; the <=2-copies guarantee
                # no longer holds, so fall back to plain Shared.
                line.state = St.S
                result.shared = True
            elif state is St.S:
                result.shared = True
            elif state is St.MC:
                # Any miss request demotes a clean migratory block back to
                # the replicate-on-read-miss policy.
                line.state = St.S2
                result.shared = True
            elif state is St.MD:
                # Migrate: provide the data, invalidate locally, and tell
                # the requester the block is migratory.
                cache.remove(block)
                result.migratory = True
            else:
                raise ProtocolError(f"unexpected snoop state {state}")
        if result.migratory:
            return St.MC, False
        if result.shared:
            return St.S, False
        if self.initial_migratory:
            # Cold miss under the migrate-on-read-miss initial policy:
            # the block arrives already classified migratory.
            return St.MC, False
        return St.E, False

    def write_miss_fill(self, caches, proc, block):
        result = SnoopResult()
        responded = False
        for cache, line in self._remote_lines(caches, proc, block):
            responded = True
            state = line.state
            if state in (St.E, St.D):
                # A write miss to a single cached copy is migratory
                # evidence (the aggressive switch of Section 2.1).
                result.migratory = True
            elif state is St.MD:
                result.migratory = True
            elif state is St.MC:
                # Any miss request demotes; no Migratory assertion.
                pass
            elif state not in (St.S, St.S2):
                raise ProtocolError(f"unexpected snoop state {state}")
            cache.remove(block)
        if result.migratory or (self.initial_migratory and not responded):
            return St.MD, True
        return St.D, True

    def write_hit_invalidate(self, caches, proc, block, line):
        result = SnoopResult()
        for cache, remote in self._remote_lines(caches, proc, block):
            state = remote.state
            if state is St.S2:
                # The older of exactly two copies is being invalidated by
                # the newer: the block looks migratory.
                result.migratory = True
            elif state is not St.S:
                raise ProtocolError(
                    f"invalidation snooped non-shared state {state}"
                )
            cache.remove(block)
        if line.state is St.S and result.migratory:
            line.state = St.MD
        else:
            line.state = St.D
        line.dirty = True


class AlwaysMigrateProtocol(SnoopingProtocol):
    """Non-adaptive migrate-on-read-miss for modified blocks.

    Models the Sequent Symmetry (model B) policy: a read miss that hits a
    Dirty copy transfers ownership instead of replicating.  Optimal for
    migratory data, but read-shared data that was ever written ping-pongs
    between caches, inflating read misses (Thakkar's observation).
    """

    name = "always-migrate"
    invalidations_need_reply = False

    def read_miss_fill(self, caches, proc, block):
        shared = False
        for cache, line in self._remote_lines(caches, proc, block):
            if line.state is St.D:
                # Migrate ownership; memory snoops, so the new copy is
                # writable-clean (we reuse MC to mean "owned, clean").
                cache.remove(block)
                return St.MC, False
            if line.state in (St.E, St.MC):
                # An owned-but-clean block replicates (memory is current).
                line.state = St.S
            shared = True
        return (St.S if shared else St.E), False

    def write_miss_fill(self, caches, proc, block):
        for cache, line in self._remote_lines(caches, proc, block):
            cache.remove(block)
        return St.D, True

    def write_hit_silent(self, line: CacheLine) -> None:
        state = line.state
        if state is St.E or state is St.MC:
            line.state = St.D
        elif state is not St.D:
            raise ProtocolError(f"silent write hit in state {state}")
        line.dirty = True

    def write_hit_invalidate(self, caches, proc, block, line):
        for cache, remote in self._remote_lines(caches, proc, block):
            cache.remove(block)
        line.state = St.D
        line.dirty = True
