"""Write-update and hybrid update/invalidate snooping protocols.

The paper's introduction dismisses pure write-update for migratory data
("interprocessor communication on every write"), and its related-work
section observes that the DEC Alpha multiprocessors' *hybrid*
write-update/write-invalidate protocol manages migratory data very
inefficiently — "it can take as many as three inter-cache operations to
migrate a block".  These protocols make both claims measurable:

* :class:`WriteUpdateProtocol` — pure update (Firefly/Dragon style):
  a write hit to a shared block broadcasts the new data; copies are
  never invalidated.
* :class:`CompetitiveUpdateProtocol` — update with a per-copy staleness
  counter: a copy that receives more than ``threshold`` remote updates
  without a local access invalidates itself (competitive snooping).
  With ``threshold=1`` a migration costs exactly the three transactions
  the paper attributes to the Alpha hybrid: the read miss, one tolerated
  update, and the update that finally kills the stale copy.

Both protocols assume memory snoops update broadcasts, so updated copies
stay clean.
"""

from __future__ import annotations

from repro.cache.core import CacheLine
from repro.common.errors import ProtocolError
from repro.snooping.protocols import SnoopingProtocol
from repro.snooping.states import SnoopState as St


class WriteUpdateProtocol(SnoopingProtocol):
    """Pure write-update: broadcast every write to a shared block."""

    name = "write-update"
    invalidations_need_reply = False
    #: Remote copies stay valid (and current) across writes.
    updates_remote_copies = True

    def read_miss_fill(self, caches, proc, block):
        shared = False
        for cache, line in self._remote_lines(caches, proc, block):
            shared = True
            if line.state in (St.E, St.D):
                line.state = St.S
                line.dirty = False  # provided; memory snoops
            elif line.state is not St.S:
                raise ProtocolError(f"update snooped state {line.state}")
            self._on_remote_read(line)
        return (St.S if shared else St.E), False

    def write_miss_fill(self, caches, proc, block):
        # The block is fetched and the new value broadcast; existing
        # copies absorb the update rather than being invalidated.
        shared = False
        for cache, line in self._remote_lines(caches, proc, block):
            if line.state in (St.E, St.D):
                line.state = St.S
                line.dirty = False
            survived = self._on_remote_update(cache, line)
            shared = shared or survived
        return (St.S if shared else St.D), not shared

    def write_hit_needs_bus(self, line: CacheLine) -> bool:
        return line.state is St.S

    def write_hit_silent(self, line: CacheLine) -> None:
        state = line.state
        if state is St.E:
            line.state = St.D
        elif state is not St.D:
            raise ProtocolError(f"silent write hit in state {state}")
        line.dirty = True

    def write_hit_bus(self, caches, proc, block, line) -> str:
        """Broadcast an update; returns the transaction kind."""
        shared = False
        for cache, remote in self._remote_lines(caches, proc, block):
            survived = self._on_remote_update(cache, remote)
            shared = shared or survived
        self._on_local_write(line)
        if not shared:
            # Last copy standing owns the block; memory snooped the
            # update, so the copy is clean-exclusive.
            line.state = St.E
            line.dirty = False
        return "update"

    # Hooks the competitive variant overrides ---------------------------

    def _on_remote_read(self, line: CacheLine) -> None:
        """A remote processor read the block (no state effect here)."""

    def _on_remote_update(self, cache, line: CacheLine) -> bool:
        """Apply a remote update to a copy; return False if it died."""
        return True

    def _on_local_write(self, line: CacheLine) -> None:
        """The local processor wrote its own (shared) copy."""


class CompetitiveUpdateProtocol(WriteUpdateProtocol):
    """Update until a copy looks dead, then invalidate it.

    Each copy carries a staleness counter: remote updates increment it,
    local accesses reset it, and a copy that absorbs more than
    ``threshold`` consecutive remote updates self-invalidates.  This is
    the classic competitive-snooping hybrid; ``threshold=1`` models the
    Alpha-style behaviour the paper criticises.
    """

    invalidations_need_reply = False

    def __init__(self, threshold: int = 1):
        if threshold < 0:
            raise ProtocolError("threshold must be non-negative")
        self.threshold = threshold
        self.name = f"competitive-update({threshold})"

    def read_hit(self, line: CacheLine) -> None:
        """A local access proves the copy useful: reset its staleness."""
        line.counter = 0

    def _on_remote_update(self, cache, line: CacheLine) -> bool:
        line.counter += 1
        if line.counter > self.threshold:
            cache.remove(line.block)
            return False
        return True

    def _on_local_write(self, line: CacheLine) -> None:
        line.counter = 0
