"""The bus-based snooping multiprocessor model (Sections 2.1 and 4.3).

On a bus, the cost of running the coherence protocol is proportional to
the number of bus transactions rather than messages: any operation is at
most one (split) transaction, because requests broadcast and no individual
acknowledgements are needed.  :class:`BusMachine` counts read-miss,
write-miss, invalidation, and writeback transactions; the two cost models
of Section 4.3 are applied by :mod:`repro.snooping.costmodels`.

Clean replacements are silent (a snooping protocol keeps no state for
uncached blocks — this is exactly the "power" difference from the
directory protocols that Section 4.3 highlights).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable

from repro.cache.core import (
    Cache,
    CacheLine,
    InfiniteCache,
    SetAssociativeCache,
    make_cache,
)
from repro.common.config import MachineConfig
from repro.conformance.invariants import check_snooping_block
from repro.common.errors import ProtocolError
from repro.common.stats import BusStats, CacheStats
from repro.common.types import Access, Op
from repro.snooping.protocols import SnoopingProtocol
from repro.snooping.states import SnoopState as St

#: States in which a write completes without a bus transaction — the
#: precomputed form of ``SnoopState.is_writable`` used by the replay loop.
_WRITABLE_STATES = frozenset(state for state in St if state.is_writable)


class BusMachine:
    """A bus-based multiprocessor running one snooping protocol."""

    __slots__ = (
        "config", "protocol", "caches", "bus_stats", "cache_stats",
        "step_hook", "_check", "_block_shift", "_latest", "_version_counter",
    )

    #: Named kernel-fallback reason a subclass replay records (the
    #: table-driven kernels encode exactly this class's transitions).
    kernel_fallback_reason = "machine-subclass"

    def __init__(
        self,
        config: MachineConfig,
        protocol: SnoopingProtocol,
        check: bool = False,
        seed: int = 0,
        step_hook: Callable[["BusMachine", int, int], None] | None = None,
    ):
        self.config = config
        self.protocol = protocol
        rng = random.Random(seed)
        self.caches: list[Cache] = [
            make_cache(config.cache, random.Random(rng.random()))
            for _ in range(config.num_procs)
        ]
        self.bus_stats = BusStats()
        self.cache_stats = CacheStats()
        #: Observer called as ``step_hook(machine, proc, block)`` after
        #: every bus-visible step (the same points the built-in checker
        #: audits).  Installing one forces the generic replay path.
        self.step_hook = step_hook
        self._check = check
        self._block_shift = config.cache.block_size.bit_length() - 1
        self._latest: dict[int, int] = {}
        self._version_counter = 0

    def run(self, trace: Iterable[Access]) -> BusStats:
        """Process every access in ``trace``; returns bus statistics.

        Like :meth:`repro.system.machine.DirectoryMachine.run`, packable
        traces (anything exposing ``pack()``) replay through a fast
        columnar loop with bit-identical statistics; the checker and an
        installed step hook force the generic per-access path.  The
        hook contract is symmetric across both machines: install the
        hook *before* calling ``run``.  A hook that appears mid-replay
        on the packed path (e.g. from a protocol handler) would observe
        only part of the stream, so the replay ends with a
        :class:`ProtocolError` instead of returning silently partial
        observations.

        Under the same guard, replays inside the table-driven kernel
        envelope (:mod:`repro.kernels`) run on the compiled transition
        tables instead of the packed loop — bit-identical statistics
        and final state, roughly an order of magnitude faster.
        """
        pack = getattr(trace, "pack", None)
        if pack is not None and not self._check and self.step_hook is None:
            packed = pack()
            if type(self) is BusMachine:
                from repro.kernels.snooping import try_replay

                result = try_replay(self, packed)
                if result is not None:
                    return result
            else:
                from repro.kernels import registry as kernel_registry

                kernel_registry.record_fallback(
                    "bus", self.kernel_fallback_reason
                )
            return self._run_packed(packed)
        access = self.access
        for acc in trace:
            access(acc.proc, acc.op is Op.WRITE, acc.addr)
        return self.bus_stats

    def _run_packed(self, packed) -> BusStats:
        """Replay packed columns, retiring bus-silent hits inline.

        Read hits and writable write hits generate no bus transaction;
        they retire inside the loop (invoking the protocol's read-hit
        hook and silent-write transition only when the protocol defines
        them).  Protocols that update remote copies, or that override
        ``write_hit_needs_bus``, route every write through the generic
        handler so their bus accounting is untouched.
        """
        blocks = packed.blocks_column(self._block_shift)
        procs = packed.procs
        ops = packed.ops
        caches = self.caches
        access = self._access_block
        protocol = self.protocol
        proto_cls = type(protocol)
        plain_read_hit = proto_cls.read_hit is SnoopingProtocol.read_hit
        read_hit = protocol.read_hit
        write_hit_silent = protocol.write_hit_silent
        fast_writes = (
            proto_cls.write_hit_needs_bus is SnoopingProtocol.write_hit_needs_bus
            and not protocol.updates_remote_copies
        )
        writable = _WRITABLE_STATES
        read_hits = 0
        write_hits = 0
        first = caches[0] if caches else None
        if type(first) is SetAssociativeCache:
            sets_by_proc = [cache.hot_sets()[0] for cache in caches]
            _, num_sets, lru = first.hot_sets()
            if lru:
                for proc, is_write, block in zip(procs, ops, blocks):
                    cset = sets_by_proc[proc][block % num_sets]
                    line = cset.get(block)
                    if line is not None:
                        if not is_write:
                            cset.move_to_end(block)
                            read_hits += 1
                            if not plain_read_hit:
                                read_hit(line)
                            continue
                        if fast_writes and line.state in writable:
                            write_hits += 1
                            cset.move_to_end(block)
                            write_hit_silent(line)
                            continue
                    access(proc, is_write, block)
            else:
                for proc, is_write, block in zip(procs, ops, blocks):
                    line = sets_by_proc[proc][block % num_sets].get(block)
                    if line is not None:
                        if not is_write:
                            read_hits += 1
                            if not plain_read_hit:
                                read_hit(line)
                            continue
                        if fast_writes and line.state in writable:
                            write_hits += 1
                            write_hit_silent(line)
                            continue
                    access(proc, is_write, block)
        elif type(first) is InfiniteCache:
            lines_by_proc = [cache.hot_lines() for cache in caches]
            for proc, is_write, block in zip(procs, ops, blocks):
                line = lines_by_proc[proc].get(block)
                if line is not None:
                    if not is_write:
                        read_hits += 1
                        if not plain_read_hit:
                            read_hit(line)
                        continue
                    if fast_writes and line.state in writable:
                        write_hits += 1
                        write_hit_silent(line)
                        continue
                access(proc, is_write, block)
        else:
            for proc, is_write, block in zip(procs, ops, blocks):
                access(proc, is_write, block)
        self.cache_stats.read_hits += read_hits
        self.cache_stats.write_hits += write_hits
        if self.step_hook is not None:
            raise ProtocolError(
                "step_hook installed mid-replay on the packed fast path: "
                "the hook missed every earlier step, so its observations "
                "are unreliable; install it before run() to take the "
                "generic per-access path"
            )
        return self.bus_stats

    def access(self, proc: int, is_write: bool, addr: int) -> None:
        """Process one reference from ``proc`` to byte address ``addr``."""
        self._access_block(proc, is_write, addr >> self._block_shift)

    def _access_block(self, proc: int, is_write: bool, block: int) -> None:
        """Process one reference given its block number directly."""
        cache = self.caches[proc]
        line = cache.lookup(block)
        if not is_write:
            if line is not None:
                cache.touch(block)
                self.cache_stats.read_hits += 1
                self.protocol.read_hit(line)
                if self._check:
                    self._check_read(block, line)
                return
            self.cache_stats.read_misses += 1
            self.bus_stats.record("read_miss")
            state, dirty = self.protocol.read_miss_fill(self.caches, proc, block)
            self._fill(proc, block, state, dirty)
            if self._check:
                self._check_block(block)
            if self.step_hook is not None:
                self.step_hook(self, proc, block)
            return
        if line is not None:
            self.cache_stats.write_hits += 1
            cache.touch(block)
            if self.protocol.write_hit_needs_bus(line):
                kind = self.protocol.write_hit_bus(self.caches, proc, block, line)
                self.bus_stats.record(kind)
                self.cache_stats.upgrades += 1
            else:
                self.protocol.write_hit_silent(line)
            self._bump_version(block, line)
        else:
            self.cache_stats.write_misses += 1
            self.bus_stats.record("write_miss")
            state, dirty = self.protocol.write_miss_fill(self.caches, proc, block)
            self._fill(proc, block, state, dirty)
            self._bump_version(block, self.caches[proc].lookup(block))
        if self.protocol.updates_remote_copies:
            # Update broadcasts leave every surviving copy current.
            self._sync_versions(block)
        if self._check:
            self._check_block(block)
        if self.step_hook is not None:
            self.step_hook(self, proc, block)

    def _fill(self, proc: int, block: int, state: St, dirty: bool) -> None:
        victim = self.caches[proc].insert(block, state, dirty)
        if self._check:
            self.caches[proc].lookup(block).version = self._latest.get(block, 0)
        if victim is not None:
            if victim.dirty:
                self.bus_stats.record("writeback")
                self.cache_stats.evictions_dirty += 1
            else:
                # Clean replacement is silent on a bus.
                self.cache_stats.evictions_clean += 1

    # ------------------------------------------------------------------
    # Coherence checker (tests only)
    # ------------------------------------------------------------------

    def _bump_version(self, block: int, line: CacheLine) -> None:
        if not self._check:
            return
        self._version_counter += 1
        self._latest[block] = self._version_counter
        line.version = self._version_counter

    def _sync_versions(self, block: int) -> None:
        if not self._check:
            return
        latest = self._latest.get(block, 0)
        for cache in self.caches:
            line = cache.lookup(block)
            if line is not None:
                line.version = latest

    def _check_read(self, block: int, line: CacheLine) -> None:
        latest = self._latest.get(block, 0)
        if line.version != latest:
            raise ProtocolError(
                f"stale read of block {block}: copy version {line.version}, "
                f"latest write {latest}"
            )

    def _check_block(self, block: int) -> None:
        check_snooping_block(self, block)
