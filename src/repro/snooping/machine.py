"""The bus-based snooping multiprocessor model (Sections 2.1 and 4.3).

On a bus, the cost of running the coherence protocol is proportional to
the number of bus transactions rather than messages: any operation is at
most one (split) transaction, because requests broadcast and no individual
acknowledgements are needed.  :class:`BusMachine` counts read-miss,
write-miss, invalidation, and writeback transactions; the two cost models
of Section 4.3 are applied by :mod:`repro.snooping.costmodels`.

Clean replacements are silent (a snooping protocol keeps no state for
uncached blocks — this is exactly the "power" difference from the
directory protocols that Section 4.3 highlights).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.cache.core import Cache, CacheLine, make_cache
from repro.common.config import MachineConfig
from repro.common.errors import ProtocolError
from repro.common.stats import BusStats, CacheStats
from repro.common.types import Access, Op
from repro.snooping.protocols import SnoopingProtocol
from repro.snooping.states import SnoopState as St


class BusMachine:
    """A bus-based multiprocessor running one snooping protocol."""

    def __init__(
        self,
        config: MachineConfig,
        protocol: SnoopingProtocol,
        check: bool = False,
        seed: int = 0,
    ):
        self.config = config
        self.protocol = protocol
        rng = random.Random(seed)
        self.caches: list[Cache] = [
            make_cache(config.cache, random.Random(rng.random()))
            for _ in range(config.num_procs)
        ]
        self.bus_stats = BusStats()
        self.cache_stats = CacheStats()
        self._check = check
        self._block_shift = config.cache.block_size.bit_length() - 1
        self._latest: dict[int, int] = {}
        self._version_counter = 0

    def run(self, trace: Iterable[Access]) -> BusStats:
        """Process every access in ``trace``; returns bus statistics."""
        access = self.access
        for acc in trace:
            access(acc.proc, acc.op is Op.WRITE, acc.addr)
        return self.bus_stats

    def access(self, proc: int, is_write: bool, addr: int) -> None:
        """Process one reference from ``proc`` to byte address ``addr``."""
        block = addr >> self._block_shift
        cache = self.caches[proc]
        line = cache.lookup(block)
        if not is_write:
            if line is not None:
                cache.touch(block)
                self.cache_stats.read_hits += 1
                self.protocol.read_hit(line)
                if self._check:
                    self._check_read(block, line)
                return
            self.cache_stats.read_misses += 1
            self.bus_stats.record("read_miss")
            state, dirty = self.protocol.read_miss_fill(self.caches, proc, block)
            self._fill(proc, block, state, dirty)
            if self._check:
                self._check_block(block)
            return
        if line is not None:
            self.cache_stats.write_hits += 1
            cache.touch(block)
            if self.protocol.write_hit_needs_bus(line):
                kind = self.protocol.write_hit_bus(self.caches, proc, block, line)
                self.bus_stats.record(kind)
                self.cache_stats.upgrades += 1
            else:
                self.protocol.write_hit_silent(line)
            self._bump_version(block, line)
        else:
            self.cache_stats.write_misses += 1
            self.bus_stats.record("write_miss")
            state, dirty = self.protocol.write_miss_fill(self.caches, proc, block)
            self._fill(proc, block, state, dirty)
            self._bump_version(block, self.caches[proc].lookup(block))
        if self.protocol.updates_remote_copies:
            # Update broadcasts leave every surviving copy current.
            self._sync_versions(block)
        if self._check:
            self._check_block(block)

    def _fill(self, proc: int, block: int, state: St, dirty: bool) -> None:
        victim = self.caches[proc].insert(block, state, dirty)
        if self._check:
            self.caches[proc].lookup(block).version = self._latest.get(block, 0)
        if victim is not None:
            if victim.dirty:
                self.bus_stats.record("writeback")
                self.cache_stats.evictions_dirty += 1
            else:
                # Clean replacement is silent on a bus.
                self.cache_stats.evictions_clean += 1

    # ------------------------------------------------------------------
    # Coherence checker (tests only)
    # ------------------------------------------------------------------

    def _bump_version(self, block: int, line: CacheLine) -> None:
        if not self._check:
            return
        self._version_counter += 1
        self._latest[block] = self._version_counter
        line.version = self._version_counter

    def _sync_versions(self, block: int) -> None:
        if not self._check:
            return
        latest = self._latest.get(block, 0)
        for cache in self.caches:
            line = cache.lookup(block)
            if line is not None:
                line.version = latest

    def _check_read(self, block: int, line: CacheLine) -> None:
        latest = self._latest.get(block, 0)
        if line.version != latest:
            raise ProtocolError(
                f"stale read of block {block}: copy version {line.version}, "
                f"latest write {latest}"
            )

    def _check_block(self, block: int) -> None:
        lines = [
            cache.lookup(block)
            for cache in self.caches
            if cache.lookup(block) is not None
        ]
        exclusive = [ln for ln in lines if ln.state.is_exclusive]
        if exclusive and len(lines) > 1:
            raise ProtocolError(
                f"exclusive copy coexists with {len(lines) - 1} others "
                f"for block {block}"
            )
        dirty = [ln for ln in lines if ln.dirty]
        if len(dirty) > 1:
            raise ProtocolError(f"multiple dirty copies of block {block}")
        s2 = [ln for ln in lines if ln.state is St.S2]
        if len(s2) > 1:
            raise ProtocolError(f"multiple S2 copies of block {block}")
        if s2 and len(lines) > 2:
            raise ProtocolError(
                f"S2 copy of block {block} coexists with {len(lines)} copies"
            )
