"""Bus cost models of Section 4.3.

Two models are defined over the transaction counts of
:class:`repro.common.stats.BusStats`:

* **Model 1** — every memory or coherence operation takes one bus
  transaction and has unit cost.
* **Model 2** — operations that require replies (misses, and invalidations
  in the *adaptive* protocol, which must wait for the Migratory line) cost
  two units; operations that need no reply (writebacks, and invalidations
  in the conventional protocol) cost one unit.
"""

from __future__ import annotations

from repro.common.stats import BusStats
from repro.snooping.protocols import SnoopingProtocol


def model1_cost(stats: BusStats) -> int:
    """Unit cost per bus transaction."""
    return stats.total


def model2_cost(stats: BusStats, protocol: SnoopingProtocol) -> int:
    """Reply-weighted cost (misses and adaptive invalidations cost 2)."""
    misses = stats.read_miss + stats.write_miss
    if protocol.invalidations_need_reply:
        replies = misses + stats.invalidation
        no_replies = stats.writeback
    else:
        replies = misses
        no_replies = stats.invalidation + stats.writeback
    return 2 * replies + no_replies


def percent_reduction(base: float, other: float) -> float:
    """Percentage by which ``other`` improves on ``base`` (positive = saves)."""
    if base == 0:
        return 0.0
    return 100.0 * (base - other) / base
