"""Cache-line states for the snooping protocols (Figure 1).

``Invalid`` is represented by absence from the cache; the remaining states
are:

* ``E``  — Exclusive: only cached copy, memory up to date.
* ``D``  — Dirty (the paper renames MESI's "Modified" to free up M for
  "Migratory"): only cached copy, memory stale.
* ``S2`` — Shared-2: one of *at most two* cached copies, and this holder's
  copy is the older of the two; memory up to date.
* ``S``  — Shared: one of possibly many copies, memory up to date.
* ``MC`` — Migratory-Clean: only cached copy, managed migrate-on-read-miss,
  not yet modified here (write permission already granted).
* ``MD`` — Migratory-Dirty: only cached copy, managed migrate-on-read-miss,
  modified here.

The plain MESI baseline uses E/S/D; the adaptive protocol uses all six.
"""

from __future__ import annotations

import enum


class SnoopState(enum.Enum):
    """Valid states of a resident line in the snooping machines."""

    E = "exclusive"
    D = "dirty"
    S2 = "shared-2"
    S = "shared"
    MC = "migratory-clean"
    MD = "migratory-dirty"

    @property
    def is_exclusive(self) -> bool:
        """True when no other cache may hold a copy."""
        return self in (SnoopState.E, SnoopState.D, SnoopState.MC, SnoopState.MD)

    @property
    def is_writable(self) -> bool:
        """True when a write can complete without a bus transaction."""
        return self in (SnoopState.E, SnoopState.D, SnoopState.MC, SnoopState.MD)

    @property
    def is_migratory(self) -> bool:
        """True for the migrate-on-read-miss sub-protocol states."""
        return self in (SnoopState.MC, SnoopState.MD)
