"""Bus-based snooping protocols: MESI, the adaptive extension, baselines."""

from repro.snooping.costmodels import model1_cost, model2_cost, percent_reduction
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
    SnoopingProtocol,
)
from repro.snooping.states import SnoopState
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)

__all__ = [
    "AdaptiveSnoopingProtocol",
    "AlwaysMigrateProtocol",
    "BusMachine",
    "CompetitiveUpdateProtocol",
    "MesiProtocol",
    "SnoopState",
    "SnoopingProtocol",
    "WriteUpdateProtocol",
    "model1_cost",
    "model2_cost",
    "percent_reduction",
]
