"""Shard process supervision for the cluster router.

A *shard* is one full :class:`repro.service.server.CoherenceService`
running in its own process (its own event loop, admission queue, and —
with ``--jobs`` — its own replay pool), spawned as ``python -m
repro.service.cli --port 0``.  The supervisor owns the process
lifecycle only; routing, health, and ring membership live in
:mod:`repro.service.router`.

Every shard inherits one shared ``REPRO_RESULT_CACHE`` directory, so
the fleet's on-disk result tier is common property: a replay computed
by shard A is a disk hit on shard B, and a shard's warm state survives
its own restart.  Each shard *process* additionally keeps the usual
unbounded in-memory front (:data:`repro.experiments.resultcache._memory`),
which is what consistent-hash affinity keeps warm.

Spawning goes through the shard's ready line (``repro-serve: listening
on http://H:P ...``), the same contract ``repro-serve`` prints for any
supervisor; stopping sends SIGTERM and waits for the shard's graceful
drain (escalating to SIGKILL only past ``stop_timeout``).
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
from pathlib import Path

#: Pattern of the ``repro-serve`` ready line; group 1 is the bound port.
READY_PATTERN = re.compile(
    rb"repro-serve: listening on http://[^:]+:(\d+)"
)


class ShardError(RuntimeError):
    """A shard process failed to start, answer, or stop."""


class ShardHandle:
    """One live shard process and its bound port."""

    __slots__ = ("name", "process", "port")

    def __init__(self, name: str, process: asyncio.subprocess.Process,
                 port: int):
        self.name = name
        self.process = process
        self.port = port

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.returncode is None


class ShardSupervisor:
    """Spawns, stops, and restarts shard server processes.

    Args:
        host: bind address handed to every shard.
        max_queue: per-shard admission bound (``--max-queue``).
        jobs: per-shard replay workers (``--jobs``); None inherits the
            shard's own default resolution.
        cache_dir: the shared on-disk result-cache directory exported to
            every shard as ``REPRO_RESULT_CACHE``; None leaves the
            ambient environment untouched.
        ready_timeout: seconds to wait for a spawned shard's ready line.
        stop_timeout: seconds to wait for SIGTERM drain before SIGKILL.
    """

    def __init__(self, *, host: str = "127.0.0.1", max_queue: int = 64,
                 jobs: int | None = None,
                 cache_dir: str | Path | None = None,
                 ready_timeout: float = 90.0,
                 stop_timeout: float = 60.0):
        self.host = host
        self.max_queue = max_queue
        self.jobs = jobs
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.ready_timeout = ready_timeout
        self.stop_timeout = stop_timeout

    # ------------------------------------------------------------------

    def _command(self) -> list[str]:
        command = [
            sys.executable, "-m", "repro.service.cli",
            "--host", self.host, "--port", "0",
            "--max-queue", str(self.max_queue),
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        return command

    def _environment(self) -> dict[str, str]:
        env = dict(os.environ)
        if self.cache_dir is not None:
            env["REPRO_RESULT_CACHE"] = self.cache_dir
        return env

    async def spawn(self, name: str) -> ShardHandle:
        """Start one shard and block until its ready line arrives.

        The shard binds an ephemeral port (``--port 0``); the bound port
        is parsed back from the ready line.  stderr is inherited so
        shard tracebacks land in the cluster's own log.
        """
        process = await asyncio.create_subprocess_exec(
            *self._command(),
            stdout=asyncio.subprocess.PIPE,
            stderr=None,
            env=self._environment(),
        )
        try:
            port = await asyncio.wait_for(
                self._read_ready(process), self.ready_timeout
            )
        except (asyncio.TimeoutError, ShardError):
            with _suppress_process_errors():
                process.kill()
            await process.wait()
            raise ShardError(
                f"shard {name!r} did not print a ready line within "
                f"{self.ready_timeout}s"
            ) from None
        return ShardHandle(name, process, port)

    @staticmethod
    async def _read_ready(process: asyncio.subprocess.Process) -> int:
        assert process.stdout is not None
        while True:
            line = await process.stdout.readline()
            if not line:
                raise ShardError("shard exited before its ready line")
            match = READY_PATTERN.search(line)
            if match:
                return int(match.group(1))

    async def stop(self, handle: ShardHandle) -> int:
        """SIGTERM the shard and wait for its graceful drain.

        Returns the shard's exit code.  A shard that outlives
        ``stop_timeout`` is SIGKILLed — the drain contract makes that a
        bug, but the supervisor must never hang the whole cluster on
        one wedged process.
        """
        if handle.process.returncode is not None:
            return handle.process.returncode
        with _suppress_process_errors():
            handle.process.send_signal(signal.SIGTERM)
        try:
            return await asyncio.wait_for(
                handle.process.wait(), self.stop_timeout
            )
        except asyncio.TimeoutError:
            with _suppress_process_errors():
                handle.process.kill()
            return await handle.process.wait()

    async def restart(self, handle: ShardHandle) -> ShardHandle:
        """Stop one shard and spawn its replacement (same name)."""
        await self.stop(handle)
        return await self.spawn(handle.name)


class _suppress_process_errors:
    """``ProcessLookupError`` guard around signalling a gone process."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is ProcessLookupError
