"""The ``repro-cluster`` console entry point.

Usage::

    repro-cluster [--host H] [--port P] [--shards N] [--max-queue N]
                  [--jobs N] [--router-cache N] [--replicas R]
                  [--hot-key-min N] [--hot-key-top K]
                  [--result-cache DIR] [--telemetry-dir DIR] [--version]

Spawns ``--shards`` worker processes (each a full ``repro-serve``
instance on an ephemeral port, sharing one on-disk result cache) behind
the consistent-hash router of :mod:`repro.service.router`, and runs
until SIGTERM/SIGINT.  The drain is rolling and lossless: the router
stops accepting, finishes every admitted request, then drains shards
one at a time — each leaves the ring before it is signalled, so zero
in-flight requests fail.

``--port 0`` binds an ephemeral router port; the bound address is
printed on the ready line either way::

    repro-cluster: routing http://127.0.0.1:8078 across 4 shard(s) \
(queue=64/shard, replicas=2, router-cache=256)

The ready line goes to stdout (flushed) after every shard is up, so
supervisors and the load generator can block on it.  See
``docs/SERVING.md`` ("Cluster") for the routing, caching, and restart
contract.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from pathlib import Path

from repro.common.version import add_version_argument
from repro.parallel import resolve_jobs
from repro.service.router import ClusterConfig, ClusterRouter


async def _serve(config: ClusterConfig) -> ClusterRouter:
    router = ClusterRouter(config)
    await router.start()
    print(
        f"repro-cluster: routing http://{config.host}:{router.port} "
        f"across {config.shards} shard(s) "
        f"(queue={config.max_queue}/shard, replicas={config.replicas}, "
        f"router-cache={config.router_cache})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loops: Ctrl-C still raises
    await router.serve_until(stop)
    return router


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Serve coherence-simulation requests from a sharded "
        "fleet: consistent-hash routing on the replay cache key, "
        "cluster-wide single-flight, a router result-cache tier, "
        "hot-key replication, and rolling lossless restarts.",
    )
    add_version_argument(parser)
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8078,
                        help="router bind port (default 8078; "
                        "0 = ephemeral)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shard worker processes (default 2)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="per-shard admission bound (default 64); "
                        "the router admits shards * max-queue")
    parser.add_argument("--jobs", type=int, default=None,
                        help="replay workers per shard (default: "
                        "REPRO_JOBS or 1; 0 = all CPUs)")
    parser.add_argument("--router-cache", type=int, default=256,
                        help="router in-memory result-cache entries "
                        "(default 256; 0 disables the router tier)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="shards a hot key round-robins across "
                        "(default 2; 1 disables replication)")
    parser.add_argument("--hot-key-min", type=int, default=8,
                        help="requests before a key can turn hot "
                        "(default 8)")
    parser.add_argument("--hot-key-top", type=int, default=4,
                        help="hot-set size, top-k by request count "
                        "(default 4)")
    parser.add_argument("--result-cache", type=Path, default=None,
                        help="shared on-disk result-cache directory for "
                        "the fleet (default: the ambient "
                        "REPRO_RESULT_CACHE resolution)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="write the router's metrics.prom into this "
                        "directory on drain")
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.max_queue < 1:
        parser.error("--max-queue must be at least 1")
    if args.replicas < 1:
        parser.error("--replicas must be at least 1")
    if args.router_cache < 0:
        parser.error("--router-cache must be >= 0")
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    config = ClusterConfig(
        host=args.host, port=args.port, shards=args.shards,
        max_queue=args.max_queue, jobs=args.jobs,
        router_cache=args.router_cache, replicas=args.replicas,
        hot_key_min=args.hot_key_min, hot_key_top=args.hot_key_top,
        cache_dir=args.result_cache, telemetry_dir=args.telemetry_dir,
    )
    try:
        router = asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 0
    print(f"repro-cluster: drained after {router.served} request(s)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
