"""Pool-side execution bodies for the serving layer.

These are the module-level, picklable functions the server dispatches
onto :func:`repro.parallel.get_pool` (or, for a ``--jobs 1`` server,
onto a thread).  They run the replay *raw* — no result-cache lookups
and no telemetry — because the server owns both concerns in the parent
process: it consults and populates the cache around single-flight
coalescing, and its metrics must count exactly one execution per
coalesced request group.  A worker that also memoized would double-count
lookups when executing in-process and hide executions when in a pool.

Traces arrive the same way experiment sweeps deliver them: a
:class:`repro.trace.shm.TraceHandle` published once by the server (the
worker attaches zero-copy), falling back to the per-process trace cache
on a dead or absent segment.
"""

from __future__ import annotations

import os
import time

from repro.common.config import CacheConfig, MachineConfig
from repro.experiments import bus as bus_experiment
from repro.experiments import common, resultcache
from repro.experiments import table2, table3
from repro.protocols import registry as families
from repro.service.protocol import (
    DIRECTORY_POLICIES,
    ExperimentRequest,
    ReplaySpec,
    VerifyRequest,
    make_snooping_protocol,
)
from repro.snooping.machine import BusMachine
from repro.trace.shm import TraceHandle


def _trace(spec: ReplaySpec, handle: TraceHandle | None):
    return common.get_trace(spec.app, spec.num_procs, spec.seed,
                            spec.scale, handle=handle)


def replay_cache_parts(spec: ReplaySpec, trace_digest: str) -> tuple[str, tuple]:
    """The replay result cache ``(kind, parts)`` a spec resolves to.

    These are exactly the keys :func:`repro.experiments.common.
    run_directory` / ``run_bus`` use, so a replay served over HTTP and
    the same replay run by ``repro-experiments`` share one cache entry.
    """
    if spec.engine == "directory":
        config = common.directory_config(
            spec.cache_size, spec.block_size, spec.num_procs
        )
        policy = DIRECTORY_POLICIES[spec.policy]
        return "directory", (
            trace_digest,
            resultcache.config_digest(config),
            resultcache.policy_digest(policy),
            spec.placement,
        )
    config = MachineConfig(
        num_procs=spec.num_procs,
        cache=CacheConfig(size_bytes=spec.cache_size,
                          block_size=spec.block_size),
    )
    protocol = make_snooping_protocol(spec.policy)
    return "bus", (
        trace_digest,
        resultcache.config_digest(config),
        resultcache.protocol_digest(protocol),
    )


#: Fault/latency-injection seam: a positive value sleeps that many
#: milliseconds inside every replay execution.  Environment-keyed so it
#: crosses into spawned pool workers; used by the drain regression test
#: (a provably in-flight pool job at SIGTERM time) and the cluster
#: benchmark's slot-bound series (a modelled service time that makes
#: per-shard execution capacity, not this host's core count, the
#: bottleneck).  Unset in production: the check is one getenv.
INJECT_DELAY_ENV = "REPRO_SERVICE_INJECT_DELAY_MS"


def _inject_delay() -> None:
    delay_ms = os.environ.get(INJECT_DELAY_ENV)
    if delay_ms:
        time.sleep(float(delay_ms) / 1000.0)


def run_replay(spec_payload: dict, handle: TraceHandle | None) -> dict:
    """Execute one replay; returns the cache-codec stats payload."""
    _inject_delay()
    spec = ReplaySpec.from_payload(spec_payload)
    trace = _trace(spec, handle)
    if spec.engine == "directory":
        config = common.directory_config(
            spec.cache_size, spec.block_size, spec.num_procs
        )
        placement = common.get_placement(spec.placement, trace, config)
        # Resolve through the registry so families shipping their own
        # machines (hybrid, self-invalidation, classifier) replay on
        # them, not the stock DirectoryMachine.
        machine = families.make_directory_machine(
            spec.policy, config, placement
        )
        return resultcache.encode_message_stats(machine.run(trace))
    config = MachineConfig(
        num_procs=spec.num_procs,
        cache=CacheConfig(size_bytes=spec.cache_size,
                          block_size=spec.block_size),
    )
    machine = BusMachine(config, make_snooping_protocol(spec.policy))
    return resultcache.encode_bus_stats(machine.run(trace))


#: name -> (run, render).  Experiments execute serially inside the
#: worker (``jobs=1``): the server already fans requests out, and a
#: nested pool inside a pool worker would oversubscribe the host.
_EXPERIMENTS = {
    "table2": (table2.run, table2.render),
    "table3": (table3.run, table3.render),
    "bus": (bus_experiment.run, bus_experiment.render),
}


def run_experiment(request_payload: dict) -> dict:
    """Execute one row-level experiment; returns the rendered table."""
    request = ExperimentRequest.from_payload(request_payload)
    run, render = _EXPERIMENTS[request.name]
    rows = run(apps=request.apps, scale=request.scale, seed=request.seed,
               jobs=1)
    return {"rendered": render(rows)}


def run_verify(request_payload: dict) -> dict:
    """Execute one model-checking sweep; returns the certificate.

    BFS frontiers expand serially in the worker (``jobs=1``) for the
    same reason experiments do: the server is the fan-out layer, and
    certificates are byte-identical at any job count anyway.
    """
    from repro.verification.checker import sweep

    request = VerifyRequest.from_payload(request_payload)
    result = sweep(
        engine=request.engine,
        protocol=request.protocol,
        num_procs=request.num_procs,
        num_blocks=request.num_blocks,
        evictions=request.evictions,
        jobs=1,
    )
    return result.certificate()
