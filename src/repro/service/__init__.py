"""repro.service — the asyncio simulation-serving layer.

Turns the batch harness into a system that takes traffic: an HTTP/JSON
server (:mod:`repro.service.server`, the ``repro-serve`` console script)
answers replay, policy-comparison, and experiment-row queries online,
with bounded admission (429 + ``Retry-After`` backpressure),
single-flight coalescing keyed on the replay result cache's
content-addressed keys, dispatch onto the session process pool, and a
graceful SIGTERM drain.  :mod:`repro.service.client` provides sync and
async clients; :mod:`repro.service.loadgen` drives the server with
open- or closed-loop traffic and writes ``BENCH_service.json``.

Request and response shapes are versioned in
:mod:`repro.service.protocol`; see ``docs/SERVING.md`` for the
endpoint/backpressure/drain contract.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    CompareRequest,
    ExperimentRequest,
    ReplaySpec,
    ServiceError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "CompareRequest",
    "ExperimentRequest",
    "ReplaySpec",
    "ServiceError",
]
