"""Load generator for the serving layer.

Drives a ``repro-serve`` instance with open-loop (fixed arrival rate)
or closed-loop (fixed concurrency, back-to-back) traffic whose request
mix follows a zipf distribution over the application traces — a few
hot traces take most of the traffic, the tail stays cold, which is the
regime the result cache and single-flight coalescing are built for.
Reports throughput and p50/p99 latency; ``--output`` writes the
machine-readable summary to ``BENCH_service.json``.

Three modes::

    python -m repro.service.loadgen --mode bench    [--output F] ...
    python -m repro.service.loadgen --mode ci-smoke [--output F]
    python -m repro.service.loadgen --mode cluster-smoke [--output F]

``bench`` spawns a fresh server (or, with ``--cluster-shards N``, a
whole ``repro-cluster`` fleet) against an empty result cache, runs a
cold pass and an identical warm pass, and records both.  ``--loop
open`` switches from closed-loop concurrency to a fixed arrival rate
(``--rate``/``--duration``), and ``--slo-p99-ms`` turns the warm pass
into a pass/fail SLO gate: a warm p99 above the bound exits nonzero.
``ci-smoke`` is the single-server acceptance harness: it additionally
proves, from the outside, that

* N concurrent identical replay requests coalesce into **exactly one**
  pool execution (one result-cache miss on the ``/metrics``
  ``repro_result_cache_requests_total`` counter, N-1 single-flight
  followers),
* a full admission queue answers **429** with ``Retry-After``, and
* SIGTERM drains gracefully: every admitted request completes with a
  200 and the server exits 0.

``cluster-smoke`` is the fleet acceptance harness, against a 3-shard
``repro-cluster``:

* **routing affinity** — repeats of one spec all forward to the same
  shard (consistent-hash stability),
* **cluster-wide single-flight** — N identical concurrent requests
  cost exactly one execution *summed across every shard's metrics*,
* **rolling restart** — ``POST /v1/cluster/restart`` under continuous
  warm traffic completes with zero failed requests, and the warm key
  is still a cache hit afterwards (the shared on-disk tier survives),
* **drain** — SIGTERM completes every admitted request and exits 0.

All modes spawn their own server subprocess on an ephemeral port with
a private result-cache directory, so runs are reproducible and never
touch the user's cache.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    metric_value,
)
from repro.workloads.profiles import APP_ORDER

#: Default zipf skew: rank-1 gets ~an order of magnitude more traffic
#: than rank-5, which is the textbook "few hot keys" service profile.
DEFAULT_ZIPF_S = 1.2

#: Scale used for generated replay specs: small enough that one replay
#: is interactive, large enough to exercise the real machines.
SMOKE_SCALE = 0.05


def zipf_weights(n: int, s: float = DEFAULT_ZIPF_S) -> list[float]:
    """Normalised zipf weights for ranks 1..n."""
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]


@dataclass
class RunStats:
    """Latency/throughput summary of one load-generation pass."""

    requests: int = 0
    errors: int = 0
    shed: int = 0
    seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)

    def record(self, latency_ms: float) -> None:
        self.requests += 1
        self.latencies_ms.append(latency_ms)

    def summary(self) -> dict:
        ordered = sorted(self.latencies_ms)
        throughput = self.requests / self.seconds if self.seconds else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed_429": self.shed,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(throughput, 2),
            "p50_ms": round(percentile(ordered, 0.50), 3),
            "p99_ms": round(percentile(ordered, 0.99), 3),
        }


class SpecMix:
    """The zipf-over-traces request profile.

    Deterministic for a fixed seed: the loadgen's request sequence (and
    therefore its cache-hit structure) is reproducible run to run.
    """

    def __init__(self, seed: int = 0, zipf_s: float = DEFAULT_ZIPF_S,
                 scale: float = SMOKE_SCALE):
        self._rng = random.Random(seed)
        self._apps = APP_ORDER
        self._weights = zipf_weights(len(self._apps), zipf_s)
        self._scale = scale
        self._policies = ("conventional", "basic", "aggressive")

    def next_spec(self) -> dict:
        (app,) = self._rng.choices(self._apps, weights=self._weights)
        policy = self._rng.choice(self._policies)
        return {
            "engine": "directory", "app": app, "policy": policy,
            "cache_size": 64 * 1024, "scale": self._scale,
        }


async def closed_loop(client: AsyncServiceClient, mix: SpecMix,
                      total_requests: int, concurrency: int) -> RunStats:
    """``concurrency`` workers issue back-to-back requests until
    ``total_requests`` have been sent."""
    stats = RunStats()
    remaining = iter(range(total_requests))

    async def one_worker() -> None:
        for _ in remaining:
            spec = mix.next_spec()
            started = time.perf_counter()
            try:
                status, _headers, _payload = await client.replay_raw(**spec)
            except (OSError, asyncio.TimeoutError):
                stats.errors += 1
                continue
            latency = (time.perf_counter() - started) * 1000.0
            if status == 200:
                stats.record(latency)
            elif status == 429:
                stats.shed += 1
            else:
                stats.errors += 1

    begun = time.perf_counter()
    await asyncio.gather(*(one_worker() for _ in range(concurrency)))
    stats.seconds = time.perf_counter() - begun
    return stats


async def open_loop(client: AsyncServiceClient, mix: SpecMix,
                    rate_rps: float, duration_s: float) -> RunStats:
    """Fire requests at a fixed arrival rate regardless of completions
    (the backpressure-revealing discipline: offered load does not slow
    down when the server does)."""
    stats = RunStats()
    tasks: list[asyncio.Task] = []

    async def one_request() -> None:
        spec = mix.next_spec()
        started = time.perf_counter()
        try:
            status, _headers, _payload = await client.replay_raw(**spec)
        except (OSError, asyncio.TimeoutError):
            stats.errors += 1
            return
        latency = (time.perf_counter() - started) * 1000.0
        if status == 200:
            stats.record(latency)
        elif status == 429:
            stats.shed += 1
        else:
            stats.errors += 1

    interval = 1.0 / rate_rps
    begun = time.perf_counter()
    while time.perf_counter() - begun < duration_s:
        tasks.append(asyncio.ensure_future(one_request()))
        await asyncio.sleep(interval)
    await asyncio.gather(*tasks)
    stats.seconds = time.perf_counter() - begun
    return stats


# ----------------------------------------------------------------------
# Server supervision
# ----------------------------------------------------------------------

class ManagedServer:
    """A ``repro-serve`` subprocess on an ephemeral port.

    The result cache points at a private directory so cold passes are
    genuinely cold and metric assertions (misses == executions) hold.
    """

    def __init__(self, max_queue: int = 64, jobs: int | None = 1,
                 cache_dir: str | None = None,
                 extra_args: tuple[str, ...] = ()):
        self.max_queue = max_queue
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.extra_args = extra_args
        self.process: subprocess.Popen | None = None
        self.port: int | None = None

    def start(self, timeout: float = 60.0) -> None:
        command = [
            sys.executable, "-m", "repro.service.cli",
            "--port", "0", "--max-queue", str(self.max_queue),
            *self.extra_args,
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        env = dict(os.environ)
        if self.cache_dir is not None:
            env["REPRO_RESULT_CACHE"] = self.cache_dir
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        # The ready line carries the bound ephemeral port.
        deadline = time.monotonic() + timeout
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "listening on" in line:
                break
            if self.process.poll() is not None:
                raise RuntimeError("repro-serve exited before ready")
        else:
            raise TimeoutError("repro-serve never printed its ready line")
        self.port = int(line.rsplit(":", 1)[1].split()[0].strip("/"))
        ServiceClient("127.0.0.1", self.port).wait_ready(timeout=timeout)

    def sigterm(self) -> None:
        assert self.process is not None
        self.process.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 60.0) -> int:
        assert self.process is not None
        try:
            return self.process.wait(timeout=timeout)
        finally:
            if self.process.stdout is not None:
                self.process.stdout.close()

    def stop(self) -> int:
        """SIGTERM + wait (the graceful path); kill on timeout."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.sigterm()
        try:
            return self.wait()
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            self.process.kill()
            return self.process.wait()

    def __enter__(self) -> "ManagedServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ManagedCluster:
    """A ``repro-cluster`` subprocess (router + shard fleet).

    Same contract as :class:`ManagedServer` — ephemeral router port
    parsed from the ready line, private shared result-cache directory,
    SIGTERM for the graceful rolling drain.
    """

    def __init__(self, shards: int = 3, max_queue: int = 64,
                 jobs: int | None = 1, cache_dir: str | None = None,
                 router_cache: int = 256, replicas: int = 2,
                 hot_key_min: int = 8, hot_key_top: int = 4,
                 extra_args: tuple[str, ...] = ()):
        self.shards = shards
        self.max_queue = max_queue
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.router_cache = router_cache
        self.replicas = replicas
        self.hot_key_min = hot_key_min
        self.hot_key_top = hot_key_top
        self.extra_args = extra_args
        self.process: subprocess.Popen | None = None
        self.port: int | None = None

    def start(self, timeout: float = 180.0) -> None:
        command = [
            sys.executable, "-m", "repro.service.cluster",
            "--port", "0", "--shards", str(self.shards),
            "--max-queue", str(self.max_queue),
            "--router-cache", str(self.router_cache),
            "--replicas", str(self.replicas),
            "--hot-key-min", str(self.hot_key_min),
            "--hot-key-top", str(self.hot_key_top),
            *self.extra_args,
        ]
        if self.jobs is not None:
            command += ["--jobs", str(self.jobs)]
        env = dict(os.environ)
        if self.cache_dir is not None:
            env["REPRO_RESULT_CACHE"] = self.cache_dir
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        deadline = time.monotonic() + timeout
        line = ""
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if "routing http://" in line:
                break
            if self.process.poll() is not None:
                raise RuntimeError("repro-cluster exited before ready")
        else:
            raise TimeoutError("repro-cluster never printed its ready line")
        address = line.split("routing http://", 1)[1].split()[0]
        self.port = int(address.rsplit(":", 1)[1])
        ServiceClient("127.0.0.1", self.port).wait_ready(timeout=timeout)

    def sigterm(self) -> None:
        assert self.process is not None
        self.process.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 180.0) -> int:
        assert self.process is not None
        try:
            return self.process.wait(timeout=timeout)
        finally:
            if self.process.stdout is not None:
                self.process.stdout.close()

    def stop(self) -> int:
        """SIGTERM + wait (the graceful path); kill on timeout."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.sigterm()
        try:
            return self.wait()
        except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
            self.process.kill()
            return self.process.wait()

    def __enter__(self) -> "ManagedCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# The smoke checks (the acceptance criteria, verified from outside)
# ----------------------------------------------------------------------

class SmokeFailure(AssertionError):
    """One of the ci-smoke properties did not hold."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


async def check_single_flight(port: int, fanout: int = 8) -> dict:
    """N identical concurrent replays -> exactly one execution."""
    client = AsyncServiceClient("127.0.0.1", port)
    spec = {"engine": "directory", "app": "water", "policy": "basic",
            "cache_size": 64 * 1024, "scale": SMOKE_SCALE}
    responses = await asyncio.gather(
        *(client.replay(**spec) for _ in range(fanout))
    )
    results = [r["result"] for r in responses]
    _check(all(r == results[0] for r in results),
           "coalesced responses disagree")
    samples = await client.metrics()
    misses = metric_value(samples, "repro_result_cache_requests_total",
                          kind="directory", status="miss")
    hits = metric_value(samples, "repro_result_cache_requests_total",
                        kind="directory", status="hit")
    executions = metric_value(samples, "repro_service_executions_total",
                              kind="directory")
    followers = metric_value(samples, "repro_service_singleflight_total",
                             role="follower")
    _check(executions == 1,
           f"expected exactly 1 execution for {fanout} identical "
           f"requests, metrics report {executions}")
    _check(misses == 1,
           f"expected exactly 1 result-cache miss, metrics report "
           f"{misses}")
    # A request that straggles in after the leader resolved is a cache
    # hit rather than a follower — either way it did not execute.
    _check(followers + hits == fanout - 1,
           f"expected {fanout - 1} coalesced/cached requests, metrics "
           f"report followers={followers} hits={hits}")
    # The repeat is a pure cache hit: no new execution.
    repeat = await client.replay(**spec)
    _check(repeat["cached"] is True, "repeat request was not a cache hit")
    _check(repeat["result"] == results[0],
           "cache hit returned different stats")
    samples = await client.metrics()
    hits = metric_value(samples, "repro_result_cache_requests_total",
                        kind="directory", status="hit")
    executions_after = metric_value(
        samples, "repro_service_executions_total", kind="directory"
    )
    _check(hits >= 1, "repeat request did not count a cache hit")
    _check(executions_after == executions,
           "repeat request triggered a new execution")
    return {"fanout": fanout, "executions": int(executions),
            "misses": int(misses), "followers": int(followers),
            "repeat_cached": True}


async def check_backpressure(port: int, burst: int = 12) -> dict:
    """Distinct slow-ish requests against a tiny queue -> some 429s,
    each carrying Retry-After, and every admitted request succeeds."""
    client = AsyncServiceClient("127.0.0.1", port)
    outcomes = await asyncio.gather(*(
        client.replay_raw(
            engine="directory", app=APP_ORDER[i % len(APP_ORDER)],
            policy="basic", cache_size=(4 + i) * 1024, scale=SMOKE_SCALE,
        )
        for i in range(burst)
    ))
    statuses = [status for status, _, _ in outcomes]
    shed = [(status, headers) for status, headers, _ in outcomes
            if status == 429]
    _check(shed, f"no 429 out of {burst} bursts against a full queue "
           f"(statuses: {statuses})")
    _check(all(headers.get("retry-after") for _, headers in shed),
           "429 responses missing Retry-After")
    _check(all(status in (200, 429) for status in statuses),
           f"unexpected statuses in backpressure burst: {statuses}")
    _check(statuses.count(200) >= 1, "every request was shed")
    return {"burst": burst, "accepted": statuses.count(200),
            "shed": len(shed)}


async def check_drain(server: ManagedServer, inflight: int = 4) -> dict:
    """SIGTERM mid-flight: every admitted request still completes."""
    client = AsyncServiceClient("127.0.0.1", server.port)
    # Distinct uncached specs so each needs a real (serialised, with
    # --jobs 1) execution: the drain has actual work to wait for.
    tasks = [
        asyncio.ensure_future(client.replay(
            engine="directory", app="water", policy="conservative",
            cache_size=(32 + i) * 1024, scale=SMOKE_SCALE,
        ))
        for i in range(inflight)
    ]
    # Give the burst time to be admitted, then pull the plug.
    await asyncio.sleep(0.3)
    server.sigterm()
    responses = await asyncio.gather(*tasks)
    _check(all(r["type"] == "replay" for r in responses),
           "an admitted request did not complete during drain")
    exit_code = server.wait()
    _check(exit_code == 0,
           f"server exited {exit_code} after graceful drain")
    return {"inflight": inflight, "completed": len(responses),
            "exit_code": exit_code}


# ----------------------------------------------------------------------
# Cluster smoke checks (the fleet acceptance criteria, from outside)
# ----------------------------------------------------------------------

async def check_cluster_affinity(port: int, repeats: int = 4) -> dict:
    """Repeats of one spec all forward to one shard.

    Runs first (forward counters must start at zero) on a cluster with
    the router cache disabled, with fewer repeats than the hot-key
    floor so replication cannot legitimately spread the key.
    """
    client = AsyncServiceClient("127.0.0.1", port)
    spec = {"engine": "directory", "app": "water", "policy": "basic",
            "cache_size": 48 * 1024, "scale": SMOKE_SCALE}
    for _ in range(repeats):
        await client.replay(**spec)
    status = await client.cluster_status()
    owners = [s for s in status["shards"] if s["forwards"] > 0]
    _check(len(owners) == 1,
           f"expected one owning shard for a repeated spec, forwards "
           f"landed on {[s['name'] for s in owners]}")
    _check(owners[0]["forwards"] == repeats,
           f"owning shard saw {owners[0]['forwards']} forwards, "
           f"expected {repeats}")
    return {"repeats": repeats, "owner": owners[0]["name"]}


async def check_cluster_single_flight(port: int, fanout: int = 8) -> dict:
    """N identical concurrent requests -> one execution, fleet-wide.

    The execution count is summed across every shard's metrics via the
    router's combined exposition, so coalescing is proven cluster-wide,
    not per-shard.
    """
    client = AsyncServiceClient("127.0.0.1", port)
    spec = {"engine": "directory", "app": "water", "policy": "aggressive",
            "cache_size": 40 * 1024, "scale": SMOKE_SCALE}
    before = metric_value(await client.metrics(),
                          "repro_service_executions_total",
                          kind="directory")
    responses = await asyncio.gather(
        *(client.replay(**spec) for _ in range(fanout))
    )
    results = [r["result"] for r in responses]
    _check(all(r == results[0] for r in results),
           "coalesced cluster responses disagree")
    samples = await client.metrics()
    after = metric_value(samples, "repro_service_executions_total",
                         kind="directory")
    executed = after - before
    _check(executed == 1,
           f"expected exactly 1 fleet-wide execution for {fanout} "
           f"identical requests, shard metrics report {executed}")
    leaders = metric_value(samples, "repro_cluster_singleflight_total",
                           role="leader")
    followers = metric_value(samples, "repro_cluster_singleflight_total",
                             role="follower")
    _check(leaders >= 1, "router recorded no single-flight leader")
    return {"fanout": fanout, "executed": int(executed),
            "router_followers": int(followers)}


async def check_cluster_restart(port: int) -> dict:
    """Rolling restart under load: zero failures, warm keys survive."""
    # The restart request spans every shard's stop/spawn/ready cycle;
    # give it headroom beyond the per-request default.
    client = AsyncServiceClient("127.0.0.1", port, timeout=180.0)
    warm_spec = {"engine": "directory", "app": "water", "policy": "basic",
                 "cache_size": 48 * 1024, "scale": SMOKE_SCALE}
    # Warm the key (it is already cached from the affinity check, but
    # do not depend on check ordering).
    await client.replay(**warm_spec)
    outcomes: list[int] = []
    running = True

    async def traffic() -> None:
        while running:
            try:
                status, _, _ = await client.replay_raw(**warm_spec)
            except (OSError, asyncio.TimeoutError):
                outcomes.append(-1)
            else:
                outcomes.append(status)
            await asyncio.sleep(0.05)

    task = asyncio.ensure_future(traffic())
    try:
        report = await client.cluster_restart()
    finally:
        running = False
        await task
    _check(report["ok"], f"rolling restart reported failure: {report}")
    _check(len(report["shards"]) >= 2, "restart touched fewer shards "
           "than the fleet holds")
    _check(bool(outcomes), "no traffic observed during the restart")
    failed = [status for status in outcomes if status != 200]
    _check(not failed,
           f"{len(failed)} request(s) failed during the rolling restart "
           f"(statuses: {sorted(set(failed))}); expected zero")
    # Every shard's in-memory state is gone; the shared on-disk tier
    # must still answer the warm key as a hit.
    survivor = await client.replay(**warm_spec)
    _check(survivor["cached"] is True,
           "warm key was not a cache hit after the rolling restart")
    status = await client.cluster_status()
    restarts = sum(s["restarts"] for s in status["shards"])
    _check(restarts >= len(status["shards"]),
           f"expected every shard restarted, counters say {restarts}")
    return {"requests_during_restart": len(outcomes), "failed": 0,
            "warm_hit_after_restart": True,
            "shards_restarted": len(report["shards"])}


async def check_cluster_drain(cluster: ManagedCluster,
                              inflight: int = 4) -> dict:
    """SIGTERM the router mid-flight: admitted requests complete, the
    rolling shard drain loses nothing, and the process exits 0."""
    client = AsyncServiceClient("127.0.0.1", cluster.port)
    tasks = [
        asyncio.ensure_future(client.replay(
            engine="directory", app="water", policy="conservative",
            cache_size=(56 + i) * 1024, scale=SMOKE_SCALE,
        ))
        for i in range(inflight)
    ]
    await asyncio.sleep(0.3)
    cluster.sigterm()
    responses = await asyncio.gather(*tasks)
    _check(all(r["type"] == "replay" for r in responses),
           "an admitted request did not complete during cluster drain")
    exit_code = cluster.wait()
    _check(exit_code == 0,
           f"cluster exited {exit_code} after graceful drain")
    return {"inflight": inflight, "completed": len(responses),
            "exit_code": exit_code}


# ----------------------------------------------------------------------
# Modes
# ----------------------------------------------------------------------

def _bench_passes(port: int, requests: int, concurrency: int,
                  zipf_s: float) -> tuple[dict, dict]:
    """One cold and one identical warm closed-loop pass."""
    client = AsyncServiceClient("127.0.0.1", port)
    cold = asyncio.run(closed_loop(
        client, SpecMix(seed=1, zipf_s=zipf_s), requests, concurrency
    ))
    warm = asyncio.run(closed_loop(
        client, SpecMix(seed=1, zipf_s=zipf_s), requests, concurrency
    ))
    return cold.summary(), warm.summary()


def _bench_passes_open(port: int, rate_rps: float, duration_s: float,
                       zipf_s: float) -> tuple[dict, dict]:
    """One cold and one identical warm open-loop pass."""
    client = AsyncServiceClient("127.0.0.1", port)
    cold = asyncio.run(open_loop(
        client, SpecMix(seed=1, zipf_s=zipf_s), rate_rps, duration_s
    ))
    warm = asyncio.run(open_loop(
        client, SpecMix(seed=1, zipf_s=zipf_s), rate_rps, duration_s
    ))
    return cold.summary(), warm.summary()


def run_bench(args) -> dict:
    """The ``bench`` mode body; returns the report dict."""
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as cache_dir:
        if args.cluster_shards:
            target = ManagedCluster(
                shards=args.cluster_shards, max_queue=args.max_queue,
                jobs=args.jobs, cache_dir=cache_dir,
                router_cache=args.router_cache, replicas=args.replicas,
            )
        else:
            target = ManagedServer(max_queue=args.max_queue,
                                   jobs=args.jobs, cache_dir=cache_dir)
        with target:
            if args.loop == "open":
                cold, warm = _bench_passes_open(
                    target.port, args.rate, args.duration, args.zipf_s
                )
            else:
                cold, warm = _bench_passes(
                    target.port, args.requests, args.concurrency,
                    args.zipf_s
                )
    report = {
        "benchmark": "repro.service load generator",
        "mode": "bench",
        "config": {
            "requests": args.requests, "concurrency": args.concurrency,
            "zipf_s": args.zipf_s, "max_queue": args.max_queue,
            "jobs": args.jobs, "scale": SMOKE_SCALE,
            "loop": args.loop,
            "cluster_shards": args.cluster_shards,
        },
        "cold": cold,
        "warm": warm,
    }
    if args.loop == "open":
        report["config"]["rate_rps"] = args.rate
        report["config"]["duration_s"] = args.duration
    if args.slo_p99_ms is not None:
        met = warm["p99_ms"] <= args.slo_p99_ms and warm["errors"] == 0
        report["slo"] = {"p99_ms_bound": args.slo_p99_ms,
                         "warm_p99_ms": warm["p99_ms"],
                         "warm_errors": warm["errors"], "met": met}
        if not met:
            raise SmokeFailure(
                f"warm p99 {warm['p99_ms']}ms (errors={warm['errors']}) "
                f"violates the --slo-p99-ms {args.slo_p99_ms}ms bound"
            )
    return report


def run_ci_smoke(args) -> dict:
    """The ``ci-smoke`` mode body; raises SmokeFailure on any miss."""
    checks: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as cache_dir:
        # Phase 1+2+4 server: generous queue, fresh cache, one worker
        # (executions serialise, giving the drain real work to finish).
        server = ManagedServer(max_queue=32, jobs=1, cache_dir=cache_dir)
        server.start()
        try:
            checks["single_flight"] = asyncio.run(
                check_single_flight(server.port)
            )
            cold, warm = _bench_passes(
                server.port, args.requests, args.concurrency, args.zipf_s
            )
            checks["drain"] = asyncio.run(check_drain(server))
        finally:
            server.stop()

        # Phase 3 server: a queue of 1 makes shedding deterministic
        # under any burst of 2+ concurrent distinct requests.
        with ManagedServer(max_queue=1, jobs=1,
                           cache_dir=cache_dir) as tiny:
            checks["backpressure"] = asyncio.run(
                check_backpressure(tiny.port)
            )

    return {
        "benchmark": "repro.service load generator",
        "mode": "ci-smoke",
        "config": {
            "requests": args.requests, "concurrency": args.concurrency,
            "zipf_s": args.zipf_s, "jobs": 1, "scale": SMOKE_SCALE,
            "loop": "closed",
        },
        "cold": cold,
        "warm": warm,
        "checks": checks,
    }


def run_cluster_smoke(args) -> dict:
    """The ``cluster-smoke`` mode body; raises SmokeFailure on any miss.

    The fleet runs with the router cache tier *disabled* so that every
    request reaches a shard — affinity and fleet-wide single-flight are
    only observable at the shard level.
    """
    checks: dict = {}
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as cache_dir:
        cluster = ManagedCluster(shards=3, max_queue=32, jobs=1,
                                 cache_dir=cache_dir, router_cache=0,
                                 replicas=2)
        cluster.start()
        try:
            # Affinity first: forward counters are cumulative, so this
            # must observe them from zero.
            checks["affinity"] = asyncio.run(
                check_cluster_affinity(cluster.port)
            )
            checks["single_flight"] = asyncio.run(
                check_cluster_single_flight(cluster.port)
            )
            checks["rolling_restart"] = asyncio.run(
                check_cluster_restart(cluster.port)
            )
            checks["drain"] = asyncio.run(check_cluster_drain(cluster))
        finally:
            cluster.stop()
    return {
        "benchmark": "repro.service load generator",
        "mode": "cluster-smoke",
        "config": {"shards": 3, "max_queue": 32, "jobs": 1,
                   "router_cache": 0, "replicas": 2,
                   "scale": SMOKE_SCALE},
        "checks": checks,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    from repro.common.version import add_version_argument

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Drive repro-serve with zipf-over-traces load; "
        "verify serving properties and record BENCH_service.json.",
    )
    add_version_argument(parser)
    parser.add_argument("--mode",
                        choices=("bench", "ci-smoke", "cluster-smoke"),
                        default="bench")
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per pass (default 60)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop workers (default 8)")
    parser.add_argument("--loop", choices=("closed", "open"),
                        default="closed",
                        help="bench discipline: closed (fixed "
                        "concurrency) or open (fixed arrival rate)")
    parser.add_argument("--rate", type=float, default=20.0,
                        help="open-loop arrival rate in rps "
                        "(default 20)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="open-loop pass duration in seconds "
                        "(default 5)")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="bench gate: exit nonzero if the warm "
                        "pass p99 exceeds this bound or saw errors")
    parser.add_argument("--zipf-s", type=float, default=DEFAULT_ZIPF_S,
                        help=f"zipf skew over traces "
                        f"(default {DEFAULT_ZIPF_S})")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="server admission bound for bench mode "
                        "(default 64)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="server replay workers (default 1)")
    parser.add_argument("--cluster-shards", type=int, default=0,
                        help="bench against a repro-cluster fleet of "
                        "this many shards (default 0 = single server)")
    parser.add_argument("--router-cache", type=int, default=256,
                        help="router cache entries for --cluster-shards "
                        "benches (default 256)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="hot-key replicas for --cluster-shards "
                        "benches (default 2)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here "
                        "(e.g. BENCH_service.json)")
    args = parser.parse_args(argv)

    runners = {"bench": run_bench, "ci-smoke": run_ci_smoke,
               "cluster-smoke": run_cluster_smoke}
    try:
        report = runners[args.mode](args)
    except SmokeFailure as exc:
        print(f"loadgen: FAIL: {exc}", file=sys.stderr)
        return 1

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[wrote {args.output}]", file=sys.stderr)
    print(json.dumps(report, indent=2))
    if args.mode == "ci-smoke":
        print("loadgen: ci-smoke PASS (single-flight dedup, 429 "
              "backpressure, graceful drain)", file=sys.stderr)
    elif args.mode == "cluster-smoke":
        print("loadgen: cluster-smoke PASS (routing affinity, "
              "cluster-wide single-flight, lossless rolling restart, "
              "graceful drain)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
