"""The consistent-hash cluster router.

One :class:`ClusterRouter` fronts N shard workers (spawned and reaped
by :class:`repro.service.shards.ShardSupervisor`) and routes every
query on its **result-cache affinity key** — a canonical projection of
the validated request that maps 1:1 onto the replay result cache's
content key — over a :class:`repro.service.ring.HashRing`.  The same
spec always lands on the same shard, so each shard's in-process caches
(result-cache memory front, trace cache, shm arena, grown kernel DFAs)
stay hot for *its* slice of the key space instead of every shard
slowly warming every key.

On top of routing the router adds:

* **Cluster-wide single-flight** — identical concurrent requests
  anywhere in the fleet coalesce at the router: one leader forwards,
  followers await its outcome.  A thundering herd of N identical
  requests costs one shard execution, fleet-wide.
* **A tiered result cache** — a bounded in-memory LRU
  (:class:`repro.experiments.resultcache.MemoryLru`) over the shards'
  shared on-disk tier over each shard's own memory front.  A router
  hit answers with ``"tier": "router"`` and never touches a shard.
* **Hot-key replication** — the top-k most-requested keys (past a
  count floor) fan out round-robin across ``replicas`` distinct shards
  from the ring's preference list, so a zipf head cannot serialise on
  one shard while the rest idle.
* **Health + circuit breaking** — a background prober marks a shard
  dead after consecutive failures (or on a forwarding connection
  error), removes it from the ring immediately, reroutes in-flight
  retries to the next preference, and respawns the shard in the
  background; the ring re-grows when the replacement is ready.
* **Rolling restart** (``POST /v1/cluster/restart``) — shards restart
  one at a time: removed from the ring first, drained to zero local
  in-flight, SIGTERMed, respawned, re-added.  No admitted request ever
  observes the restarting shard, which is what makes the zero-failure
  drain guarantee structural rather than statistical.

``GET /metrics`` aggregates every live shard's exposition with the
router's own registry via :func:`repro.telemetry.metrics.
combine_prometheus_texts`, each sample relabeled ``shard="..."`` /
``shard="router"``.  ``GET /v1/cluster/status`` reports ring shares,
per-shard health, cache-tier counters, and the current hot set.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.experiments import resultcache
from repro.service import protocol
from repro.service.protocol import (
    CompareRequest,
    ExperimentRequest,
    ServiceError,
    VerifyRequest,
)
from repro.service.ring import HashRing
from repro.service.server import (
    RETRY_AFTER_SECONDS,
    _parse_json,
    _read_request,
    _write_response,
)
from repro.service.shards import ShardError, ShardHandle, ShardSupervisor
from repro.telemetry.metrics import MetricsRegistry, combine_prometheus_texts

#: Metric families the router maintains (all in its own registry, which
#: renders under ``shard="router"`` in the combined exposition).
REQUESTS_METRIC = "repro_cluster_requests_total"
SINGLEFLIGHT_METRIC = "repro_cluster_singleflight_total"
CACHE_METRIC = "repro_cluster_cache_total"
FORWARDS_METRIC = "repro_cluster_forwards_total"
SHARD_UP_METRIC = "repro_cluster_shard_up"
RESTARTS_METRIC = "repro_cluster_restarts_total"

#: The query endpoints the router routes (everything else it answers
#: itself).
QUERY_PATHS = ("/v1/replay", "/v1/compare", "/v1/experiment", "/v1/verify")

#: Consecutive health-probe failures before a shard is declared dead.
FAILURE_THRESHOLD = 2

#: Hot-set recomputation stride (requests between top-k refreshes).
_HOT_REFRESH_EVERY = 32


def routing_key(path: str, payload: dict) -> str:
    """The affinity key one validated query routes on.

    A canonical projection of the request's behavioural fields — the
    same fields the replay result cache keys on (the trace digest is a
    pure function of ``(app, num_procs, seed, scale)``, so the spec
    projection maps 1:1 to cache entries without the router ever
    building a trace).  Validation happens here, at the edge: malformed
    requests raise :class:`ServiceError` and never reach a shard.
    """
    if path == "/v1/replay":
        spec = protocol.parse_replay_request(payload)
        parts: tuple = ("replay", *sorted(spec.to_payload().items()))
    elif path == "/v1/compare":
        request = CompareRequest.from_payload(payload)
        parts = ("compare", *sorted(request.spec.to_payload().items()),
                 *request.policies)
    elif path == "/v1/experiment":
        request = ExperimentRequest.from_payload(payload)
        parts = ("experiment", request.name, request.scale, request.seed,
                 *request.apps)
    elif path == "/v1/verify":
        request = VerifyRequest.from_payload(payload)
        parts = ("verify", request.engine, request.protocol or "-",
                 request.num_procs, request.num_blocks, request.evictions)
    else:  # pragma: no cover - guarded by the dispatcher
        raise ServiceError(f"unroutable path {path!r}")
    spec_text = "|".join(str(part) for part in parts)
    return hashlib.sha256(spec_text.encode()).hexdigest()[:24]


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Knobs for one router + shard fleet.

    Attributes:
        host: bind address (router and shards).
        port: router bind port (0 = ephemeral).
        shards: shard worker count.
        max_queue: per-shard admission bound; the router's own bound is
            ``shards * max_queue``.
        jobs: per-shard replay workers (see ``repro-serve --jobs``).
        router_cache: router in-memory LRU capacity (entries); 0
            disables the router tier entirely.
        replicas: shards a hot key fans out across (1 = no replication).
        hot_key_min: requests before a key may be considered hot.
        hot_key_top: size of the hot set (top-k by request count).
        cache_dir: shared on-disk result-cache directory for the fleet;
            None inherits the ambient ``REPRO_RESULT_CACHE`` resolution.
        telemetry_dir: when set, the router dumps its combined
            ``metrics.prom`` there on drain.
    """

    host: str = "127.0.0.1"
    port: int = 8078
    shards: int = 2
    max_queue: int = 64
    jobs: int | None = None
    router_cache: int = 256
    replicas: int = 2
    hot_key_min: int = 8
    hot_key_top: int = 4
    cache_dir: str | Path | None = None
    telemetry_dir: str | Path | None = None


class _Shard:
    """Router-side state for one shard worker."""

    __slots__ = ("name", "handle", "inflight", "forwards", "failures",
                 "restarts", "healthy", "restarting")

    def __init__(self, name: str, handle: ShardHandle):
        self.name = name
        self.handle = handle
        self.inflight = 0
        self.forwards = 0
        self.failures = 0
        self.restarts = 0
        self.healthy = True
        self.restarting = False

    @property
    def port(self) -> int:
        return self.handle.port


class NoShardAvailable(ServiceError):
    """Every candidate shard refused or dropped the forward."""


class ClusterRouter:
    """The sharded serving fleet's front door (see module docstring)."""

    def __init__(self, config: ClusterConfig):
        if config.shards < 1:
            raise ServiceError("cluster needs at least one shard")
        if config.replicas < 1:
            raise ServiceError("replicas must be at least 1")
        self.config = config
        cache_dir = config.cache_dir
        if cache_dir is None:
            cache_dir = resultcache.cache_dir()
        self.supervisor = ShardSupervisor(
            host=config.host, max_queue=config.max_queue, jobs=config.jobs,
            cache_dir=cache_dir,
        )
        self.ring = HashRing()
        self.registry = MetricsRegistry()
        self._shards: dict[str, _Shard] = {}
        self._cache = (resultcache.MemoryLru(config.router_cache)
                       if config.router_cache > 0 else None)
        self._inflight: dict[str, asyncio.Future] = {}
        self._key_counts: dict[str, int] = {}
        self._hot: frozenset[str] = frozenset()
        self._rr: dict[str, int] = {}
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._started_at = 0.0
        self._admitted = 0
        self._served = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: set[asyncio.StreamWriter] = set()
        self._health_task: asyncio.Task | None = None
        self._restart_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The router's bound port (meaningful after :meth:`start`)."""
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def served(self) -> int:
        """Requests answered 200 so far."""
        return self._served

    async def start(self) -> None:
        """Spawn the fleet, populate the ring, bind the router socket."""
        self._started_at = time.time()
        names = [f"shard-{index}" for index in range(self.config.shards)]
        handles = await asyncio.gather(
            *(self.supervisor.spawn(name) for name in names)
        )
        for name, handle in zip(names, handles):
            self._shards[name] = _Shard(name, handle)
            self.ring.add(name)
            self._gauge_up(name, True)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Router drain: close the door, finish work, drain the fleet.

        Shards drain **one at a time**: each is removed from the ring
        (so the drain of shard k never affects traffic that would have
        hit shard k+1 had the router still been accepting), waited to
        zero router-tracked in-flight forwards, then SIGTERMed and
        reaped through its own graceful drain.  Idempotent.
        """
        if self._draining:
            await self._idle.wait()
            return
        self._draining = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        for name in sorted(self._shards):
            shard = self._shards[name]
            self.ring.remove(name)
            await self._wait_shard_idle(shard)
            await self.supervisor.stop(shard.handle)
            self._gauge_up(name, False)
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        if self.config.telemetry_dir is not None:
            directory = Path(self.config.telemetry_dir)
            directory.mkdir(parents=True, exist_ok=True)
            (directory / "metrics.prom").write_text(
                self.registry.render_prometheus()
            )

    # ------------------------------------------------------------------
    # Connection handling (same framing as the shard server)
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServiceError as exc:
                    body = json.dumps(
                        protocol.error_response(str(exc))
                    ).encode()
                    await _write_response(writer, 400, body,
                                          "application/json",
                                          keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: tuple, writer) -> bool:
        method, path, headers, body = request
        keep_alive = headers.get("connection", "").lower() != "close"
        if path == "/healthz":
            if method != "GET":
                return await self._respond_error(writer, path, 405,
                                                 "use GET", keep_alive)
            await self._respond_json(writer, path, 200, self._health(),
                                     keep_alive and not self._draining)
            return keep_alive and not self._draining
        if path == "/metrics":
            if method != "GET":
                return await self._respond_error(writer, path, 405,
                                                 "use GET", keep_alive)
            text = await self._combined_metrics()
            await _write_response(writer, 200, text.encode(),
                                  "text/plain; version=0.0.4",
                                  keep_alive=keep_alive)
            self._count_request(path, 200)
            return keep_alive
        if path == "/v1/cluster/status":
            if method != "GET":
                return await self._respond_error(writer, path, 405,
                                                 "use GET", keep_alive)
            await self._respond_json(
                writer, path, 200,
                protocol.cluster_status_response(self._status()),
                keep_alive,
            )
            return keep_alive
        if path == "/v1/cluster/restart":
            if method != "POST":
                return await self._respond_error(writer, path, 405,
                                                 "use POST", keep_alive)
            return await self._serve_restart(writer, path, keep_alive)
        if path in QUERY_PATHS:
            if method != "POST":
                return await self._respond_error(writer, path, 405,
                                                 "use POST", keep_alive)
            return await self._serve_query(path, body, writer, keep_alive)
        return await self._respond_error(writer, path, 404,
                                         f"no such endpoint: {path}",
                                         keep_alive)

    # ------------------------------------------------------------------
    # Query pipeline: validate -> cache -> single-flight -> forward
    # ------------------------------------------------------------------

    async def _serve_query(self, path: str, body: bytes, writer,
                           keep_alive: bool) -> bool:
        if self._draining:
            return await self._respond_error(
                writer, path, 503, "cluster is draining", keep_alive=False
            )
        if self._admitted >= self.config.max_queue * len(self._shards):
            return await self._respond_error(
                writer, path, 429,
                "cluster admission queue full; retry later", keep_alive,
                extra_headers=(f"Retry-After: {RETRY_AFTER_SECONDS}",),
            )
        self._admitted += 1
        self._idle.clear()
        try:
            payload = _parse_json(body)
            key = routing_key(path, payload)
            status, response, extra = await self._answer(path, key, body)
        except ServiceError as exc:
            return await self._respond_error(writer, path, 400, str(exc),
                                             keep_alive)
        except Exception:
            traceback.print_exc(file=sys.stderr)
            return await self._respond_error(
                writer, path, 500, "internal error (see router log)",
                keep_alive,
            )
        else:
            if status == 200:
                self._served += 1
            await self._respond_json(writer, path, status, response,
                                     keep_alive, extra_headers=extra)
            return keep_alive
        finally:
            self._admitted -= 1
            if self._admitted == 0:
                self._idle.set()

    async def _answer(self, path: str, key: str, body: bytes
                      ) -> tuple[int, dict, tuple[str, ...]]:
        """One routed query; returns ``(status, payload, extra_headers)``."""
        self._note_key(key)
        if self._cache is not None:
            hit = self._cache.get(key)
            self._count_cache("router", "hit" if hit is not None else "miss")
            if hit is not None:
                return 200, {**hit, "cached": True, "tier": "router"}, ()

        existing = self._inflight.get(key)
        if existing is not None:
            # Cluster-wide single-flight: share the leader's outcome
            # (including its error, if it got one) without a second
            # shard execution anywhere in the fleet.
            self._count_singleflight("follower")
            status, payload, extra = await existing
            if status == 200:
                payload = {**payload, "coalesced": True}
            return status, payload, extra

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._count_singleflight("leader")
        try:
            outcome = await self._forward_query(path, key, body)
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved; followers still read it
            raise
        else:
            future.set_result(outcome)
            status, payload, _extra = outcome
            if status == 200 and self._cache is not None:
                self._cache.put(key, payload)
            return outcome
        finally:
            self._inflight.pop(key, None)

    async def _forward_query(self, path: str, key: str, body: bytes
                             ) -> tuple[int, dict, tuple[str, ...]]:
        """Forward to the routed shard, rerouting around failures.

        A connection error or shard 503 marks the shard for restart and
        moves to the next candidate on the ring's preference list; only
        when every live shard has refused does the client see a 503.
        """
        tried: set[str] = set()
        while True:
            shard = self._pick(key, tried)
            if shard is None:
                return 503, protocol.error_response(
                    "no shard available for this request"
                ), ()
            shard.inflight += 1
            try:
                status, headers, payload = await self._shard_request(
                    shard.port, "POST", path, body
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                tried.add(shard.name)
                self._count_forward(shard.name, "error")
                self._shard_failed(shard)
                continue
            finally:
                shard.inflight -= 1
            if status == 503:
                # The shard is draining under us (e.g. an external
                # SIGTERM): treat like a death, reroute.
                tried.add(shard.name)
                self._count_forward(shard.name, status)
                self._shard_failed(shard)
                continue
            shard.forwards += 1
            shard.failures = 0
            self._count_forward(shard.name, status)
            extra = ()
            retry_after = headers.get("retry-after")
            if retry_after:
                extra = (f"Retry-After: {retry_after}",)
            return status, payload, extra

    def _pick(self, key: str, tried: set[str]) -> _Shard | None:
        """The shard one query forwards to.

        Cold keys route straight off the ring; hot keys round-robin
        across the first ``replicas`` distinct shards of the ring's
        preference list.  ``tried`` shards (this request's failures)
        are skipped by walking further down the preference list.
        """
        if not len(self.ring):
            return None
        replicas = self.config.replicas
        if replicas > 1 and key in self._hot:
            candidates = self.ring.preference(key, replicas)
            turn = self._rr.get(key, -1) + 1
            self._rr[key] = turn
            candidates = (candidates[turn % len(candidates):]
                          + candidates[:turn % len(candidates)])
        else:
            candidates = [self.ring.route(key)]
        if tried:
            # Extend with every remaining ring member so a partial
            # outage degrades to "any live shard" rather than a 503.
            seen = set(candidates)
            candidates += [name for name
                           in self.ring.preference(key, len(self.ring))
                           if name not in seen]
        for name in candidates:
            shard = self._shards.get(name)
            if shard is not None and name not in tried and shard.healthy:
                return shard
        return None

    def _note_key(self, key: str) -> None:
        counts = self._key_counts
        counts[key] = counts.get(key, 0) + 1
        if sum(counts.values()) % _HOT_REFRESH_EVERY == 0:
            self._refresh_hot()

    def _refresh_hot(self) -> None:
        floor = self.config.hot_key_min
        ranked = sorted(
            ((count, key) for key, count in self._key_counts.items()
             if count >= floor),
            reverse=True,
        )
        self._hot = frozenset(
            key for _, key in ranked[: self.config.hot_key_top]
        )

    # ------------------------------------------------------------------
    # Shard health, death, and restart
    # ------------------------------------------------------------------

    async def _health_loop(self) -> None:
        """Background prober: dead shards leave the ring immediately."""
        while True:
            await asyncio.sleep(0.5)
            for shard in list(self._shards.values()):
                if shard.restarting or not shard.healthy:
                    continue
                if not shard.handle.alive():
                    self._shard_failed(shard, immediately=True)
                    continue
                try:
                    status, _, _ = await asyncio.wait_for(
                        self._shard_request(shard.port, "GET", "/healthz",
                                            b""),
                        2.0,
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    self._shard_failed(shard)
                else:
                    if status == 200:
                        shard.failures = 0

    def _shard_failed(self, shard: _Shard, immediately: bool = False
                      ) -> None:
        """Count one failure; past the threshold, break the circuit."""
        shard.failures += 1
        if not immediately and shard.failures < FAILURE_THRESHOLD:
            return
        if shard.restarting or self._draining:
            return
        shard.healthy = False
        shard.restarting = True
        self.ring.remove(shard.name)
        self._gauge_up(shard.name, False)
        asyncio.get_running_loop().create_task(self._revive(shard))

    async def _revive(self, shard: _Shard) -> None:
        """Respawn a dead shard and re-add it to the ring when ready."""
        try:
            handle = await self.supervisor.restart(shard.handle)
        except ShardError:
            shard.restarting = False
            return  # next health tick retries via _shard_failed
        shard.handle = handle
        shard.failures = 0
        shard.restarts += 1
        shard.healthy = True
        shard.restarting = False
        self.registry.counter(
            RESTARTS_METRIC, "shard restarts by the router"
        ).inc(shard=shard.name)
        if not self._draining:
            self.ring.add(shard.name)
            self._gauge_up(shard.name, True)

    async def _wait_shard_idle(self, shard: _Shard) -> None:
        while shard.inflight > 0:
            await asyncio.sleep(0.01)

    async def _serve_restart(self, writer, path: str, keep_alive: bool
                             ) -> bool:
        if self._draining:
            return await self._respond_error(
                writer, path, 503, "cluster is draining", keep_alive=False
            )
        started = perf_counter()
        async with self._restart_lock:
            report = await self._rolling_restart()
        await self._respond_json(
            writer, path, 200,
            protocol.cluster_restart_response(
                report, (perf_counter() - started) * 1000.0
            ),
            keep_alive,
        )
        return keep_alive

    async def _rolling_restart(self) -> list[dict]:
        """Restart every shard, one at a time, with zero lost requests.

        Order of operations per shard is the whole guarantee: ring
        removal happens on the router's event loop *before* the drain
        wait, so no new forward can select the shard; the wait ensures
        every already-forwarded request got its response; only then is
        SIGTERM sent.  The ring shrinks by one and regrows when the
        replacement reports ready.
        """
        report = []
        for name in sorted(self._shards):
            shard = self._shards[name]
            started = perf_counter()
            shard.restarting = True
            self.ring.remove(name)
            self._gauge_up(name, False)
            await self._wait_shard_idle(shard)
            try:
                handle = await self.supervisor.restart(shard.handle)
            except ShardError as exc:
                shard.restarting = False
                shard.healthy = False
                report.append({"shard": name, "ok": False,
                               "error": str(exc)})
                continue
            shard.handle = handle
            shard.failures = 0
            shard.restarts += 1
            shard.healthy = True
            shard.restarting = False
            self.ring.add(name)
            self._gauge_up(name, True)
            self.registry.counter(
                RESTARTS_METRIC, "shard restarts by the router"
            ).inc(shard=name)
            report.append({
                "shard": name, "ok": True,
                "elapsed_ms": round((perf_counter() - started) * 1000.0, 3),
            })
        return report

    # ------------------------------------------------------------------
    # Shard HTTP plumbing
    # ------------------------------------------------------------------

    async def _shard_request(self, port: int, method: str, path: str,
                             body: bytes
                             ) -> tuple[int, dict, object]:
        """One request to one shard; returns (status, headers, payload)."""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.config.host}:{port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        if body:
            head.append("Content-Type: application/json")
        reader, writer = await asyncio.open_connection(
            self.config.host, port
        )
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
            await writer.drain()
            raw = await reader.read(-1)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin1").split("\r\n")
        try:
            status = int(lines[0].split()[1])
        except (IndexError, ValueError):
            raise ConnectionError("malformed shard response") from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        payload: object = rest.decode("utf-8", "replace")
        if headers.get("content-type", "").startswith("application/json"):
            payload = json.loads(rest) if rest else {}
        return status, headers, payload

    async def _combined_metrics(self) -> str:
        """Every live shard's exposition + the router's, relabeled."""
        shards = [shard for shard in self._shards.values()
                  if shard.healthy and not shard.restarting]

        async def fetch(shard: _Shard) -> tuple[str, str]:
            try:
                status, _, text = await asyncio.wait_for(
                    self._shard_request(shard.port, "GET", "/metrics", b""),
                    5.0,
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return shard.name, ""
            return shard.name, text if status == 200 else ""

        parts = list(await asyncio.gather(*(fetch(s) for s in shards)))
        parts.append(("router", self.registry.render_prometheus()))
        return combine_prometheus_texts(parts)

    # ------------------------------------------------------------------
    # Introspection and metrics plumbing
    # ------------------------------------------------------------------

    def _health(self) -> dict:
        from repro.common.version import package_version

        return {
            "status": "draining" if self._draining else "ok",
            "version": package_version(),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "role": "cluster-router",
            "shards": len(self._shards),
            "ring_size": len(self.ring),
            "queue_depth": self._admitted,
            "served": self._served,
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    def _status(self) -> dict:
        ranked = sorted(self._key_counts.items(), key=lambda kv: -kv[1])
        return {
            "status": "draining" if self._draining else "ok",
            "shards": [
                {
                    "name": shard.name,
                    "port": shard.port,
                    "pid": shard.handle.pid,
                    "healthy": shard.healthy,
                    "restarting": shard.restarting,
                    "inflight": shard.inflight,
                    "forwards": shard.forwards,
                    "restarts": shard.restarts,
                }
                for _, shard in sorted(self._shards.items())
            ],
            "ring": self.ring.describe(),
            "router_cache": (self._cache.stats()
                             if self._cache is not None else None),
            "replicas": self.config.replicas,
            "hot_keys": [
                {"key": key, "count": count, "hot": key in self._hot}
                for key, count in ranked[: max(self.config.hot_key_top, 8)]
            ],
            "served": self._served,
        }

    def _count_request(self, endpoint: str, status: int) -> None:
        self.registry.counter(
            REQUESTS_METRIC, "cluster requests by endpoint and status"
        ).inc(endpoint=endpoint, status=status)

    def _count_singleflight(self, role: str) -> None:
        self.registry.counter(
            SINGLEFLIGHT_METRIC,
            "cluster-wide request coalescing (leaders forward, "
            "followers wait)",
        ).inc(role=role)

    def _count_cache(self, tier: str, status: str) -> None:
        self.registry.counter(
            CACHE_METRIC, "router-tier result cache lookups"
        ).inc(tier=tier, status=status)

    def _count_forward(self, shard: str, status) -> None:
        self.registry.counter(
            FORWARDS_METRIC, "forwards by shard and outcome"
        ).inc(shard=shard, status=status)

    def _gauge_up(self, shard: str, up: bool) -> None:
        self.registry.gauge(
            SHARD_UP_METRIC, "1 while the shard is in the ring"
        ).set(1 if up else 0, shard=shard)

    async def _respond_json(self, writer, endpoint: str, status: int,
                            payload: dict, keep_alive: bool,
                            extra_headers: tuple[str, ...] = ()) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        await _write_response(writer, status, body, "application/json",
                              keep_alive=keep_alive,
                              extra_headers=extra_headers)
        self._count_request(endpoint, status)

    async def _respond_error(self, writer, endpoint: str, status: int,
                             message: str, keep_alive: bool,
                             extra_headers: tuple[str, ...] = ()) -> bool:
        body = json.dumps(protocol.error_response(message)).encode()
        keep = keep_alive and status not in (503,)
        await _write_response(writer, status, body, "application/json",
                              keep_alive=keep,
                              extra_headers=extra_headers)
        self._count_request(endpoint, status)
        return keep


async def serve(config: ClusterConfig, *, ready=None,
                stop: asyncio.Event | None = None) -> ClusterRouter:
    """Start a cluster, optionally report readiness, serve until
    ``stop`` (required), drain, and return the drained router."""
    router = ClusterRouter(config)
    await router.start()
    if ready is not None:
        ready(router)
    assert stop is not None, "serve() needs a stop event"
    await router.serve_until(stop)
    return router
