"""The asyncio HTTP/JSON coherence-simulation server.

One :class:`CoherenceService` owns four pieces of machinery:

* **Admission control** — at most ``max_queue`` requests are in flight
  at once; the next one is answered ``429 Too Many Requests`` with a
  ``Retry-After`` header instead of being buffered without bound.  Load
  sheds at the front door, where it is cheap.
* **Single-flight coalescing** — concurrent identical requests (same
  replay result-cache key: trace digest + config/policy behavioural
  digests) share one execution.  The first request becomes the leader
  and runs the replay; followers await the leader's future.  A thundering
  herd of N identical requests costs exactly one pool execution and one
  cache miss, which is how the load generator verifies the property from
  the outside (``repro_result_cache_requests_total``).
* **Cache integration** — served replays consult and populate the same
  content-addressed result cache the batch CLIs use
  (:mod:`repro.experiments.resultcache`), so a table cell computed by
  ``repro-experiments`` is a cache hit over HTTP and vice versa.
* **Execution dispatch** — replays run on the session process pool
  (:func:`repro.parallel.get_pool`) when the server is configured with
  more than one worker, with traces published once into the
  shared-memory arena (:mod:`repro.trace.shm`) so pool workers attach
  zero-copy; a single-worker server executes on a thread instead, which
  keeps tests and small deployments free of spawn cost.

``GET /healthz`` and ``GET /metrics`` are never admission-controlled;
metrics render the server's telemetry registry in Prometheus text
format.  On SIGTERM/SIGINT (wired by ``repro-serve``) the server stops
accepting connections, finishes every admitted request, then exits —
the graceful-drain contract the load generator exercises.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from concurrent.futures.process import BrokenProcessPool

from repro.experiments import common, resultcache
from repro.parallel import effective_workers, get_pool, shutdown_pool
from repro.service import protocol, worker
from repro.service.protocol import (
    CompareRequest,
    ExperimentRequest,
    ReplaySpec,
    ServiceError,
    VerifyRequest,
)
from repro.snooping.costmodels import model1_cost
from repro.telemetry import runtime as telemetry
from repro.trace import shm

#: Metric families the server maintains (all in its telemetry registry).
REQUESTS_METRIC = "repro_service_requests_total"
QUEUE_DEPTH_METRIC = "repro_service_queue_depth"
SINGLEFLIGHT_METRIC = "repro_service_singleflight_total"
EXECUTIONS_METRIC = "repro_service_executions_total"

#: Upper bound on request bodies; service requests are a few hundred
#: bytes, so anything near this is a client bug, not a workload.
MAX_BODY_BYTES = 1 << 20

#: Seconds a 429'd client is told to wait before retrying.
RETRY_AFTER_SECONDS = 1

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

_DECODERS = {
    "directory": resultcache.decode_message_stats,
    "bus": resultcache.decode_bus_stats,
}


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Knobs for one server instance.

    Attributes:
        host: bind address.
        port: bind port (0 = ephemeral; read the bound port back from
            :attr:`CoherenceService.port`).
        max_queue: admitted-request bound; the N+1st concurrent request
            is answered 429.
        jobs: replay workers (resolved like ``--jobs`` everywhere else:
            ``None`` = ``REPRO_JOBS`` or 1, 0 = all CPUs).  1 executes
            on a thread; >1 dispatches onto the session process pool.
        telemetry_dir: when set, the telemetry session dumps
            ``metrics.prom`` (and streams events) there on drain.
    """

    host: str = "127.0.0.1"
    port: int = 8077
    max_queue: int = 64
    jobs: int | None = None
    telemetry_dir: str | Path | None = None


class CoherenceService:
    """The serving state machine (see module docstring)."""

    def __init__(self, config: ServiceConfig,
                 session: telemetry.TelemetrySession | None = None):
        self.config = config
        # A huge item count: the clamp logic should only consider CPUs.
        self.workers = effective_workers(config.jobs, 1 << 30)
        self._session = session
        self._owns_session = session is None
        self._previous_session: telemetry.TelemetrySession | None = None
        self._server: asyncio.base_events.Server | None = None
        self._draining = False
        self._started_at = 0.0
        self._admitted = 0
        self._served = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._inflight: dict[str, asyncio.Future] = {}
        self._trace_locks: dict[tuple, asyncio.Lock] = {}
        self._traces: dict[tuple, tuple[str, shm.TraceHandle | None]] = {}
        self._connections: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def registry(self):
        """The server's metrics registry (the /metrics source)."""
        return self._session.registry

    @property
    def served(self) -> int:
        """Requests answered 200 so far."""
        return self._served

    async def start(self) -> None:
        """Bind the listening socket and install the telemetry session."""
        if self._session is None:
            # instrument_machines=False: the server wants request-level
            # observability, not per-step machine events — and an
            # instrumenting session would disable the result cache.
            self._session = telemetry.TelemetrySession(
                self.config.telemetry_dir, instrument_machines=False
            )
        self._previous_session = telemetry.configure(self._session)
        self._started_at = time.time()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, finish every admitted request, close down.

        Idempotent.  The drain order is the graceful-shutdown contract:
        the listening socket closes first (new connections are refused),
        admitted requests run to completion and get their responses,
        then idle keep-alive connections are closed and the telemetry
        session is flushed.
        """
        if self._draining:
            await self._idle.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self.workers > 1:
            # Graceful pool teardown *after* the last admitted request:
            # a job still executing in a worker (a straggler the loop
            # is no longer awaiting, or work submitted moments before
            # SIGTERM) finishes rather than being cancelled by the
            # atexit hook's non-waiting shutdown, and the worker
            # processes are reaped before the shard process exits —
            # the shard supervisor never sees orphans.  Runs on a
            # thread: Executor.shutdown(wait=True) blocks on worker
            # exit and must not stall the event loop mid-drain.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: shutdown_pool(wait=True)
            )
        for writer in list(self._connections):
            writer.close()
        self._connections.clear()
        telemetry.configure(self._previous_session)
        if self._owns_session and self._session is not None:
            self._session.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServiceError as exc:
                    body = json.dumps(
                        protocol.error_response(str(exc))
                    ).encode()
                    await _write_response(writer, 400, body,
                                          "application/json",
                                          keep_alive=False)
                    break
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive or self._draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: tuple, writer) -> bool:
        """Route one parsed request; returns whether to keep the
        connection alive."""
        method, path, headers, body = request
        keep_alive = headers.get("connection", "").lower() != "close"
        if path == "/healthz":
            if method != "GET":
                return await self._respond_error(writer, path, 405,
                                                 "use GET", keep_alive)
            await self._respond_json(writer, path, 200, self._health(),
                                     keep_alive and not self._draining)
            return keep_alive and not self._draining
        if path == "/metrics":
            if method != "GET":
                return await self._respond_error(writer, path, 405,
                                                 "use GET", keep_alive)
            text = self.registry.render_prometheus()
            await _write_response(writer, 200, text.encode(),
                                  "text/plain; version=0.0.4",
                                  keep_alive=keep_alive)
            self._count_request(path, 200)
            return keep_alive
        if path in ("/v1/replay", "/v1/compare", "/v1/experiment",
                    "/v1/verify"):
            if method != "POST":
                return await self._respond_error(writer, path, 405,
                                                 "use POST", keep_alive)
            return await self._serve_query(path, body, writer, keep_alive)
        return await self._respond_error(writer, path, 404,
                                         f"no such endpoint: {path}",
                                         keep_alive)

    async def _serve_query(self, path: str, body: bytes, writer,
                           keep_alive: bool) -> bool:
        if self._draining:
            return await self._respond_error(
                writer, path, 503, "server is draining", keep_alive=False
            )
        if self._admitted >= self.config.max_queue:
            # Backpressure: shed at admission rather than queueing
            # without bound.  The client is told when to come back.
            return await self._respond_error(
                writer, path, 429,
                f"admission queue full ({self.config.max_queue} in "
                "flight); retry later",
                keep_alive,
                extra_headers=(f"Retry-After: {RETRY_AFTER_SECONDS}",),
            )
        self._admitted += 1
        self._idle.clear()
        self._gauge_depth()
        try:
            payload = _parse_json(body)
            with telemetry.span("service.request", endpoint=path):
                response = await self._answer(path, payload)
        except ServiceError as exc:
            return await self._respond_error(writer, path, 400, str(exc),
                                             keep_alive)
        except Exception:
            traceback.print_exc(file=sys.stderr)
            return await self._respond_error(
                writer, path, 500, "internal error (see server log)",
                keep_alive,
            )
        else:
            await self._respond_json(writer, path, 200, response,
                                     keep_alive)
            self._served += 1
            return keep_alive
        finally:
            self._admitted -= 1
            self._gauge_depth()
            if self._admitted == 0:
                self._idle.set()

    async def _answer(self, path: str, payload: dict) -> dict:
        if path == "/v1/replay":
            return await self._serve_replay(
                protocol.parse_replay_request(payload)
            )
        if path == "/v1/compare":
            return await self._serve_compare(
                CompareRequest.from_payload(payload)
            )
        if path == "/v1/verify":
            return await self._serve_verify(
                VerifyRequest.from_payload(payload)
            )
        return await self._serve_experiment(
            ExperimentRequest.from_payload(payload)
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    async def _serve_replay(self, spec: ReplaySpec) -> dict:
        started = perf_counter()
        payload, cached, coalesced = await self._replay_payload(spec)
        return protocol.replay_response(
            spec, payload, cached, coalesced,
            (perf_counter() - started) * 1000.0,
        )

    async def _replay_payload(self, spec: ReplaySpec) -> tuple[dict, bool, bool]:
        digest, handle = await self._trace_for(spec)
        kind, parts = worker.replay_cache_parts(spec, digest)
        key = resultcache.result_key(kind, parts)
        decoder = _DECODERS[kind]

        def decodable(candidate) -> bool:
            try:
                decoder(candidate)
            except Exception:
                return False
            return True

        span_meta = {"kind": kind, "app": spec.app, "policy": spec.policy}
        return await self._cached_execute(
            kind, key, worker.run_replay, (spec.to_payload(), handle),
            decodable, span_meta,
        )

    async def _serve_compare(self, request: CompareRequest) -> dict:
        started = perf_counter()
        specs = request.replay_specs()
        outcomes = await asyncio.gather(
            *(self._replay_payload(spec) for spec in specs)
        )
        results = {spec.policy: payload
                   for spec, (payload, _, _) in zip(specs, outcomes)}
        totals = {
            name: _result_total(request.spec.engine, payload)
            for name, payload in results.items()
        }
        return protocol.compare_response(
            request, results, totals, (perf_counter() - started) * 1000.0
        )

    async def _serve_experiment(self, request: ExperimentRequest) -> dict:
        started = perf_counter()
        kind = "service-experiment"
        key = resultcache.result_key(
            kind, (request.name, request.scale, request.seed, *request.apps)
        )

        def decodable(candidate) -> bool:
            return (isinstance(candidate, dict)
                    and isinstance(candidate.get("rendered"), str))

        payload, cached, coalesced = await self._cached_execute(
            kind, key, worker.run_experiment, (request.to_payload(),),
            decodable, {"experiment": request.name},
        )
        return protocol.experiment_response(
            request, payload["rendered"], cached, coalesced,
            (perf_counter() - started) * 1000.0,
        )

    async def _serve_verify(self, request: VerifyRequest) -> dict:
        started = perf_counter()
        kind = "service-verify"
        key = resultcache.result_key(kind, request.cache_parts())

        def decodable(candidate) -> bool:
            return (isinstance(candidate, dict)
                    and candidate.get("kind") == "repro-verify-certificate"
                    and isinstance(candidate.get("combos"), list))

        payload, cached, coalesced = await self._cached_execute(
            kind, key, worker.run_verify, (request.to_payload(),),
            decodable, {"engine": request.engine},
        )
        return protocol.verify_response(
            request, payload, cached, coalesced,
            (perf_counter() - started) * 1000.0,
        )

    async def _cached_execute(self, kind: str, key: str, fn, args: tuple,
                              decodable, span_meta: dict
                              ) -> tuple[dict, bool, bool]:
        """Cache lookup -> single-flight -> pool execution -> store.

        Returns ``(payload, cached, coalesced)``.  Exactly one of the
        coalesced group executes ``fn(*args)`` (a module-level worker
        body with picklable arguments — it may cross into a pool
        process); pure cache hits never register as leaders.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self._count_singleflight("follower")
            return await existing, False, True

        use_cache = resultcache.enabled()
        if use_cache:
            payload = resultcache.fetch(key)
            if payload is not None and decodable(payload):
                resultcache.record_lookup(kind, "hit")
                return payload, True, False
            resultcache.record_lookup(kind, "miss")

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._count_singleflight("leader")
        try:
            with telemetry.span("service.execute", **span_meta):
                payload = await self._execute(fn, *args)
            self.registry.counter(
                EXECUTIONS_METRIC, "replays/experiments actually executed"
            ).inc(kind=kind)
            if use_cache:
                resultcache.store(key, payload)
                resultcache.record_store()
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # mark retrieved; followers still read it
            raise
        else:
            future.set_result(payload)
            return payload, False, False
        finally:
            self._inflight.pop(key, None)

    async def _execute(self, fn, *args):
        """Run ``fn(*args)`` off the event loop: on the session process
        pool for a multi-worker server, on a thread otherwise."""
        loop = asyncio.get_running_loop()
        if self.workers > 1:
            pool = get_pool(self.workers)
            try:
                return await loop.run_in_executor(pool, fn, *args)
            except BrokenProcessPool:
                # A worker died hard; dispose of the executor so the
                # next request starts from a clean pool.
                shutdown_pool()
                raise ServiceError(
                    "worker pool broken during execution; retry"
                ) from None
        return await loop.run_in_executor(None, fn, *args)

    async def _trace_for(self, spec: ReplaySpec
                         ) -> tuple[str, shm.TraceHandle | None]:
        """Build (once) and publish (pool mode) the spec's trace.

        Returns the trace digest — the cache-key component — and the
        shared-memory handle pool workers attach to (``None`` on the
        thread path or when publication fell back).
        """
        key = spec.trace_key
        ready = self._traces.get(key)
        if ready is not None:
            return ready
        lock = self._trace_locks.setdefault(key, asyncio.Lock())
        async with lock:
            ready = self._traces.get(key)
            if ready is not None:
                return ready
            loop = asyncio.get_running_loop()
            with telemetry.span("service.trace", app=spec.app):
                trace = await loop.run_in_executor(
                    None, common.get_trace, spec.app, spec.num_procs,
                    spec.seed, spec.scale,
                )
                digest = await loop.run_in_executor(
                    None, lambda: trace.pack().digest()
                )
            handle = None
            if self.workers > 1:
                # Publish once; every pool worker attaches zero-copy.
                # None (no shared memory on this platform) is fine —
                # workers fall back to their own trace caches.
                handle = shm.default_arena().publish(key, trace.pack())
            ready = (digest, handle)
            self._traces[key] = ready
            return ready

    # ------------------------------------------------------------------
    # Introspection and metrics plumbing
    # ------------------------------------------------------------------

    def _health(self) -> dict:
        from repro.common.version import package_version

        return {
            "status": "draining" if self._draining else "ok",
            "version": package_version(),
            "protocol_version": protocol.PROTOCOL_VERSION,
            "queue_depth": self._admitted,
            "max_queue": self.config.max_queue,
            "workers": self.workers,
            "served": self._served,
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    def _count_request(self, endpoint: str, status: int) -> None:
        self.registry.counter(
            REQUESTS_METRIC, "service requests by endpoint and status"
        ).inc(endpoint=endpoint, status=status)

    def _count_singleflight(self, role: str) -> None:
        self.registry.counter(
            SINGLEFLIGHT_METRIC,
            "request coalescing (leaders execute, followers wait)",
        ).inc(role=role)

    def _gauge_depth(self) -> None:
        self.registry.gauge(
            QUEUE_DEPTH_METRIC, "requests currently admitted"
        ).set(self._admitted)

    async def _respond_json(self, writer, endpoint: str, status: int,
                            payload: dict, keep_alive: bool) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        await _write_response(writer, status, body, "application/json",
                              keep_alive=keep_alive)
        self._count_request(endpoint, status)

    async def _respond_error(self, writer, endpoint: str, status: int,
                             message: str, keep_alive: bool,
                             extra_headers: tuple[str, ...] = ()) -> bool:
        body = json.dumps(protocol.error_response(message)).encode()
        keep = keep_alive and status not in (503,)
        await _write_response(writer, status, body, "application/json",
                              keep_alive=keep,
                              extra_headers=extra_headers)
        self._count_request(endpoint, status)
        return keep


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 framing (stdlib-only; the service speaks exactly the
# subset its clients emit: one request, headers, optional JSON body)
# ----------------------------------------------------------------------

async def _read_request(reader: asyncio.StreamReader
                        ) -> tuple[str, str, dict, bytes] | None:
    """Read one request; None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, _version = request_line.decode("latin1").split()
    except ValueError:
        raise ServiceError("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if length > MAX_BODY_BYTES:
        raise ServiceError(f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


async def _write_response(writer: asyncio.StreamWriter, status: int,
                          body: bytes, content_type: str,
                          keep_alive: bool = True,
                          extra_headers: tuple[str, ...] = ()) -> None:
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
        *extra_headers,
    ]
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin1") + body)
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass  # client disconnected before the response landed


def _parse_json(body: bytes) -> dict:
    if not body:
        raise ServiceError("empty request body (expected JSON)")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise ServiceError(f"invalid JSON body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    return payload


def _result_total(engine: str, payload: dict) -> int:
    """The scalar cost a compare request ranks policies by."""
    if engine == "directory":
        stats = resultcache.decode_message_stats(payload)
        return stats.total
    return model1_cost(resultcache.decode_bus_stats(payload))


async def serve(config: ServiceConfig, *, ready=None,
                stop: asyncio.Event | None = None) -> CoherenceService:
    """Start a service, optionally report readiness, serve until
    ``stop`` (required), drain, and return the drained service."""
    service = CoherenceService(config)
    await service.start()
    if ready is not None:
        ready(service)
    assert stop is not None, "serve() needs a stop event"
    await service.serve_until(stop)
    return service
