"""The ``repro-serve`` console entry point.

Usage::

    repro-serve [--host H] [--port P] [--max-queue N] [--jobs N]
                [--telemetry-dir DIR] [--no-result-cache] [--version]

Starts the asyncio simulation server of :mod:`repro.service.server` and
runs until SIGTERM/SIGINT, then drains: the listening socket closes,
every admitted request completes and receives its response, and the
telemetry session (metrics, and events when ``--telemetry-dir`` is set)
is flushed.  ``--port 0`` binds an ephemeral port; the bound address is
printed on the ready line either way::

    repro-serve: listening on http://127.0.0.1:8077 (queue=64, workers=1)

The ready line goes to stdout (and is flushed) so supervisors and the
load generator can block on it.  See ``docs/SERVING.md`` for the
endpoint and backpressure contract.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from pathlib import Path

from repro.common.version import add_version_argument
from repro.parallel import resolve_jobs
from repro.service.server import CoherenceService, ServiceConfig


async def _serve(config: ServiceConfig) -> CoherenceService:
    service = CoherenceService(config)
    await service.start()
    print(
        f"repro-serve: listening on http://{config.host}:{service.port} "
        f"(queue={config.max_queue}, workers={service.workers})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix event loops: Ctrl-C still raises
    await service.serve_until(stop)
    return service


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve coherence-simulation requests over HTTP/JSON "
        "(replay, policy comparison, experiment rows).",
    )
    add_version_argument(parser)
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8077,
                        help="bind port (default 8077; 0 = ephemeral)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="admitted-request bound; beyond it requests "
                        "get 429 + Retry-After (default 64)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="replay workers (default: REPRO_JOBS or 1; "
                        "0 = all CPUs); 1 executes on a thread, more "
                        "dispatch onto the session process pool")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="flush metrics.prom (and stream events) "
                        "into this directory on drain")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="serve without the on-disk replay result "
                        "cache (single-flight dedup still applies)")
    args = parser.parse_args(argv)
    if args.max_queue < 1:
        parser.error("--max-queue must be at least 1")
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    if args.no_result_cache:
        os.environ["REPRO_RESULT_CACHE"] = "off"
    config = ServiceConfig(
        host=args.host, port=args.port, max_queue=args.max_queue,
        jobs=args.jobs, telemetry_dir=args.telemetry_dir,
    )
    try:
        service = asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        return 0
    print(f"repro-serve: drained after {service.served} request(s)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
