"""Sync and async clients for the serving layer.

:class:`ServiceClient` is the blocking client (``http.client``, one
keep-alive connection) for scripts and notebooks; :class:`
AsyncServiceClient` issues each request over a fresh asyncio connection
and is what the load generator and the server tests drive concurrency
with.  Both speak the versioned JSON protocol of
:mod:`repro.service.protocol` and normalise the server's backpressure
answer into :class:`Backpressure` (carrying ``retry_after``) so callers
can implement retry loops without parsing headers.

The module is also a tiny CLI (``python -m repro.service.client``) used
by the CI smoke: ``wait`` polls ``/healthz`` until the server is up,
``replay``/``compare``/``experiment``/``verify`` issue one request and
print the JSON response, ``metrics`` dumps the Prometheus text.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import time

from repro.common.errors import ReproError
from repro.service.protocol import PROTOCOL_VERSION

#: Default client-side timeout (seconds) for one request.
DEFAULT_TIMEOUT = 60.0


class ServiceError(ReproError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class Backpressure(ServiceError):
    """The server shed this request (429); retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(429, message)
        self.retry_after = retry_after


class Draining(ServiceError):
    """The server is draining (503) and will not take new work."""

    def __init__(self, message: str):
        super().__init__(503, message)


def _raise_for_status(status: int, headers: dict, payload) -> None:
    if status == 200:
        return
    message = (payload or {}).get("error", "") if isinstance(payload, dict) \
        else str(payload)
    if status == 429:
        raise Backpressure(message,
                           float(headers.get("retry-after", 1) or 1))
    if status == 503:
        raise Draining(message)
    raise ServiceError(status, message)


def _replay_body(spec: dict) -> dict:
    return {"v": PROTOCOL_VERSION, "spec": spec}


def parse_metrics_text(text: str) -> dict[tuple, float]:
    """Parse Prometheus text into ``{(name, ((label, value), ...)): v}``.

    Just enough of the exposition format for the load generator and the
    CI smoke to assert on counters the server renders.
    """
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name, labels = name_part, ()
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            label_body = label_body.rstrip("}")
            pairs = []
            for item in label_body.split(","):
                if not item:
                    continue
                label, _, raw = item.partition("=")
                pairs.append((label, raw.strip('"')))
            labels = tuple(sorted(pairs))
        try:
            samples[(name, labels)] = float(value_part)
        except ValueError:
            continue
    return samples


def metric_value(samples: dict[tuple, float], name: str,
                 **labels) -> float:
    """Sum every sample of ``name`` whose labels include ``labels``."""
    want = set((k, str(v)) for k, v in labels.items())
    return sum(value for (sample_name, sample_labels), value
               in samples.items()
               if sample_name == name and want <= set(sample_labels))


class ServiceClient:
    """Blocking client over one keep-alive connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8077,
                 timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, method: str, path: str, payload: dict | None = None
                ) -> tuple[int, dict, object]:
        """One request; returns ``(status, headers, decoded body)``."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, http.client.HTTPException, OSError):
            # A dropped keep-alive connection (server restarted, drain
            # closed it) gets one reconnect attempt.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        response_headers = {k.lower(): v for k, v in response.getheaders()}
        if response_headers.get("connection", "").lower() == "close":
            self.close()
        content_type = response_headers.get("content-type", "")
        decoded: object = raw.decode("utf-8", "replace")
        if content_type.startswith("application/json"):
            decoded = json.loads(raw) if raw else {}
        return response.status, response_headers, decoded

    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        status, headers, payload = self.request("GET", "/healthz")
        _raise_for_status(status, headers, payload)
        return payload

    def metrics_text(self) -> str:
        status, headers, payload = self.request("GET", "/metrics")
        _raise_for_status(status, headers, payload)
        return payload

    def metrics(self) -> dict[tuple, float]:
        return parse_metrics_text(self.metrics_text())

    def replay(self, **spec) -> dict:
        status, headers, payload = self.request(
            "POST", "/v1/replay", _replay_body(spec)
        )
        _raise_for_status(status, headers, payload)
        return payload

    def compare(self, policies=(), **spec) -> dict:
        body = {"v": PROTOCOL_VERSION, "spec": spec,
                "policies": list(policies)}
        status, headers, payload = self.request("POST", "/v1/compare", body)
        _raise_for_status(status, headers, payload)
        return payload

    def experiment(self, name: str, **kwargs) -> dict:
        body = {"v": PROTOCOL_VERSION, "name": name, **kwargs}
        status, headers, payload = self.request(
            "POST", "/v1/experiment", body
        )
        _raise_for_status(status, headers, payload)
        return payload

    def verify(self, **request) -> dict:
        body = {"v": PROTOCOL_VERSION, **request}
        status, headers, payload = self.request("POST", "/v1/verify", body)
        _raise_for_status(status, headers, payload)
        return payload

    def replay_with_retry(self, attempts: int = 5,
                          retry_draining: bool = False,
                          drain_backoff: float = 0.1, **spec) -> dict:
        """Replay with bounded retries.

        A 429 (:class:`Backpressure`) sleeps the server-provided
        ``Retry-After`` and retries; a 503 (:class:`Draining`) — e.g.
        from a rolling restart racing this client — retries after
        ``drain_backoff`` only when ``retry_draining`` is set, since a
        solo server that answers 503 is going away, while a cluster
        router answering 503 is usually mid-transition.  The last
        attempt's error propagates either way, so retries are bounded.
        """
        for attempt in range(attempts):
            try:
                return self.replay(**spec)
            except Backpressure as exc:
                if attempt == attempts - 1:
                    raise
                time.sleep(exc.retry_after)
            except Draining:
                if not retry_draining or attempt == attempts - 1:
                    raise
                time.sleep(drain_backoff)
        raise AssertionError("unreachable")

    def cluster_status(self) -> dict:
        """``GET /v1/cluster/status`` (router deployments only)."""
        status, headers, payload = self.request(
            "GET", "/v1/cluster/status"
        )
        _raise_for_status(status, headers, payload)
        return payload

    def cluster_restart(self) -> dict:
        """``POST /v1/cluster/restart``: a rolling, lossless restart."""
        status, headers, payload = self.request(
            "POST", "/v1/cluster/restart", {}
        )
        _raise_for_status(status, headers, payload)
        return payload

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the server answers (or raise)."""
        deadline = time.monotonic() + timeout
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, http.client.HTTPException,
                    ServiceError) as exc:
                last_error = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout}s: {last_error}"
        )


class AsyncServiceClient:
    """Async client; one fresh connection per request.

    Per-request connections keep concurrent fan-out trivially safe (no
    connection pool to serialise on), which is exactly what the
    single-flight and backpressure phases of the load generator need.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8077,
                 timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = port
        self.timeout = timeout

    async def request(self, method: str, path: str,
                      payload: dict | None = None
                      ) -> tuple[int, dict, object]:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        if payload is not None:
            head.append("Content-Type: application/json")
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin1").split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        decoded: object = rest.decode("utf-8", "replace")
        if headers.get("content-type", "").startswith("application/json"):
            decoded = json.loads(rest) if rest else {}
        return status, headers, decoded

    async def healthz(self) -> dict:
        status, headers, payload = await self.request("GET", "/healthz")
        _raise_for_status(status, headers, payload)
        return payload

    async def metrics(self) -> dict[tuple, float]:
        status, headers, payload = await self.request("GET", "/metrics")
        _raise_for_status(status, headers, payload)
        return parse_metrics_text(payload)

    async def replay(self, **spec) -> dict:
        status, headers, payload = await self.request(
            "POST", "/v1/replay", _replay_body(spec)
        )
        _raise_for_status(status, headers, payload)
        return payload

    async def replay_raw(self, **spec) -> tuple[int, dict, object]:
        """Replay without raising — backpressure phases inspect 429s."""
        return await self.request("POST", "/v1/replay", _replay_body(spec))

    async def compare(self, policies=(), **spec) -> dict:
        body = {"v": PROTOCOL_VERSION, "spec": spec,
                "policies": list(policies)}
        status, headers, payload = await self.request(
            "POST", "/v1/compare", body
        )
        _raise_for_status(status, headers, payload)
        return payload

    async def experiment(self, name: str, **kwargs) -> dict:
        body = {"v": PROTOCOL_VERSION, "name": name, **kwargs}
        status, headers, payload = await self.request(
            "POST", "/v1/experiment", body
        )
        _raise_for_status(status, headers, payload)
        return payload

    async def verify(self, **request) -> dict:
        body = {"v": PROTOCOL_VERSION, **request}
        status, headers, payload = await self.request(
            "POST", "/v1/verify", body
        )
        _raise_for_status(status, headers, payload)
        return payload

    async def replay_with_retry(self, attempts: int = 5,
                                retry_draining: bool = False,
                                drain_backoff: float = 0.1, **spec
                                ) -> dict:
        """Async twin of :meth:`ServiceClient.replay_with_retry`."""
        for attempt in range(attempts):
            try:
                return await self.replay(**spec)
            except Backpressure as exc:
                if attempt == attempts - 1:
                    raise
                await asyncio.sleep(exc.retry_after)
            except Draining:
                if not retry_draining or attempt == attempts - 1:
                    raise
                await asyncio.sleep(drain_backoff)
        raise AssertionError("unreachable")

    async def cluster_status(self) -> dict:
        """``GET /v1/cluster/status`` (router deployments only)."""
        status, headers, payload = await self.request(
            "GET", "/v1/cluster/status"
        )
        _raise_for_status(status, headers, payload)
        return payload

    async def cluster_restart(self) -> dict:
        """``POST /v1/cluster/restart``: a rolling, lossless restart."""
        status, headers, payload = await self.request(
            "POST", "/v1/cluster/restart", {}
        )
        _raise_for_status(status, headers, payload)
        return payload


# ----------------------------------------------------------------------
# Module CLI (CI smoke plumbing)
# ----------------------------------------------------------------------

def _spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", default="directory",
                        choices=("directory", "bus"))
    parser.add_argument("--app", default="water")
    parser.add_argument("--policy", default="basic")
    parser.add_argument("--cache-size", type=int, default=64 * 1024)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)


def _spec_from(args) -> dict:
    return {
        "engine": args.engine, "app": args.app, "policy": args.policy,
        "cache_size": args.cache_size, "block_size": args.block_size,
        "scale": args.scale, "seed": args.seed,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    from repro.common.version import add_version_argument

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Issue one request against a running repro-serve.",
    )
    add_version_argument(parser)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT)
    sub = parser.add_subparsers(dest="command", required=True)

    p_wait = sub.add_parser("wait", help="poll /healthz until ready")
    p_wait.set_defaults(command="wait")

    p_replay = sub.add_parser("replay", help="one replay request")
    _spec_arguments(p_replay)

    p_compare = sub.add_parser("compare", help="one compare request")
    _spec_arguments(p_compare)

    p_experiment = sub.add_parser("experiment",
                                  help="one experiment request")
    p_experiment.add_argument("name", choices=("table2", "table3", "bus"))
    p_experiment.add_argument("--scale", type=float, default=1.0)
    p_experiment.add_argument("--seed", type=int, default=0)
    p_experiment.add_argument("--apps", nargs="+", default=None)

    p_verify = sub.add_parser("verify", help="one model-checking request")
    p_verify.add_argument("--engine", default="all",
                          choices=("bus", "directory", "all"))
    p_verify.add_argument("--protocol", default=None)
    p_verify.add_argument("--procs", type=int, default=2)
    p_verify.add_argument("--blocks", type=int, default=1)
    p_verify.add_argument("--no-evictions", action="store_true")

    sub.add_parser("healthz", help="print the health document")
    sub.add_parser("metrics", help="print the Prometheus text")

    args = parser.parse_args(argv)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.command == "wait":
            payload = client.wait_ready(timeout=args.timeout)
        elif args.command == "healthz":
            payload = client.healthz()
        elif args.command == "metrics":
            print(client.metrics_text(), end="")
            return 0
        elif args.command == "replay":
            spec = _spec_from(args)
            payload = client.replay(**spec)
        elif args.command == "compare":
            spec = _spec_from(args)
            spec.pop("policy")
            payload = client.compare(**spec)
        elif args.command == "verify":
            payload = client.verify(
                engine=args.engine, protocol=args.protocol,
                num_procs=args.procs, num_blocks=args.blocks,
                evictions=not args.no_evictions,
            )
        else:
            kwargs = {"scale": args.scale, "seed": args.seed}
            if args.apps:
                kwargs["apps"] = args.apps
            payload = client.experiment(args.name, **kwargs)
    except (ServiceError, TimeoutError, OSError) as exc:
        print(f"service client: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
