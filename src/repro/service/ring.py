"""Consistent-hash routing for the shard fleet.

A :class:`HashRing` places every shard at :data:`VNODES` pseudo-random
points on a 64-bit circle (sha256 of ``"shard-id#vnode"``) and routes a
key to the first shard point clockwise of the key's own hash.  Two
properties make this the right discipline in front of per-shard warm
caches:

* **Stability** — adding or removing one shard remaps only the keys
  whose arc it owned (~1/N of the space); every other shard keeps its
  key range and therefore its warm in-memory result cache.  A rolling
  restart shrinks and regrows the ring without a global reshuffle.
* **Determinism** — placement depends only on shard ids and key bytes
  (no RNG, no insertion order), so the router, tests, and the load
  generator all agree on who owns what.

:meth:`preference` returns the first *R distinct* shards clockwise of
the key — the replica set used for hot-key replication: the zipf head
of a skewed workload is served round-robin from R shards instead of
melting one.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

#: Virtual nodes per shard.  Enough that key ranges balance within a
#: few percent for small fleets; cheap enough that ring surgery (one
#: shard in or out) stays sub-millisecond.
VNODES = 64


def _hash64(data: str) -> int:
    """The first 8 bytes of sha256 as an unsigned int (ring position)."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named shards.

    Shards are plain strings (``"shard-0"``); keys are plain strings
    (the routing key the router derives from a request).  Mutation is
    O(V log V) in the total point count; routing is one hash plus a
    binary search.
    """

    def __init__(self, shards: list[str] | tuple[str, ...] = (),
                 vnodes: int = VNODES):
        self._vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        self._shards: set[str] = set()
        for shard in shards:
            self.add(shard)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def shards(self) -> list[str]:
        """The member shards, sorted (deterministic iteration)."""
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        """Add ``shard`` (idempotent); regrows its arc of the ring."""
        if shard in self._shards:
            return
        self._shards.add(shard)
        for vnode in range(self._vnodes):
            self._points.append((_hash64(f"{shard}#{vnode}"), shard))
        self._points.sort()
        self._hashes = [point for point, _ in self._points]

    def remove(self, shard: str) -> None:
        """Remove ``shard`` (idempotent); its keys rehash to the
        clockwise neighbours, everyone else's stay put."""
        if shard not in self._shards:
            return
        self._shards.discard(shard)
        self._points = [(p, s) for p, s in self._points if s != shard]
        self._hashes = [point for point, _ in self._points]

    # ------------------------------------------------------------------

    def route(self, key: str) -> str:
        """The shard owning ``key``.

        Raises:
            LookupError: when the ring is empty.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect_right(self._hashes, _hash64(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* shards clockwise of ``key``.

        The head of the list is :meth:`route`'s answer; the tail is the
        replica set hot keys round-robin over.  Returns fewer than
        ``count`` shards when the ring is smaller than that.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        want = min(count, len(self._shards))
        start = bisect_right(self._hashes, _hash64(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.add(shard)
                chosen.append(shard)
                if len(chosen) == want:
                    break
        return chosen

    def describe(self) -> dict:
        """Ring layout summary for ``/v1/cluster/status``: member list
        plus each shard's share of the key space (fraction of the
        64-bit circle its arcs cover)."""
        if not self._points:
            return {"shards": [], "vnodes": self._vnodes, "shares": {}}
        total = 1 << 64
        shares: dict[str, int] = {shard: 0 for shard in self._shards}
        previous = self._points[-1][0] - total
        for point, shard in self._points:
            shares[shard] += point - previous
            previous = point
        return {
            "shards": self.shards(),
            "vnodes": self._vnodes,
            "shares": {shard: round(arc / total, 4)
                       for shard, arc in sorted(shares.items())},
        }
