"""Versioned request/response types for the serving layer.

Every request body carries ``{"v": PROTOCOL_VERSION, ...}``; the server
rejects versions it does not speak rather than guessing.  Three request
kinds exist:

* **replay** (:class:`ReplaySpec`) — one machine replay of one
  application trace under one directory policy or snooping protocol.
  The response includes the encoded stats payload (exactly the replay
  result cache's codec output, so served and batch results are
  interchangeable) plus a ``cached`` flag.
* **compare** (:class:`CompareRequest`) — the same trace replayed under
  *each* of a set of policies, returning per-policy totals and the
  cheapest one: the online form of the hybrid-scheme question "which
  protocol should this workload run under?".
* **experiment** (:class:`ExperimentRequest`) — a whole row-level
  experiment (``table2``/``table3``/``bus``) rendered server-side.
* **verify** (:class:`VerifyRequest`) — a bounded model-checking sweep
  (:mod:`repro.verification`) over the shipped protocol families,
  returning the machine-checked certificate.  Bounds are capped well
  below the CLI's so a single request stays interactive.

Validation is strict and total: :func:`ReplaySpec.from_payload` raises
:class:`ServiceError` with a client-presentable message on any unknown
app, policy, engine, or out-of-range knob, and the server maps that to
a 400 rather than a stack trace.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.common.errors import ConfigError, ReproError
from repro.directory.policy import AdaptivePolicy
from repro.protocols import registry as families
from repro.snooping.protocols import SnoopingProtocol
from repro.verification.model import (
    VerificationError,
    combo_digests,
    verify_combos,
)
from repro.workloads.profiles import APP_ORDER

#: Version of the request/response wire format.  Bump on incompatible
#: shape changes; the server answers only this version.
PROTOCOL_VERSION = 1

#: The engines a replay request may name.
ENGINES = ("directory", "bus")

#: Directory policies servable by name — every registered directory
#: family, so registering one is the only step needed to serve it.
DIRECTORY_POLICIES: dict[str, AdaptivePolicy] = {
    fam.name: fam.policy for fam in families.directory_families()
}

#: Snooping protocols servable by name (constructed fresh per replay —
#: protocol objects are engine-visible and must not be shared between
#: concurrent machine runs).  Enumerated from the registry like the
#: directory side.
SNOOPING_PROTOCOLS = tuple(fam.name for fam in families.bus_families())

#: Row-level experiments servable by name.
EXPERIMENTS = ("table2", "table3", "bus")

#: Hard ceiling on a request's workload scale: the serving layer exists
#: for interactive traffic, not hour-long batch sweeps.
MAX_SCALE = 4.0

#: Placement kinds accepted for directory replays (mirrors
#: :func:`repro.system.placement.make_placement`).
PLACEMENT_KINDS = ("best_static", "round_robin", "first_touch")


class ServiceError(ReproError):
    """A malformed or unserveable service request."""


def make_snooping_protocol(name: str) -> SnoopingProtocol:
    """A fresh snooping-protocol instance for one replay."""
    try:
        return families.bus_protocol(name)
    except ConfigError as exc:
        raise ServiceError(f"unknown snooping protocol {name!r}") from exc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(message)


def check_version(payload: dict) -> None:
    """Reject payloads speaking a different protocol version."""
    version = payload.get("v", PROTOCOL_VERSION)
    _require(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r} "
        f"(this server speaks v{PROTOCOL_VERSION})",
    )


@dataclass(frozen=True, slots=True)
class ReplaySpec:
    """One servable machine replay.

    Attributes:
        engine: ``directory`` (CC-NUMA message counts) or ``bus``
            (snooping transaction counts).
        app: one of the five SPLASH application analogues.
        policy: directory policy name or snooping protocol name,
            depending on ``engine``.
        cache_size: per-node cache bytes; ``None`` = infinite.
        block_size: cache block bytes.
        num_procs: processor count.
        seed: workload seed.
        scale: workload scale factor (capped at :data:`MAX_SCALE`).
        placement: page placement kind (directory engine only).
    """

    engine: str = "directory"
    app: str = "water"
    policy: str = "basic"
    cache_size: int | None = 64 * 1024
    block_size: int = 16
    num_procs: int = 16
    seed: int = 0
    scale: float = 1.0
    placement: str = "best_static"

    def __post_init__(self) -> None:
        _require(self.engine in ENGINES,
                 f"unknown engine {self.engine!r} (expected one of {ENGINES})")
        _require(self.app in APP_ORDER,
                 f"unknown app {self.app!r} (expected one of {APP_ORDER})")
        if self.engine == "directory":
            _require(self.policy in DIRECTORY_POLICIES,
                     f"unknown directory policy {self.policy!r} (expected "
                     f"one of {tuple(DIRECTORY_POLICIES)})")
        else:
            _require(self.policy in SNOOPING_PROTOCOLS,
                     f"unknown snooping protocol {self.policy!r} (expected "
                     f"one of {SNOOPING_PROTOCOLS})")
        _require(self.cache_size is None or self.cache_size > 0,
                 "cache_size must be positive or null (infinite)")
        _require(self.block_size > 0 and
                 self.block_size & (self.block_size - 1) == 0,
                 "block_size must be a positive power of two")
        _require(2 <= self.num_procs <= 256,
                 "num_procs must be between 2 and 256")
        _require(0 < self.scale <= MAX_SCALE,
                 f"scale must be in (0, {MAX_SCALE}]")
        _require(self.placement in PLACEMENT_KINDS,
                 f"unknown placement {self.placement!r} (expected one of "
                 f"{PLACEMENT_KINDS})")

    @classmethod
    def from_payload(cls, payload: dict) -> "ReplaySpec":
        """Parse and validate one spec payload (raises ServiceError)."""
        _require(isinstance(payload, dict), "spec must be a JSON object")
        unknown = set(payload) - {f for f in cls.__slots__}
        _require(not unknown,
                 f"unknown spec field(s): {', '.join(sorted(unknown))}")
        try:
            spec = cls(**payload)
        except ServiceError:
            raise
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed replay spec: {exc}") from exc
        return spec

    def to_payload(self) -> dict:
        """The JSON-safe wire form (inverse of :meth:`from_payload`)."""
        return asdict(self)

    @property
    def trace_key(self) -> tuple:
        """The harness trace-cache key this spec replays."""
        return (self.app, self.num_procs, self.seed, self.scale)


@dataclass(frozen=True, slots=True)
class CompareRequest:
    """Replay one trace under each policy; report the cheapest.

    ``policies`` defaults to every servable policy for the engine.
    """

    spec: ReplaySpec
    policies: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        available = (tuple(DIRECTORY_POLICIES)
                     if self.spec.engine == "directory"
                     else SNOOPING_PROTOCOLS)
        if not self.policies:
            object.__setattr__(self, "policies", available)
        for name in self.policies:
            _require(name in available,
                     f"unknown policy {name!r} for engine "
                     f"{self.spec.engine!r}")
        _require(len(set(self.policies)) == len(self.policies),
                 "duplicate policy in compare request")

    @classmethod
    def from_payload(cls, payload: dict) -> "CompareRequest":
        _require(isinstance(payload, dict), "body must be a JSON object")
        check_version(payload)
        spec_payload = dict(payload.get("spec") or {})
        # The comparison supplies the policy axis itself; a spec-level
        # policy would be ignored, so reject it as a likely mistake.
        _require("policy" not in spec_payload,
                 "compare spec must not name a single policy; "
                 "use the request-level 'policies' list")
        policies = payload.get("policies") or ()
        _require(isinstance(policies, (list, tuple)),
                 "'policies' must be a list of names")
        # Build the base spec with an engine-appropriate policy (the
        # first requested one, else the engine's first servable): the
        # spec's own default is a directory policy and would spuriously
        # fail validation for bus comparisons.
        engine = spec_payload.get("engine", "directory")
        available = (tuple(DIRECTORY_POLICIES) if engine == "directory"
                     else SNOOPING_PROTOCOLS)
        placeholder = policies[0] if policies else available[0]
        _require(placeholder in available,
                 f"unknown policy {placeholder!r} for engine {engine!r}")
        base = ReplaySpec.from_payload(
            {**spec_payload, "policy": placeholder}
        )
        return cls(spec=base, policies=tuple(policies))

    def replay_specs(self) -> list[ReplaySpec]:
        """One :class:`ReplaySpec` per compared policy."""
        payload = self.spec.to_payload()
        return [ReplaySpec.from_payload({**payload, "policy": name})
                for name in self.policies]


@dataclass(frozen=True, slots=True)
class ExperimentRequest:
    """One row-level experiment, rendered server-side.

    Attributes:
        name: ``table2``, ``table3``, or ``bus``.
        scale: workload scale factor.
        seed: workload seed.
        apps: optional subset of applications (default: all five).
    """

    name: str = "table2"
    scale: float = 1.0
    seed: int = 0
    apps: tuple[str, ...] = field(default=APP_ORDER)

    def __post_init__(self) -> None:
        _require(self.name in EXPERIMENTS,
                 f"unknown experiment {self.name!r} "
                 f"(expected one of {EXPERIMENTS})")
        _require(0 < self.scale <= MAX_SCALE,
                 f"scale must be in (0, {MAX_SCALE}]")
        _require(bool(self.apps), "apps must not be empty")
        for app in self.apps:
            _require(app in APP_ORDER, f"unknown app {app!r}")
        object.__setattr__(self, "apps", tuple(self.apps))

    @classmethod
    def from_payload(cls, payload: dict) -> "ExperimentRequest":
        _require(isinstance(payload, dict), "body must be a JSON object")
        check_version(payload)
        kwargs = {k: payload[k] for k in ("name", "scale", "seed", "apps")
                  if k in payload}
        try:
            return cls(**kwargs)
        except ServiceError:
            raise
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed experiment request: {exc}") from exc

    def to_payload(self) -> dict:
        return {"v": PROTOCOL_VERSION, "name": self.name,
                "scale": self.scale, "seed": self.seed,
                "apps": list(self.apps)}


@dataclass(frozen=True, slots=True)
class VerifyRequest:
    """One servable bounded model-checking sweep.

    Attributes:
        engine: ``bus``, ``directory``, or ``all`` (both families).
        protocol: optional single protocol/policy name to check.
        num_procs: processors in the model (2-3; compute grows steeply).
        num_blocks: blocks in the model (1-2).
        evictions: include replacement actions in the transition
            relation.
    """

    engine: str = "all"
    protocol: str | None = None
    num_procs: int = 2
    num_blocks: int = 1
    evictions: bool = True

    def __post_init__(self) -> None:
        _require(2 <= self.num_procs <= 3,
                 "num_procs must be 2 or 3 for served verification")
        _require(1 <= self.num_blocks <= 2,
                 "num_blocks must be 1 or 2 for served verification")
        _require(isinstance(self.evictions, bool),
                 "evictions must be a boolean")
        try:
            verify_combos(self.engine, self.protocol,
                          self.num_procs, self.num_blocks, self.evictions)
        except VerificationError as exc:
            raise ServiceError(str(exc)) from exc

    @classmethod
    def from_payload(cls, payload: dict) -> "VerifyRequest":
        _require(isinstance(payload, dict), "body must be a JSON object")
        check_version(payload)
        unknown = set(payload) - {"v", *cls.__slots__}
        _require(not unknown,
                 f"unknown verify field(s): {', '.join(sorted(unknown))}")
        kwargs = {k: payload[k] for k in cls.__slots__ if k in payload}
        try:
            return cls(**kwargs)
        except ServiceError:
            raise
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed verify request: {exc}") from exc

    def to_payload(self) -> dict:
        return {"v": PROTOCOL_VERSION, "engine": self.engine,
                "protocol": self.protocol, "num_procs": self.num_procs,
                "num_blocks": self.num_blocks, "evictions": self.evictions}

    def cache_parts(self) -> tuple:
        """Result-cache key parts; includes the per-combo transition
        table digests so a protocol change invalidates stale
        certificates automatically."""
        return (
            self.engine, self.protocol or "-", self.num_procs,
            self.num_blocks, self.evictions,
            *combo_digests(self.engine, self.protocol),
        )


def parse_replay_request(payload: dict) -> ReplaySpec:
    """Parse a ``POST /v1/replay`` body."""
    _require(isinstance(payload, dict), "body must be a JSON object")
    check_version(payload)
    return ReplaySpec.from_payload(dict(payload.get("spec") or {}))


# ----------------------------------------------------------------------
# Response builders (plain dicts: the wire format is JSON throughout)
# ----------------------------------------------------------------------

def replay_response(spec: ReplaySpec, result: dict, cached: bool,
                    coalesced: bool, elapsed_ms: float) -> dict:
    """The ``/v1/replay`` success body."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "replay",
        "spec": spec.to_payload(),
        "cached": cached,
        "coalesced": coalesced,
        "elapsed_ms": round(elapsed_ms, 3),
        "result": result,
    }


def compare_response(request: CompareRequest, results: dict[str, dict],
                     totals: dict[str, int], elapsed_ms: float) -> dict:
    """The ``/v1/compare`` success body; ``cheapest`` breaks total-cost
    ties by policy order in the request."""
    cheapest = min(request.policies, key=lambda name: totals[name])
    return {
        "v": PROTOCOL_VERSION,
        "type": "compare",
        "spec": request.spec.to_payload(),
        "policies": list(request.policies),
        "totals": totals,
        "cheapest": cheapest,
        "elapsed_ms": round(elapsed_ms, 3),
        "results": results,
    }


def experiment_response(request: ExperimentRequest, rendered: str,
                        cached: bool, coalesced: bool,
                        elapsed_ms: float) -> dict:
    """The ``/v1/experiment`` success body."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "experiment",
        "name": request.name,
        "cached": cached,
        "coalesced": coalesced,
        "elapsed_ms": round(elapsed_ms, 3),
        "rendered": rendered,
    }


def verify_response(request: VerifyRequest, certificate: dict,
                    cached: bool, coalesced: bool,
                    elapsed_ms: float) -> dict:
    """The ``/v1/verify`` success body."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "verify",
        "request": request.to_payload(),
        "cached": cached,
        "coalesced": coalesced,
        "elapsed_ms": round(elapsed_ms, 3),
        "ok": bool(certificate.get("ok")),
        "certificate": certificate,
    }


def cluster_status_response(status: dict) -> dict:
    """The ``GET /v1/cluster/status`` body (router-only endpoint)."""
    return {"v": PROTOCOL_VERSION, "type": "cluster-status", **status}


def cluster_restart_response(shards: list[dict], elapsed_ms: float
                             ) -> dict:
    """The ``POST /v1/cluster/restart`` body: one entry per shard in
    restart order, each ``{"shard", "ok", ...}``."""
    return {
        "v": PROTOCOL_VERSION,
        "type": "cluster-restart",
        "ok": all(entry.get("ok") for entry in shards),
        "elapsed_ms": round(elapsed_ms, 3),
        "shards": shards,
    }


def error_response(message: str) -> dict:
    """A JSON error body (any non-2xx status)."""
    return {"v": PROTOCOL_VERSION, "type": "error", "error": message}
