"""Inter-node message charging for the directory machine (Table 1).

The paper's simplified architectural model counts two message classes:
*short* messages (requests, invalidations, acknowledgements, replacement
notifications) and *data-carrying* messages (miss replies, writebacks).
Table 1 gives the number of each charged to every cache operation that
requires communication, as a function of

* whether the **home node** (the node holding the directory entry) is the
  initiator (``local``) or another node (``remote``),
* whether the block is **clean** or **dirty** in the caches, and
* ``||DistantCopies||`` — the number of cached copies held at nodes other
  than the initiator and the home.

This module reproduces that table exactly, plus the replacement charges the
text describes: a notification message when a clean entry is dropped, and a
writeback message when a dirty entry is replaced (both free when the home
node is local).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """The operation classes of Table 1."""

    READ_MISS = "read miss"
    WRITE_MISS = "write miss"
    WRITE_HIT = "write hit"


@dataclass(frozen=True, slots=True)
class Charge:
    """A message charge: ``short`` non-data messages, ``data`` block-
    carrying messages."""

    short: int
    data: int

    def __add__(self, other: "Charge") -> "Charge":
        return Charge(self.short + other.short, self.data + other.data)

    @property
    def total(self) -> int:
        return self.short + self.data


def read_miss_counts(
    home_local: bool, dirty: bool, distant_copies: int
) -> tuple[int, int]:
    """The read-miss row of Table 1 as a plain ``(short, data)`` tuple.

    The machines' hot paths use these tuple helpers directly, skipping the
    :class:`OpClass` dispatch and the :class:`Charge` allocation of
    :func:`table1_charge` (which remains the documented API).
    """
    if home_local:
        return (1, 1) if dirty else (0, 0)
    if dirty:
        dc1 = 1 + distant_copies
        return (dc1, dc1)
    return (1, 1)


def write_miss_counts(
    home_local: bool, dirty: bool, distant_copies: int
) -> tuple[int, int]:
    """The write-miss row of Table 1 as ``(short, data)``."""
    if home_local:
        return (1, 1) if dirty else (2 * distant_copies, 0)
    if dirty:
        dc1 = 1 + distant_copies
        return (dc1, dc1)
    return (1 + 2 * distant_copies, 1)


def write_hit_counts(home_local: bool, distant_copies: int) -> tuple[int, int]:
    """The (clean) write-hit row of Table 1 as ``(short, data)``."""
    if home_local:
        return (2 * distant_copies, 0)
    return (2 + 2 * distant_copies, 0)


def eviction_counts(
    dirty: bool, home_local: bool, notify_clean: bool = True
) -> tuple[int, int]:
    """Replacement charge as ``(short, data)`` (see :func:`eviction_charge`)."""
    if home_local:
        return (0, 0)
    if dirty:
        return (0, 1)
    return (1, 0) if notify_clean else (0, 0)


def table1_charge(
    op: OpClass, home_local: bool, dirty: bool, distant_copies: int
) -> Charge:
    """Return the Table 1 message charge for one cache operation.

    Args:
        op: the operation class.
        home_local: True when the initiating node is the block's home.
        dirty: True when some cache holds the block dirty at the start of
            the operation.
        distant_copies: ``||DistantCopies||``, cached copies at nodes that
            are neither the initiator nor the home.

    Raises:
        ValueError: for combinations the table does not define (a write hit
            to a dirty block needs no communication and is never charged).
    """
    if distant_copies < 0:
        raise ValueError("distant_copies must be non-negative")
    if op is OpClass.READ_MISS:
        return Charge(*read_miss_counts(home_local, dirty, distant_copies))
    if op is OpClass.WRITE_MISS:
        return Charge(*write_miss_counts(home_local, dirty, distant_copies))
    if op is OpClass.WRITE_HIT:
        if dirty:
            raise ValueError("a write hit to a dirty block requires no messages")
        return Charge(*write_hit_counts(home_local, distant_copies))
    raise ValueError(f"unknown operation class: {op!r}")


def eviction_charge(dirty: bool, home_local: bool, notify_clean: bool = True) -> Charge:
    """Charge for replacing a cache line.

    A dirty victim is written back to its home (one data message when the
    home is remote).  A clean victim sends a replacement notification (one
    short message when the home is remote) so the directory's copy set
    stays exact; the paper charges this at the same rate as other messages.

    Args:
        dirty: whether the victim line was modified.
        home_local: whether the victim's home node is the evicting node.
        notify_clean: set False to model silent clean eviction (ablation).
    """
    return Charge(*eviction_counts(dirty, home_local, notify_clean))


#: The rows of Table 1, in the paper's order, as
#: ``(op, home, status, short-message formula, data-message formula)``.
#: Formulae are rendered with ``n`` standing for ``||DistantCopies||``.
TABLE1_ROWS: tuple[tuple[OpClass, str, str, str, str], ...] = (
    (OpClass.READ_MISS, "local", "clean", "0", "0"),
    (OpClass.READ_MISS, "local", "dirty", "1", "1"),
    (OpClass.READ_MISS, "remote", "clean", "1", "1"),
    (OpClass.READ_MISS, "remote", "dirty", "1 + n", "1 + n"),
    (OpClass.WRITE_MISS, "local", "clean", "2n", "0"),
    (OpClass.WRITE_MISS, "local", "dirty", "1", "1"),
    (OpClass.WRITE_MISS, "remote", "clean", "1 + 2n", "1"),
    (OpClass.WRITE_MISS, "remote", "dirty", "1 + n", "1 + n"),
    (OpClass.WRITE_HIT, "local", "clean", "2n", "0"),
    (OpClass.WRITE_HIT, "remote", "clean", "2 + 2n", "0"),
)


def render_table1() -> str:
    """Render Table 1 as formatted text (used by the T1 benchmark)."""
    header = (
        f"{'operation':<12} {'home':<7} {'status':<7} "
        f"{'short messages':<15} {'data messages':<14}"
    )
    lines = [header, "-" * len(header)]
    for op, home, status, short, data in TABLE1_ROWS:
        lines.append(f"{op.value:<12} {home:<7} {status:<7} {short:<15} {data:<14}")
    return "\n".join(lines)
