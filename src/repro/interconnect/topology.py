"""Point-to-point network topologies and hop metrics.

The directory machine assumes "a logically complete point-to-point
network" (Section 2.2); physically, CC-NUMA machines of the era used
meshes (DASH) or hypercubes.  Message *counts* are topology-independent,
but message *latency* scales with hop distance, so the execution-time
experiments can weight the per-message cost by a topology's average hop
count — the longer the network paths, the more the adaptive protocols'
removed messages are worth.

Provided topologies: crossbar (1 hop), bidirectional ring, 2-D mesh,
and hypercube, each with exact pairwise hop functions and aggregate
metrics (average distance, diameter).
"""

from __future__ import annotations

import math

from repro.common.errors import ConfigError


class Topology:
    """Base class: pairwise hop distances over ``num_nodes`` nodes."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ConfigError("topology needs at least one node")
        self.num_nodes = num_nodes

    name = "abstract"

    def hops(self, src: int, dst: int) -> int:
        """Network hops from ``src`` to ``dst`` (0 when equal)."""
        raise NotImplementedError

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range")

    @property
    def average_hops(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        total = sum(
            self.hops(src, dst)
            for src in range(n)
            for dst in range(n)
            if src != dst
        )
        return total / (n * (n - 1))

    @property
    def diameter(self) -> int:
        """Largest pairwise hop count."""
        n = self.num_nodes
        return max(
            (self.hops(s, d) for s in range(n) for d in range(n)),
            default=0,
        )


class Crossbar(Topology):
    """Full crossbar: every remote node is one hop away."""

    name = "crossbar"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else 1


class Ring(Topology):
    """Bidirectional ring: shortest way around."""

    name = "ring"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        clockwise = (dst - src) % self.num_nodes
        return min(clockwise, self.num_nodes - clockwise)


class Mesh2D(Topology):
    """A ``width x height`` 2-D mesh with dimension-order routing."""

    name = "mesh"

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ConfigError("mesh dimensions must be positive")
        super().__init__(width * height)
        self.width = width
        self.height = height
        self.name = f"mesh{width}x{height}"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        return abs(sx - dx) + abs(sy - dy)


class Hypercube(Topology):
    """A ``2^d``-node hypercube; distance is the Hamming distance."""

    name = "hypercube"

    def __init__(self, num_nodes: int):
        if num_nodes & (num_nodes - 1) or num_nodes < 1:
            raise ConfigError("hypercube size must be a power of two")
        super().__init__(num_nodes)
        self.dimension = int(math.log2(num_nodes))
        self.name = f"hypercube{self.dimension}"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return (src ^ dst).bit_count()


def standard_topologies(num_nodes: int = 16) -> tuple[Topology, ...]:
    """The comparison set used by the topology experiment."""
    side = int(math.isqrt(num_nodes))
    if side * side != num_nodes:
        raise ConfigError("standard set expects a square node count")
    return (
        Crossbar(num_nodes),
        Hypercube(num_nodes),
        Mesh2D(side, side),
        Ring(num_nodes),
    )
