"""Message taxonomy and inter-node cost accounting."""

from repro.interconnect.topology import (
    Crossbar,
    Hypercube,
    Mesh2D,
    Ring,
    Topology,
    standard_topologies,
)
from repro.interconnect.costs import (
    Charge,
    OpClass,
    TABLE1_ROWS,
    eviction_charge,
    eviction_counts,
    read_miss_counts,
    render_table1,
    table1_charge,
    write_hit_counts,
    write_miss_counts,
)

__all__ = [
    "Charge",
    "Crossbar",
    "Hypercube",
    "Mesh2D",
    "Ring",
    "Topology",
    "standard_topologies",
    "OpClass",
    "TABLE1_ROWS",
    "eviction_charge",
    "eviction_counts",
    "read_miss_counts",
    "render_table1",
    "table1_charge",
    "write_hit_counts",
    "write_miss_counts",
]
