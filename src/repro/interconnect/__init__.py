"""Message taxonomy and inter-node cost accounting."""

from repro.interconnect.topology import (
    Crossbar,
    Hypercube,
    Mesh2D,
    Ring,
    Topology,
    standard_topologies,
)
from repro.interconnect.costs import (
    Charge,
    OpClass,
    TABLE1_ROWS,
    eviction_charge,
    render_table1,
    table1_charge,
)

__all__ = [
    "Charge",
    "Crossbar",
    "Hypercube",
    "Mesh2D",
    "Ring",
    "Topology",
    "standard_topologies",
    "OpClass",
    "TABLE1_ROWS",
    "eviction_charge",
    "render_table1",
    "table1_charge",
]
