"""Workload engine, synchronized structures, and SPLASH analogues."""

from repro.workloads.engine import (
    Acquire,
    BarrierWait,
    Engine,
    Heap,
    LocalCompute,
    ReadEffect,
    Release,
    WriteEffect,
    run_program,
)
from repro.workloads.profiles import APP_ORDER, SPLASH_APPS, AppProfile, build_app
from repro.workloads.sync import SharedCounter, SharedRecord, SharedTaskQueue

__all__ = [
    "APP_ORDER",
    "Acquire",
    "AppProfile",
    "BarrierWait",
    "Engine",
    "Heap",
    "LocalCompute",
    "ReadEffect",
    "Release",
    "SPLASH_APPS",
    "SharedCounter",
    "SharedRecord",
    "SharedTaskQueue",
    "WriteEffect",
    "build_app",
    "run_program",
]
