"""Pthor analogue: distributed-time logic simulation.

The real Pthor evaluates circuit elements activated through distributed
work queues.  Its shared traffic mixes:

* a large, read-shared netlist (element descriptors and fanin lists read
  by every evaluating processor),
* per-element state words, read-modified-written by whichever processor
  evaluates the element (migratory, but diluted by the netlist reads),
* cross-processor queue operations (migratory queue control words).

The dilution by read-shared netlist data is why Pthor only gains 15-20 %
from the adaptive protocols in the paper, against 40+ % for MP3D/Water.
"""

from __future__ import annotations

import random

from repro.trace.core import Trace
from repro.workloads.engine import (
    Acquire,
    BarrierWait,
    Engine,
    Heap,
    ReadEffect,
    Release,
    WriteEffect,
)
from repro.workloads.sync import SharedTaskQueue

NETLIST_WORDS = 6
STATE_WORDS = 2


def build(
    num_procs: int = 16,
    elements: int = 4096,
    fanin: int = 3,
    steps: int = 6,
    activations_per_proc: int = 36,
    seed: int = 0,
) -> Trace:
    """Generate the Pthor analogue trace.

    Args:
        num_procs: processors.
        elements: circuit elements (6-word descriptor + 2-word state).
        fanin: fanin descriptors read per evaluation.
        steps: barrier-separated simulation time steps.
        activations_per_proc: elements evaluated per processor per step.
        seed: determinism seed.
    """
    heap = Heap()
    netlist_addr = heap.alloc_words(elements * NETLIST_WORDS)
    state_addr = heap.alloc_words(elements * STATE_WORDS)
    queues = [
        SharedTaskQueue(heap, f"events-{proc}", capacity=512)
        for proc in range(num_procs)
    ]
    master = random.Random(seed)
    proc_seeds = [master.randrange(1 << 30) for _ in range(num_procs)]
    for proc in range(num_procs):
        queues[proc].preload(
            master.randrange(elements) for _ in range(activations_per_proc)
        )

    def descriptor(elem: int) -> int:
        return netlist_addr + elem * NETLIST_WORDS * 4

    def state(elem: int) -> int:
        return state_addr + elem * STATE_WORDS * 4

    def evaluate(elem: int, rng: random.Random):
        """Read the netlist context and update the element's state."""
        for w in range(NETLIST_WORDS):
            yield ReadEffect(descriptor(elem) + w * 4)
        for _ in range(fanin):
            src = rng.randrange(elements)
            # fanin topology (read-shared) and driver output (written by
            # whichever processor last evaluated the driver)
            yield ReadEffect(descriptor(src))
            yield ReadEffect(descriptor(src) + 4)
            yield ReadEffect(state(src))
        yield Acquire(f"elem-{elem}")
        yield ReadEffect(state(elem))
        yield ReadEffect(state(elem) + 4)
        yield WriteEffect(state(elem))
        yield WriteEffect(state(elem) + 4)
        yield Release(f"elem-{elem}")

    def worker(proc: int):
        rng = random.Random(proc_seeds[proc])
        for step in range(steps):
            for _ in range(activations_per_proc):
                elem = yield from queues[proc].pop()
                if elem is None:
                    elem = rng.randrange(elements)
                yield from evaluate(elem, rng)
                # Schedule a fanout element on some other processor's
                # queue: the classic cross-processor event pattern.
                target = rng.randrange(num_procs)
                yield from queues[target].push(rng.randrange(elements))
            yield BarrierWait(f"time-{step}")

    engine = Engine(num_procs, seed=seed, max_quantum=4)
    for proc in range(num_procs):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "pthor"
    return trace
