"""The five SPLASH application analogues (see each module's docstring)."""

from repro.workloads.apps import cholesky, locusroute, mp3d, pthor, water

__all__ = ["cholesky", "locusroute", "mp3d", "pthor", "water"]
