"""MP3D analogue: rarefied hypersonic flow (particle-in-cell).

The real MP3D moves particles through a 3-D space array; the dominant
shared traffic is read-modify-writes to *space cells* by whichever
processor's particle currently occupies them — the canonical migratory
pattern — plus per-particle records that stay with their owning processor
and a global collision counter.  This analogue reproduces that mix:

* ``cells`` space-cell records (2 words each) updated by random walks, so
  successive updates to a cell come from different processors;
* per-processor particle records (3 words) read and written only by their
  owner;
* a lock-protected global collision counter.

MP3D is the paper's most coherence-intensive program (~45-48 % message
reduction with the adaptive protocols at large cache sizes).
"""

from __future__ import annotations

import random

from repro.trace.core import Trace
from repro.workloads.engine import (
    BarrierWait,
    Engine,
    Heap,
    ReadEffect,
    WriteEffect,
)
from repro.workloads.sync import SharedCounter

CELL_WORDS = 2
PARTICLE_WORDS = 9


def build(
    num_procs: int = 16,
    particles_per_proc: int = 48,
    cells: int = 8192,
    steps: int = 12,
    collision_period: int = 16,
    seed: int = 0,
) -> Trace:
    """Generate the MP3D analogue trace.

    Args:
        num_procs: processors (the paper simulates 16).
        particles_per_proc: particles statically assigned to each node.
        cells: space-array cells (2 words each).
        steps: simulated time steps (barrier-separated).
        collision_period: particles moved per collision-counter update.
        seed: determinism seed (walks, interleaving).
    """
    heap = Heap()
    cells_addr = heap.alloc_words(cells * CELL_WORDS)
    particles_addr = [
        heap.alloc_words(particles_per_proc * PARTICLE_WORDS)
        for _ in range(num_procs)
    ]
    counter = SharedCounter(heap, "collisions")
    master = random.Random(seed)
    proc_seeds = [master.randrange(1 << 30) for _ in range(num_procs)]

    def cell_addr(index: int) -> int:
        return cells_addr + (index % cells) * CELL_WORDS * 4

    def worker(proc: int):
        rng = random.Random(proc_seeds[proc])
        positions = [rng.randrange(cells) for _ in range(particles_per_proc)]
        moved = 0
        for step in range(steps):
            for p in range(particles_per_proc):
                base = particles_addr[proc] + p * PARTICLE_WORDS * 4
                # Move: particles mostly drift through neighbouring cells
                # (so with large blocks, cells updated by *different*
                # processors share a block — the false sharing that erodes
                # Table 3's adaptive savings), with occasional long
                # flights that hand whole neighbourhoods to other
                # processors (keeping individual cells migratory at small
                # block sizes).
                if rng.random() < 0.15:
                    positions[p] = rng.randrange(cells)
                else:
                    positions[p] = (positions[p] + rng.randint(-2, 2)) % cells
                addr = cell_addr(positions[p])
                # The cell read and write bracket the collision
                # computation on the particle record, so concurrent cell
                # visits from different processors genuinely overlap in
                # time (MP3D's cell updates are unsynchronized).
                yield ReadEffect(addr)
                yield ReadEffect(addr + 4)
                for w in range(PARTICLE_WORDS):
                    yield ReadEffect(base + w * 4)
                for w in range(3):
                    yield WriteEffect(base + w * 4)
                yield WriteEffect(addr)
                yield WriteEffect(addr + 4)
                moved += 1
                if moved % collision_period == 0:
                    yield from counter.fetch_add()
            yield BarrierWait(f"step-{step}")

    # Fine-grained quanta: cell updates from different processors
    # genuinely overlap in time, as in the real (unlocked) MP3D.
    engine = Engine(num_procs, seed=seed, max_quantum=3)
    for proc in range(num_procs):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "mp3d"
    return trace
