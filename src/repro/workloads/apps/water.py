"""Water analogue: N-body molecular dynamics.

The real Water computes pairwise intermolecular forces, accumulating into
per-molecule force arrays protected by locks; each molecule's accumulator
is read-modified-written by many different processors during the force
phase (migratory), while molecule positions are read by many processors
and rewritten once per step by the owner (wide sharing with periodic
invalidation).  The update phase is owner-local.

Water shows ~44 % message reduction with the adaptive protocols at large
caches in the paper.
"""

from __future__ import annotations

import random

from repro.trace.core import Trace
from repro.workloads.engine import (
    Acquire,
    BarrierWait,
    Engine,
    Heap,
    ReadEffect,
    Release,
    WriteEffect,
)

POS_WORDS = 3
FORCE_WORDS = 3
VEL_WORDS = 3


def build(
    num_procs: int = 16,
    molecules_per_proc: int = 12,
    steps: int = 8,
    interactions_per_molecule: int = 6,
    seed: int = 0,
) -> Trace:
    """Generate the Water analogue trace.

    Args:
        num_procs: processors.
        molecules_per_proc: molecules owned by each processor.
        steps: barrier-separated time steps (force phase + update phase).
        interactions_per_molecule: pair interactions computed per owned
            molecule per step (partner molecules drawn across all owners).
        seed: determinism seed.
    """
    heap = Heap()
    nmol = num_procs * molecules_per_proc
    pos_addr = heap.alloc_words(nmol * POS_WORDS)
    force_addr = heap.alloc_words(nmol * FORCE_WORDS)
    vel_addr = heap.alloc_words(nmol * VEL_WORDS)
    master = random.Random(seed)
    proc_seeds = [master.randrange(1 << 30) for _ in range(num_procs)]

    def pos(mol: int) -> int:
        return pos_addr + mol * POS_WORDS * 4

    def force(mol: int) -> int:
        return force_addr + mol * FORCE_WORDS * 4

    def vel(mol: int) -> int:
        return vel_addr + mol * VEL_WORDS * 4

    def accumulate(mol: int):
        """Lock-protected read-modify-write of a force accumulator."""
        yield Acquire(f"force-{mol}")
        for w in range(FORCE_WORDS):
            yield ReadEffect(force(mol) + w * 4)
        for w in range(FORCE_WORDS):
            yield WriteEffect(force(mol) + w * 4)
        yield Release(f"force-{mol}")

    def worker(proc: int):
        rng = random.Random(proc_seeds[proc])
        mine = range(proc * molecules_per_proc, (proc + 1) * molecules_per_proc)
        for step in range(steps):
            # Force phase: pairwise interactions.
            for mol in mine:
                for _ in range(interactions_per_molecule):
                    partner = rng.randrange(nmol)
                    if partner == mol:
                        partner = (partner + 1) % nmol
                    for w in range(POS_WORDS):
                        yield ReadEffect(pos(mol) + w * 4)
                    for w in range(POS_WORDS):
                        yield ReadEffect(pos(partner) + w * 4)
                    yield from accumulate(mol)
                    yield from accumulate(partner)
            yield BarrierWait(f"forces-{step}")
            # Update phase: integrate owned molecules, reset accumulators.
            for mol in mine:
                for w in range(FORCE_WORDS):
                    yield ReadEffect(force(mol) + w * 4)
                for w in range(POS_WORDS):
                    yield ReadEffect(pos(mol) + w * 4)
                for w in range(POS_WORDS):
                    yield WriteEffect(pos(mol) + w * 4)
                for w in range(VEL_WORDS):
                    yield WriteEffect(vel(mol) + w * 4)
                for w in range(FORCE_WORDS):
                    yield WriteEffect(force(mol) + w * 4)
            yield BarrierWait(f"update-{step}")

    engine = Engine(num_procs, seed=seed, max_quantum=4)
    for proc in range(num_procs):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "water"
    return trace
