"""Cholesky analogue: sparse supernodal factorization with a task queue.

The real Cholesky distributes column tasks through a shared queue; a
worker pops column ``j``, scales it (``cdiv``), and applies it to a set of
later columns (``cmod``) under per-column locks.  Both the queue control
structure and the column data migrate from processor to processor —
Cholesky is one of the paper's big winners (~46 % at large caches) and is
the most cache-size-sensitive application in Table 2 (its working set
thrashes small caches).

The analogue precomputes a random sparse elimination DAG over ``columns``
columns and seeds the queue in topological order, so workers never starve
while preserving the pop/cdiv/cmod sharing structure.
"""

from __future__ import annotations

import random

from repro.trace.core import Trace
from repro.workloads.engine import (
    Acquire,
    Engine,
    Heap,
    ReadEffect,
    Release,
    WriteEffect,
)
from repro.workloads.sync import SharedTaskQueue


def build(
    num_procs: int = 16,
    columns: int = 256,
    words_per_column: int = 48,
    updates_per_column: int = 3,
    touched_words: int = 12,
    seed: int = 0,
) -> Trace:
    """Generate the Cholesky analogue trace.

    Args:
        num_procs: processors.
        columns: number of column tasks.
        words_per_column: words of data per column (footprint knob).
        updates_per_column: cmod targets per processed column.
        touched_words: words read+written by each cmod.
        seed: determinism seed.
    """
    heap = Heap()
    col_addr = [heap.alloc_words(words_per_column) for _ in range(columns)]
    queue = SharedTaskQueue(heap, "tasks", capacity=columns + 1)
    rng = random.Random(seed)
    # Random sparse DAG: each column updates a few later columns.
    children = [
        sorted(
            rng.sample(
                range(j + 1, columns),
                min(updates_per_column, columns - j - 1),
            )
        )
        for j in range(columns)
    ]
    # Seed the queue with every column in topological (index) order.
    queue.preload(range(columns))

    def cdiv(j: int):
        """Scale column j: full read-modify-write of its data."""
        base = col_addr[j]
        for w in range(words_per_column):
            yield ReadEffect(base + w * 4)
        for w in range(words_per_column):
            yield WriteEffect(base + w * 4)

    # Columns already factored (shared bookkeeping, Python-side only);
    # cmod gathers from them, giving the long reuse distances that make
    # Cholesky the paper's most cache-size-sensitive application.
    processed: list[int] = []

    def cmod(src_col: int, k: int):
        """Apply a completed column to column k under k's lock."""
        src = col_addr[src_col]
        dst = col_addr[k]
        yield Acquire(f"col-{k}")
        for w in range(touched_words):
            yield ReadEffect(src + (w % words_per_column) * 4)
        for w in range(touched_words):
            yield ReadEffect(dst + (w % words_per_column) * 4)
            yield WriteEffect(dst + (w % words_per_column) * 4)
        yield Release(f"col-{k}")

    def worker(proc: int):
        rng_local = random.Random(seed * 65537 + proc)
        while True:
            j = yield from queue.pop()
            if j is None:
                return
            yield from cdiv(j)
            processed.append(j)
            for k in children[j]:
                # Gather from a random completed column: re-reading old
                # panels is what thrashes small caches.
                src_col = rng_local.choice(processed)
                yield from cmod(src_col, k)

    engine = Engine(num_procs, seed=seed, max_quantum=6)
    for proc in range(num_procs):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "cholesky"
    return trace
