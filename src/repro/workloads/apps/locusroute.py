"""LocusRoute analogue: standard-cell global routing.

The real LocusRoute evaluates candidate routes for each wire by reading
long runs of a shared *cost grid*, then commits the best route by
incrementing the cells along it.  The grid is overwhelmingly read-shared
(many evaluations per commit), which is why LocusRoute benefits least from
the adaptive protocols in the paper (~10-14 %): there simply is not much
migratory data to find.  The remaining migratory traffic comes from the
global work counter and per-region occupancy records.
"""

from __future__ import annotations

import random

from repro.trace.core import Trace
from repro.workloads.engine import (
    Engine,
    Heap,
    ReadEffect,
    WriteEffect,
)
from repro.workloads.sync import SharedCounter, SharedRecord


def build(
    num_procs: int = 16,
    grid_cells: int = 16384,
    wires_per_proc: int = 10,
    candidate_routes: int = 3,
    probes_per_route: int = 24,
    route_length: int = 6,
    regions: int = 32,
    seed: int = 0,
) -> Trace:
    """Generate the LocusRoute analogue trace.

    Args:
        num_procs: processors.
        grid_cells: cost-grid cells (1 word each).
        wires_per_proc: wires routed by each processor.
        candidate_routes: candidate paths evaluated per wire.
        probes_per_route: grid cells read while evaluating one candidate.
        route_length: grid cells written when committing the best route.
        regions: per-region occupancy records (migratory contention).
        seed: determinism seed.
    """
    heap = Heap()
    grid_addr = heap.alloc_words(grid_cells)
    nwires = num_procs * wires_per_proc
    wire_addr = heap.alloc_words(nwires * 4)
    occupancy = [
        SharedRecord(heap, f"region-{r}", nwords=2) for r in range(regions)
    ]
    done_counter = SharedCounter(heap, "wires-routed")
    master = random.Random(seed)
    proc_seeds = [master.randrange(1 << 30) for _ in range(num_procs)]

    def cell(index: int) -> int:
        return grid_addr + (index % grid_cells) * 4

    def worker(proc: int):
        rng = random.Random(proc_seeds[proc])
        mine = range(proc * wires_per_proc, (proc + 1) * wires_per_proc)
        for wire in mine:
            # Read the wire descriptor (read-shared wire list).
            for w in range(4):
                yield ReadEffect(wire_addr + wire * 16 + w * 4)
            # Evaluate candidate routes: long read runs over the grid.
            best_start = 0
            for _ in range(candidate_routes):
                start = rng.randrange(grid_cells)
                for p in range(probes_per_route):
                    yield ReadEffect(cell(start + p))
                best_start = start
            # Commit: bump the cost of the cells along the chosen route.
            for p in range(route_length):
                yield ReadEffect(cell(best_start + p))
                yield WriteEffect(cell(best_start + p))
            # Update the region occupancy record (lock-protected RMW).
            region = (best_start * regions) // grid_cells
            yield from occupancy[region].update()
            yield from done_counter.fetch_add()

    engine = Engine(num_procs, seed=seed, max_quantum=6)
    for proc in range(num_procs):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "locusroute"
    return trace
