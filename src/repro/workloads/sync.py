"""Shared synchronized data structures for simulated programs.

These helpers generate the access patterns that make data migratory in
real programs: lock-protected counters and work queues whose control words
and payload slots are read-modified-written by one processor at a time.

All methods are generators meant to be driven with ``yield from`` inside a
thread body; values (queue items, counter values) are tracked Python-side
because the engine records addresses, not contents.  The engine's
single-threaded interleaving makes the Python-side mirrors exact: the
mutation happens while the simulated lock is held.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.workloads.engine import (
    Acquire,
    Heap,
    ReadEffect,
    Release,
    WriteEffect,
)


class SharedCounter:
    """A lock-protected shared counter (fetch-and-add idiom)."""

    def __init__(self, heap: Heap, name: str, initial: int = 0):
        self.name = name
        self.lock = f"{name}.lock"
        self.addr = heap.alloc_words(1)
        self.value = initial

    def fetch_add(self, delta: int = 1):
        """Atomically add ``delta``; yields the access pattern, returns the
        previous value."""
        yield Acquire(self.lock)
        yield ReadEffect(self.addr)
        old = self.value
        self.value += delta
        yield WriteEffect(self.addr)
        yield Release(self.lock)
        return old

    def read(self):
        """Unsynchronized read of the counter word."""
        yield ReadEffect(self.addr)
        return self.value


class SharedTaskQueue:
    """A lock-protected circular work queue.

    The head/tail control words and the payload slots all live in shared
    memory; popping work from a queue filled by other processors is the
    canonical migratory pattern the paper's introduction describes.
    """

    def __init__(self, heap: Heap, name: str, capacity: int = 256):
        self.name = name
        self.lock = f"{name}.lock"
        self.capacity = capacity
        self.head_addr = heap.alloc_words(1)
        self.tail_addr = heap.alloc_words(1)
        self.slots_addr = heap.alloc_words(capacity)
        self._items: deque = deque()
        self._head = 0
        self._tail = 0

    def _slot(self, index: int) -> int:
        return self.slots_addr + (index % self.capacity) * 4

    def preload(self, items: Iterable) -> None:
        """Seed the queue before the program runs (no trace effects)."""
        for item in items:
            self._items.append(item)
            self._tail += 1

    def push(self, item):
        """Append ``item``; yields the enqueue access pattern."""
        yield Acquire(self.lock)
        yield ReadEffect(self.tail_addr)
        yield WriteEffect(self._slot(self._tail))
        self._items.append(item)
        self._tail += 1
        yield WriteEffect(self.tail_addr)
        yield Release(self.lock)

    def push_many(self, items: Iterable):
        """Append several items under one lock acquisition."""
        yield Acquire(self.lock)
        yield ReadEffect(self.tail_addr)
        for item in items:
            yield WriteEffect(self._slot(self._tail))
            self._items.append(item)
            self._tail += 1
        yield WriteEffect(self.tail_addr)
        yield Release(self.lock)

    def pop(self):
        """Remove and return the oldest item, or None when empty."""
        yield Acquire(self.lock)
        yield ReadEffect(self.head_addr)
        yield ReadEffect(self.tail_addr)
        if not self._items:
            yield Release(self.lock)
            return None
        yield ReadEffect(self._slot(self._head))
        item = self._items.popleft()
        self._head += 1
        yield WriteEffect(self.head_addr)
        yield Release(self.lock)
        return item

    def __len__(self) -> int:
        return len(self._items)


class SharedRecord:
    """A lock-protected shared record of ``nwords`` words.

    ``update`` reads then writes the record under its lock — one visit of
    the migratory life cycle.
    """

    def __init__(self, heap: Heap, name: str, nwords: int = 4):
        self.name = name
        self.lock = f"{name}.lock"
        self.nwords = nwords
        self.addr = heap.alloc_words(nwords)

    def update(self, read_words: int | None = None, write_words: int | None = None):
        """Read-modify-write the record under its lock."""
        read_words = self.nwords if read_words is None else read_words
        write_words = self.nwords if write_words is None else write_words
        yield Acquire(self.lock)
        for w in range(read_words):
            yield ReadEffect(self.addr + (w % self.nwords) * 4)
        for w in range(write_words):
            yield WriteEffect(self.addr + (w % self.nwords) * 4)
        yield Release(self.lock)

    def read_only(self, words: int | None = None):
        """Read the record under its lock without modifying it."""
        words = self.nwords if words is None else words
        yield Acquire(self.lock)
        for w in range(words):
            yield ReadEffect(self.addr + (w % self.nwords) * 4)
        yield Release(self.lock)
