"""A miniature execution-driven workload engine (Tango's role).

Simulated parallel programs are written as Python generators that yield
*effects*: shared-memory reads/writes, lock acquire/release, and barriers.
The engine interleaves the per-processor threads deterministically (seeded
random quanta), implements the synchronization, and records the
shared-data references into a :class:`repro.trace.Trace`.

Following the paper's methodology, synchronization operations themselves
are *not* recorded in the trace ("the traces ... exclude accesses to
synchronization variables, private data, and instructions"); only ordinary
shared-data accesses appear.

Example::

    engine = Engine(num_procs=4, seed=1)
    heap = Heap()
    counter = heap.alloc(4)
    lock = "counter-lock"

    def worker(proc):
        for _ in range(10):
            yield Acquire(lock)
            yield ReadEffect(counter)
            yield WriteEffect(counter)
            yield Release(lock)

    for proc in range(4):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Iterable

from repro.common.errors import DeadlockError, WorkloadError
from repro.common.types import Access, Op
from repro.trace.core import Trace


@dataclass(frozen=True, slots=True)
class ReadEffect:
    """Read the shared word at ``addr``."""

    addr: int


@dataclass(frozen=True, slots=True)
class WriteEffect:
    """Write the shared word at ``addr``."""

    addr: int


@dataclass(frozen=True, slots=True)
class Acquire:
    """Acquire the named mutual-exclusion lock (blocking)."""

    lock: str


@dataclass(frozen=True, slots=True)
class Release:
    """Release the named lock (must be held by this thread)."""

    lock: str


@dataclass(frozen=True, slots=True)
class BarrierWait:
    """Block until all live threads have reached barrier ``name``."""

    name: str


@dataclass(frozen=True, slots=True)
class LocalCompute:
    """Private computation between shared references.

    Consumes ``units`` scheduling steps without emitting trace records —
    the simulated equivalent of instructions and private-data work.
    Inserting compute between a critical section's accesses stretches it
    in time, increasing contention realism.
    """

    units: int = 1


Effect = (
    ReadEffect | WriteEffect | Acquire | Release | BarrierWait | LocalCompute
)
Program = Generator[Effect, None, None]


class Heap:
    """A bump allocator for laying out simulated shared data."""

    def __init__(self, base: int = 0):
        self._next = base

    def alloc(self, nbytes: int, align: int = 4) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes <= 0:
            raise WorkloadError("allocation size must be positive")
        if align & (align - 1):
            raise WorkloadError("alignment must be a power of two")
        self._next = (self._next + align - 1) & ~(align - 1)
        addr = self._next
        self._next += nbytes
        return addr

    def alloc_words(self, nwords: int, align: int = 4) -> int:
        """Reserve ``nwords`` four-byte words."""
        return self.alloc(nwords * 4, align)

    @property
    def used(self) -> int:
        """Bytes allocated so far."""
        return self._next


class _Thread:
    __slots__ = ("proc", "gen", "blocked_on", "done", "held")

    def __init__(self, proc: int, gen: Program):
        self.proc = proc
        self.gen = gen
        self.blocked_on: Effect | None = None
        self.done = False
        self.held: set[str] = set()


class Engine:
    """Deterministic round-robin interleaver for simulated threads."""

    def __init__(self, num_procs: int, seed: int = 0, max_quantum: int = 8):
        if num_procs <= 0:
            raise WorkloadError("num_procs must be positive")
        if max_quantum <= 0:
            raise WorkloadError("max_quantum must be positive")
        self.num_procs = num_procs
        self._rng = random.Random(seed)
        self._max_quantum = max_quantum
        self._threads: list[_Thread] = []
        self._locks: dict[str, _Thread | None] = {}

    def spawn(self, proc: int, gen: Program) -> None:
        """Register a thread on processor ``proc``."""
        if not 0 <= proc < self.num_procs:
            raise WorkloadError(f"processor id {proc} out of range")
        self._threads.append(_Thread(proc, gen))

    def run(self) -> Trace:
        """Interleave all threads to completion; returns the trace."""
        trace = Trace(name="engine")
        live = [t for t in self._threads if not t.done]
        while live:
            runnable = [t for t in live if self._can_run(t)]
            if not runnable:
                self._check_barriers(live)
                runnable = [t for t in live if self._can_run(t)]
                if not runnable:
                    raise DeadlockError(
                        f"{len(live)} threads blocked: "
                        f"{[str(t.blocked_on) for t in live[:4]]}"
                    )
            thread = self._rng.choice(runnable)
            self._step(thread, trace)
            live = [t for t in self._threads if not t.done]
        return trace

    def _can_run(self, thread: _Thread) -> bool:
        effect = thread.blocked_on
        if effect is None:
            return True
        if isinstance(effect, Acquire):
            return self._locks.get(effect.lock) is None
        if isinstance(effect, BarrierWait):
            # Barriers release all waiters at once in _check_barriers.
            return False
        raise WorkloadError(f"unexpected blocking effect: {effect!r}")

    def _check_barriers(self, live: list[_Thread]) -> None:
        """Release a barrier once every live thread is waiting on it.

        Threads that already finished are not required to arrive, matching
        SPMD programs where barriers synchronise the threads still running.
        """
        names = {
            t.blocked_on.name
            for t in live
            if isinstance(t.blocked_on, BarrierWait)
        }
        for name in names:
            blocked_here = [
                t
                for t in live
                if isinstance(t.blocked_on, BarrierWait)
                and t.blocked_on.name == name
            ]
            if len(blocked_here) == len(live):
                for t in blocked_here:
                    t.blocked_on = None

    def _step(self, thread: _Thread, trace: Trace) -> None:
        # Complete a pending acquire, if any.
        if isinstance(thread.blocked_on, Acquire):
            lock = thread.blocked_on.lock
            self._locks[lock] = thread
            thread.held.add(lock)
            thread.blocked_on = None
        quantum = self._rng.randint(1, self._max_quantum)
        for _ in range(quantum):
            try:
                effect = next(thread.gen)
            except StopIteration:
                thread.done = True
                if thread.held:
                    raise WorkloadError(
                        f"thread on P{thread.proc} exited holding "
                        f"locks {sorted(thread.held)}"
                    ) from None
                return
            if isinstance(effect, ReadEffect):
                trace.append(Access(thread.proc, Op.READ, effect.addr))
            elif isinstance(effect, WriteEffect):
                trace.append(Access(thread.proc, Op.WRITE, effect.addr))
            elif isinstance(effect, Acquire):
                holder = self._locks.get(effect.lock)
                if holder is thread:
                    raise WorkloadError(
                        f"P{thread.proc} re-acquired lock {effect.lock!r}"
                    )
                if holder is None:
                    self._locks[effect.lock] = thread
                    thread.held.add(effect.lock)
                else:
                    thread.blocked_on = effect
                    return
            elif isinstance(effect, Release):
                if self._locks.get(effect.lock) is not thread:
                    raise WorkloadError(
                        f"P{thread.proc} released lock {effect.lock!r} "
                        "it does not hold"
                    )
                self._locks[effect.lock] = None
                thread.held.discard(effect.lock)
            elif isinstance(effect, BarrierWait):
                thread.blocked_on = effect
                return
            elif isinstance(effect, LocalCompute):
                # Consume the rest of the quantum proportionally to the
                # declared work; nothing is traced.
                if effect.units >= quantum:
                    return
            else:
                raise WorkloadError(f"unknown effect: {effect!r}")


def run_program(
    num_procs: int,
    make_worker,
    seed: int = 0,
    max_quantum: int = 8,
    name: str = "program",
) -> Trace:
    """Convenience wrapper: spawn ``make_worker(proc)`` per processor.

    Args:
        num_procs: number of processors/threads.
        make_worker: callable returning the generator for each proc.
        seed: engine interleaving seed.
        max_quantum: maximum effects per scheduling quantum.
        name: name recorded on the returned trace.
    """
    engine = Engine(num_procs, seed=seed, max_quantum=max_quantum)
    for proc in range(num_procs):
        engine.spawn(proc, make_worker(proc))
    trace = engine.run()
    trace.name = name
    return trace
