"""Registry of the five SPLASH application analogues.

Each entry maps the application name used in the paper's tables to a
builder function plus the default parameters used by the experiment
harness.  ``scale`` shrinks or grows the workload uniformly so the
benchmark suite can run quick versions while the full campaign uses the
calibrated sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.trace.core import Trace
from repro.workloads.apps import cholesky, locusroute, mp3d, pthor, water


@dataclass(frozen=True)
class AppProfile:
    """A named workload with its harness parameters."""

    name: str
    builder: Callable[..., Trace]
    params: dict = field(default_factory=dict)
    #: Parameters multiplied by ``scale`` (workload-size knobs).
    scaled: tuple[str, ...] = ()

    def build(self, num_procs: int = 16, seed: int = 0, scale: float = 1.0) -> Trace:
        """Build the trace at the given scale."""
        params = dict(self.params)
        for key in self.scaled:
            params[key] = max(1, round(params[key] * scale))
        return self.builder(num_procs=num_procs, seed=seed, **params)


#: The five applications, in the paper's table order.
SPLASH_APPS: dict[str, AppProfile] = {
    "cholesky": AppProfile(
        "cholesky",
        cholesky.build,
        params={
            "columns": 512,
            "words_per_column": 64,
            "updates_per_column": 8,
            "touched_words": 16,
        },
        scaled=("columns",),
    ),
    "locusroute": AppProfile(
        "locusroute",
        locusroute.build,
        params={
            "grid_cells": 8192,
            "wires_per_proc": 40,
            "candidate_routes": 3,
            "probes_per_route": 24,
            "route_length": 6,
        },
        scaled=("wires_per_proc",),
    ),
    "mp3d": AppProfile(
        "mp3d",
        mp3d.build,
        params={"particles_per_proc": 96, "cells": 4096, "steps": 16},
        scaled=("steps",),
    ),
    "pthor": AppProfile(
        "pthor",
        pthor.build,
        params={"elements": 2048, "steps": 10, "activations_per_proc": 48},
        scaled=("steps",),
    ),
    "water": AppProfile(
        "water",
        water.build,
        params={
            "molecules_per_proc": 48,
            "steps": 8,
            "interactions_per_molecule": 2,
        },
        scaled=("steps",),
    ),
}

APP_ORDER = ("cholesky", "locusroute", "mp3d", "pthor", "water")


def build_app(
    name: str, num_procs: int = 16, seed: int = 0, scale: float = 1.0
) -> Trace:
    """Build one of the SPLASH analogues by name."""
    try:
        profile = SPLASH_APPS[name]
    except KeyError:
        raise KeyError(
            f"unknown app {name!r}; choose from {sorted(SPLASH_APPS)}"
        ) from None
    return profile.build(num_procs=num_procs, seed=seed, scale=scale)
