"""Write-run analysis (Eggers & Katz style characterization).

A *write run* is a maximal sequence of writes to a block by one
processor, uninterrupted by any access from another processor; the
*external re-reads* of a run are the distinct other processors that read
the block after the run ends and before the next write.  These two
statistics predict which coherence strategy suits a workload:

* long write runs → write-invalidate wins (one invalidation amortised
  over many silent writes);
* short runs with many external re-reads → write-update wins;
* runs of moderate length with a *single* external consumer that then
  starts its own run → migratory data, the adaptive protocols' target.

This gives the update-protocol comparison of
:mod:`repro.experiments.update_protocols` an analytic backstop, and ties
the workload analogues back to the literature's characterization
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.report import format_table
from repro.common.types import Access, Op


@dataclass(slots=True)
class WriteRunStats:
    """Aggregate write-run statistics for a trace."""

    run_lengths: list[int] = field(default_factory=list)
    external_rereads: list[int] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        return len(self.run_lengths)

    @property
    def mean_run_length(self) -> float:
        if not self.run_lengths:
            return 0.0
        return sum(self.run_lengths) / len(self.run_lengths)

    @property
    def mean_external_rereads(self) -> float:
        if not self.external_rereads:
            return 0.0
        return sum(self.external_rereads) / len(self.external_rereads)

    def histogram(self, buckets: Sequence[int] = (1, 2, 4, 8)) -> dict:
        """Run-length histogram: bucket upper bounds -> count (last
        bucket collects the tail)."""
        counts = {bound: 0 for bound in buckets}
        counts["more"] = 0
        for length in self.run_lengths:
            for bound in buckets:
                if length <= bound:
                    counts[bound] += 1
                    break
            else:
                counts["more"] += 1
        return counts


def write_run_stats(
    trace: Iterable[Access], block_size: int = 16
) -> WriteRunStats:
    """Collect write-run statistics over every block of a trace."""
    stats = WriteRunStats()
    # Per block: (writer, length) of the open run, the previous run's
    # writer, and the readers seen since that run closed.
    open_run: dict[int, tuple[int, int]] = {}
    last_writer: dict[int, int] = {}
    readers_since: dict[int, set[int]] = {}

    def close_run(block: int) -> None:
        run = open_run.pop(block, None)
        if run is not None:
            stats.run_lengths.append(run[1])
            last_writer[block] = run[0]

    for acc in trace:
        block = acc.addr // block_size
        run = open_run.get(block)
        if acc.op is Op.WRITE:
            if run is not None and run[0] == acc.proc:
                open_run[block] = (acc.proc, run[1] + 1)
            else:
                close_run(block)
                readers = readers_since.get(block)
                if readers:
                    # Distinct processors other than the previous run's
                    # writer that consumed the data before this run.
                    previous = last_writer.get(block)
                    stats.external_rereads.append(
                        len(readers - {previous})
                    )
                    readers_since[block] = set()
                open_run[block] = (acc.proc, 1)
        else:
            if run is not None and run[0] != acc.proc:
                close_run(block)
            if run is not None and run[0] == acc.proc:
                continue  # own read does not end the run's ownership
            readers_since.setdefault(block, set()).add(acc.proc)
    for block in list(open_run):
        close_run(block)
    return stats


def render_write_runs(named_stats: dict, title: str) -> str:
    """Render per-workload write-run summaries."""
    rows = [
        [
            name,
            stats.num_runs,
            stats.mean_run_length,
            stats.mean_external_rereads,
        ]
        for name, stats in named_stats.items()
    ]
    return format_table(
        ["workload", "write runs", "mean length", "mean ext. re-reads"],
        rows,
        title=title,
    )
