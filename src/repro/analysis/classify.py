"""Off-line sharing-pattern classification (Weber & Gupta style).

The paper motivates the adaptive protocols with the observation that
parallel programs exhibit a small number of distinct data-sharing
patterns.  This module provides the off-line analogue of the on-line
detector: it replays a trace per block and labels each block

* ``private`` — touched by a single processor;
* ``read_only`` — never written;
* ``migratory`` — a sequence of read/write *episodes* (maximal runs of
  accesses by one processor) in which most episodes contain a write and
  consecutive episodes belong to different processors;
* ``producer_consumer`` — written by a single processor, read by others;
* ``other`` — everything else (widely write-shared, false sharing, ...).

The classifier is used to validate the synthetic workloads (the generator
for pattern X must produce blocks classified X) and as an analysis tool in
its own right — e.g. measuring how much of an application's data is
migratory at a given block size, which is exactly the paper's false-
sharing discussion for Table 3.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.common.types import Access, Op


class SharingPattern(enum.Enum):
    """Block-level sharing-pattern labels."""

    PRIVATE = "private"
    READ_ONLY = "read-only"
    MIGRATORY = "migratory"
    PRODUCER_CONSUMER = "producer-consumer"
    OTHER = "other"


@dataclass(slots=True)
class BlockProfile:
    """Access statistics for one block."""

    block: int
    accesses: int = 0
    reads: int = 0
    writes: int = 0
    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)
    #: episodes: list of (proc, had_write) maximal single-proc runs
    episodes: list[tuple[int, bool]] = field(default_factory=list)

    @property
    def procs(self) -> set[int]:
        return self.readers | self.writers

    @property
    def migrations(self) -> int:
        """Processor changes between consecutive episodes."""
        return max(0, len(self.episodes) - 1)


def profile_blocks(
    trace: Iterable[Access], block_size: int = 16
) -> dict[int, BlockProfile]:
    """Collect per-block profiles from a trace."""
    profiles: dict[int, BlockProfile] = {}
    for acc in trace:
        block = acc.addr // block_size
        prof = profiles.get(block)
        if prof is None:
            prof = BlockProfile(block)
            profiles[block] = prof
        prof.accesses += 1
        is_write = acc.op is Op.WRITE
        if is_write:
            prof.writes += 1
            prof.writers.add(acc.proc)
        else:
            prof.reads += 1
            prof.readers.add(acc.proc)
        if prof.episodes and prof.episodes[-1][0] == acc.proc:
            proc, had_write = prof.episodes[-1]
            prof.episodes[-1] = (proc, had_write or is_write)
        else:
            prof.episodes.append((acc.proc, is_write))
    return profiles


def classify_block(
    profile: BlockProfile, migratory_write_fraction: float = 0.75
) -> SharingPattern:
    """Label one block profile.

    Args:
        profile: per-block statistics from :func:`profile_blocks`.
        migratory_write_fraction: minimum fraction of multi-proc episodes
            that must contain a write for the block to count as migratory.
    """
    if len(profile.procs) <= 1:
        return SharingPattern.PRIVATE
    if profile.writes == 0:
        return SharingPattern.READ_ONLY
    if len(profile.writers) == 1 and len(profile.readers - profile.writers) >= 1:
        return SharingPattern.PRODUCER_CONSUMER
    episodes = profile.episodes
    if len(episodes) >= 2:
        writing = sum(1 for _proc, had_write in episodes if had_write)
        if writing / len(episodes) >= migratory_write_fraction:
            return SharingPattern.MIGRATORY
    return SharingPattern.OTHER


def classify_trace(
    trace: Iterable[Access],
    block_size: int = 16,
    migratory_write_fraction: float = 0.75,
) -> dict[int, SharingPattern]:
    """Classify every block a trace touches."""
    return {
        block: classify_block(profile, migratory_write_fraction)
        for block, profile in profile_blocks(trace, block_size).items()
    }


@dataclass(frozen=True, slots=True)
class SharingSummary:
    """Aggregate pattern shares for a trace at one block size."""

    block_size: int
    blocks_by_pattern: dict
    accesses_by_pattern: dict

    def block_fraction(self, pattern: SharingPattern) -> float:
        total = sum(self.blocks_by_pattern.values())
        return self.blocks_by_pattern.get(pattern, 0) / total if total else 0.0

    def access_fraction(self, pattern: SharingPattern) -> float:
        total = sum(self.accesses_by_pattern.values())
        return self.accesses_by_pattern.get(pattern, 0) / total if total else 0.0


def summarize_sharing(
    trace: Iterable[Access], block_size: int = 16
) -> SharingSummary:
    """Summarise pattern shares (by block and by access) for a trace.

    Running this at increasing block sizes quantifies how false sharing
    hides migratory data — the effect Table 3 documents.
    """
    profiles = profile_blocks(trace, block_size)
    blocks: Counter = Counter()
    accesses: Counter = Counter()
    for profile in profiles.values():
        pattern = classify_block(profile)
        blocks[pattern] += 1
        accesses[pattern] += profile.accesses
    return SharingSummary(block_size, dict(blocks), dict(accesses))
