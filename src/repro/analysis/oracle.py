"""Off-line read-exclusive (load-with-intent-to-modify) oracle.

The related-work section contrasts the on-line adaptive protocols with
off-line approaches: "data identified as migratory could be moved
explicitly on a read access if the architecture provides a 'load with
intent to modify' instruction", as assumed by the Read-With-Ownership
operation of the sophisticated Berkeley Ownership protocol.

This module plays the off-line analyst: a profiling pass over the trace
marks every read whose *next same-block access is a write by the same
processor* as read-exclusive.  Feeding those hints back into the
directory machine (``DirectoryMachine.run_with_hints``) fetches such
blocks with ownership in one transaction — a perfect-knowledge upper
bound the on-line protocols can be compared against.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.types import Access, Op


def read_exclusive_hints(
    trace: Sequence[Access], block_size: int = 16
) -> list[bool]:
    """Mark reads that should fetch ownership.

    A read is marked when the same processor writes the block later in
    the *same episode* — i.e. before any other processor touches the
    block.  That is the safe condition a compiler inserting
    load-exclusive needs: the processor is guaranteed to still hold the
    block when the store issues.

    Returns:
        A list of booleans aligned with ``trace``.
    """
    hints = [False] * len(trace)
    # Per block: the processor of the current access run and the indices
    # of its so-far-unconfirmed reads.
    run_proc: dict[int, int] = {}
    pending_reads: dict[int, list[int]] = {}
    for i, acc in enumerate(trace):
        block = acc.addr // block_size
        if run_proc.get(block) != acc.proc:
            # Episode boundary: earlier reads were not followed by a
            # same-processor write in time.
            run_proc[block] = acc.proc
            pending_reads[block] = []
        if acc.op is Op.READ:
            pending_reads[block].append(i)
        else:
            for index in pending_reads[block]:
                hints[index] = True
            pending_reads[block] = []
    return hints


def hint_coverage(hints: Sequence[bool], trace: Sequence[Access]) -> float:
    """Fraction of reads marked read-exclusive (0.0 for empty traces)."""
    reads = sum(1 for acc in trace if acc.op is Op.READ)
    if reads == 0:
        return 0.0
    return sum(hints) / reads
