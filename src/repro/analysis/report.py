"""Plain-text table rendering for the experiment harness.

The experiments print tables shaped like the paper's (message counts in
thousands, percentage-reduction columns); this module holds the shared
formatting so every benchmark renders consistently.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Numbers are formatted naturally (floats to one decimal); everything
    else is ``str()``-ed.  Columns are right-aligned except the first.
    """
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        h.ljust(widths[i]) if i == 0 else h.rjust(widths[i])
        for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def thousands(count: int) -> float:
    """Counts in thousands, as the paper's tables report them."""
    return count / 1000.0
