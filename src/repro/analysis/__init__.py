"""Off-line analysis: sharing classification, cost models, reporting."""

from repro.analysis.classify import (
    BlockProfile,
    SharingPattern,
    SharingSummary,
    classify_block,
    classify_trace,
    profile_blocks,
    summarize_sharing,
)
from repro.analysis.oracle import hint_coverage, read_exclusive_hints
from repro.analysis.overhead import (
    EntryLayout,
    adaptive_layout,
    conventional_layout,
    overhead_table,
)
from repro.analysis.costs import (
    EQUAL_COST,
    FOUR_TO_ONE,
    PAPER_COST_MODELS,
    PER_16_BYTES,
    TWO_TO_ONE,
    CostModel,
    percent_saving,
)
from repro.analysis.report import format_table, thousands
from repro.analysis.tracestats import (
    TraceSummary,
    render_trace_summaries,
    reuse_distances,
    reuse_histogram,
    summarize_trace,
)
from repro.analysis.writeruns import (
    WriteRunStats,
    render_write_runs,
    write_run_stats,
)

__all__ = [
    "BlockProfile",
    "CostModel",
    "EQUAL_COST",
    "FOUR_TO_ONE",
    "PAPER_COST_MODELS",
    "PER_16_BYTES",
    "SharingPattern",
    "SharingSummary",
    "TWO_TO_ONE",
    "TraceSummary",
    "WriteRunStats",
    "EntryLayout",
    "adaptive_layout",
    "classify_block",
    "classify_trace",
    "format_table",
    "hint_coverage",
    "percent_saving",
    "read_exclusive_hints",
    "profile_blocks",
    "conventional_layout",
    "overhead_table",
    "summarize_sharing",
    "thousands",
    "render_write_runs",
    "render_trace_summaries",
    "reuse_distances",
    "reuse_histogram",
    "summarize_trace",
    "write_run_stats",
]
