"""Traffic attribution: which sharing patterns cause the messages.

Combines the off-line block classifier with the directory machine's
per-block message tracking to answer the question the paper's
introduction poses quantitatively: *how much of the coherence traffic is
caused by migratory data* — and therefore how much an adaptive protocol
can hope to remove (at most half of the migratory share).

Also provides a hot-block report (the top-N blocks by messages with
their classified patterns), a practical tool for studying new workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.classify import SharingPattern, classify_trace
from repro.analysis.report import format_table
from repro.common.types import Access
from repro.system.machine import DirectoryMachine


@dataclass(frozen=True, slots=True)
class TrafficByPattern:
    """Message totals attributed to each sharing pattern."""

    messages_by_pattern: dict
    total: int

    def fraction(self, pattern: SharingPattern) -> float:
        """Share of all messages caused by blocks of ``pattern``."""
        if self.total == 0:
            return 0.0
        return self.messages_by_pattern.get(pattern, 0) / self.total


def traffic_by_pattern(
    machine: DirectoryMachine, trace: Sequence[Access]
) -> TrafficByPattern:
    """Attribute a finished machine run's messages to sharing patterns.

    Args:
        machine: a machine constructed with ``track_blocks=True`` that
            has already processed ``trace``.
        trace: the trace it processed (classified off-line here).
    """
    if machine.block_messages is None:
        raise ValueError("machine must be built with track_blocks=True")
    patterns = classify_trace(trace, machine.config.block_size)
    by_pattern: Counter = Counter()
    for block, messages in machine.block_messages.items():
        pattern = patterns.get(block, SharingPattern.OTHER)
        by_pattern[pattern] += messages
    return TrafficByPattern(dict(by_pattern), sum(by_pattern.values()))


@dataclass(frozen=True, slots=True)
class HotBlock:
    """One entry of the hot-block report."""

    block: int
    messages: int
    pattern: SharingPattern


def hot_blocks(
    machine: DirectoryMachine, trace: Sequence[Access], top: int = 10
) -> list[HotBlock]:
    """The ``top`` blocks by message count, with their patterns."""
    if machine.block_messages is None:
        raise ValueError("machine must be built with track_blocks=True")
    patterns = classify_trace(trace, machine.config.block_size)
    ranked = sorted(
        machine.block_messages.items(), key=lambda kv: kv[1], reverse=True
    )
    return [
        HotBlock(block, messages,
                 patterns.get(block, SharingPattern.OTHER))
        for block, messages in ranked[:top]
    ]


def render_traffic(result: TrafficByPattern, title: str) -> str:
    """Render a traffic-by-pattern breakdown."""
    rows = [
        [pattern.value,
         result.messages_by_pattern.get(pattern, 0),
         100 * result.fraction(pattern)]
        for pattern in SharingPattern
        if result.messages_by_pattern.get(pattern, 0)
    ]
    rows.sort(key=lambda r: r[1], reverse=True)
    return format_table(["pattern", "messages", "share %"], rows, title=title)
