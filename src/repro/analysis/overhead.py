"""Directory-entry storage accounting (Section 2.2).

"Adding an adaptive protocol to an existing directory-based protocol
increases the size of each directory entry.  The amount of extra storage
depends on both the design of the original protocol and the properties
of the particular adaptive policy chosen."

This module quantifies that: bit-level layouts for a full-map directory
entry under the conventional protocol and under an adaptive policy, plus
the resulting overhead as a fraction of main memory for the paper's
block sizes.  It also models the optimisation the paper mentions: if the
copy set records creation order, the last-invalidator field is free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.directory.policy import AdaptivePolicy


def _ceil_log2(value: int) -> int:
    return max(1, math.ceil(math.log2(max(2, value))))


@dataclass(frozen=True, slots=True)
class EntryLayout:
    """Bit widths of one directory entry's fields."""

    name: str
    state_bits: int
    copyset_bits: int
    last_invalidator_bits: int
    hysteresis_bits: int

    @property
    def total_bits(self) -> int:
        return (
            self.state_bits
            + self.copyset_bits
            + self.last_invalidator_bits
            + self.hysteresis_bits
        )

    def memory_overhead(self, block_size: int) -> float:
        """Directory storage as a fraction of main memory."""
        return self.total_bits / (block_size * 8)


def conventional_layout(num_procs: int) -> EntryLayout:
    """Full-map entry for the conventional protocol.

    Two state bits (uncached / shared / dirty) plus one presence bit per
    node; the dirty owner is identified by the single presence bit.
    """
    return EntryLayout(
        name="conventional",
        state_bits=2,
        copyset_bits=num_procs,
        last_invalidator_bits=0,
        hysteresis_bits=0,
    )


def adaptive_layout(
    policy: AdaptivePolicy,
    num_procs: int,
    ordered_copyset: bool = False,
) -> EntryLayout:
    """Full-map entry for an adaptive policy.

    Three state bits cover the six copies-created states of Figure 3.
    The last invalidator needs ``log2(P)`` bits unless the copy set
    encodes creation order (the paper's optimisation), and hysteresis
    needs enough bits to count the evidence streak (the conservative
    protocol's ``one migration`` flag is the one-bit case).
    """
    threshold = policy.migratory_threshold or 1
    hysteresis_bits = 0 if threshold <= 1 else _ceil_log2(threshold)
    return EntryLayout(
        name=policy.name,
        state_bits=3,
        copyset_bits=num_procs,
        last_invalidator_bits=0 if ordered_copyset else _ceil_log2(num_procs),
        hysteresis_bits=hysteresis_bits,
    )


def overhead_table(
    policies,
    num_procs: int = 16,
    block_sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
) -> str:
    """Render entry sizes and memory overheads for a set of policies."""
    rows = []
    layouts = [conventional_layout(num_procs)]
    layouts += [adaptive_layout(p, num_procs) for p in policies if p.adaptive]
    layouts += [
        replace(
            adaptive_layout(p, num_procs, ordered_copyset=True),
            name=f"{p.name} (ordered copyset)",
        )
        for p in policies
        if p.adaptive
    ]
    for layout in layouts:
        row = [layout.name, layout.total_bits]
        for block_size in block_sizes:
            row.append(100 * layout.memory_overhead(block_size))
        rows.append(row)
    headers = ["entry", "bits"] + [f"{b}B ovh%" for b in block_sizes]
    return format_table(
        headers,
        rows,
        title=f"Directory-entry storage, full-map, {num_procs} nodes "
        "(overhead as % of main memory)",
    )
