"""Trace-level statistics: mixes, balance, and reuse distances.

Quick structural summaries of a reference stream, used to sanity-check
workloads before simulating them:

* read/write mix and per-processor balance;
* footprint at a given block size;
* **block reuse distances** — for each re-reference of a block, the
  number of *distinct* blocks touched since its previous reference.
  The distribution determines how a given cache size behaves: a cache of
  C blocks hits exactly those re-references whose reuse distance is
  below ~C (fully-associative intuition), which is the lens for reading
  Table 2's cache-size column.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.report import format_table
from repro.common.types import Access, Op


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Headline statistics for one trace."""

    references: int
    write_fraction: float
    num_procs: int
    blocks_touched: int
    max_proc_share: float  # largest per-processor share of references

    @property
    def balanced(self) -> bool:
        """True when no processor issues more than twice its fair share."""
        if self.num_procs == 0:
            return True
        return self.max_proc_share <= 2.0 / self.num_procs


def summarize_trace(
    trace: Sequence[Access], block_size: int = 16
) -> TraceSummary:
    """Compute the headline statistics of a trace."""
    per_proc: Counter = Counter()
    blocks = set()
    writes = 0
    for acc in trace:
        per_proc[acc.proc] += 1
        blocks.add(acc.addr // block_size)
        if acc.op is Op.WRITE:
            writes += 1
    total = len(trace)
    return TraceSummary(
        references=total,
        write_fraction=writes / total if total else 0.0,
        num_procs=len(per_proc),
        blocks_touched=len(blocks),
        max_proc_share=(
            max(per_proc.values()) / total if total else 0.0
        ),
    )


def reuse_distances(
    trace: Sequence[Access],
    block_size: int = 16,
    per_processor: bool = True,
) -> list[int]:
    """Reuse distance of every re-reference.

    Args:
        per_processor: measure each processor's stream separately (the
            per-node cache view); False measures the merged stream.

    Returns:
        One distance (distinct intervening blocks) per re-reference, in
        trace order.  First-ever references produce no entry.
    """
    distances: list[int] = []
    # Per stream: block -> index of last use, plus an ordered list of
    # (index, block) to count distinct blocks in between.  A simple
    # O(n * d) stack-distance computation is fine at our trace sizes.
    last_use: dict[tuple, int] = {}
    streams: dict[int | None, list[int]] = {}
    for acc in trace:
        stream_key = acc.proc if per_processor else None
        block = acc.addr // block_size
        stream = streams.setdefault(stream_key, [])
        key = (stream_key, block)
        prev = last_use.get(key)
        if prev is not None:
            distinct = len(set(stream[prev + 1:]))
            distances.append(distinct)
        stream.append(block)
        last_use[key] = len(stream) - 1
    return distances


def reuse_histogram(
    distances: Sequence[int],
    buckets: Sequence[int] = (0, 4, 16, 64, 256, 1024),
) -> dict:
    """Bucketed counts of reuse distances (last bucket takes the tail)."""
    counts = {bound: 0 for bound in buckets}
    counts["more"] = 0
    for distance in distances:
        for bound in buckets:
            if distance <= bound:
                counts[bound] += 1
                break
        else:
            counts["more"] += 1
    return counts


def render_trace_summaries(named: dict, block_size: int = 16) -> str:
    """Render summaries for several traces."""
    rows = []
    for name, trace in named.items():
        summary = summarize_trace(trace, block_size)
        rows.append(
            [
                name,
                summary.references,
                100 * summary.write_fraction,
                summary.num_procs,
                summary.blocks_touched,
                "yes" if summary.balanced else "NO",
            ]
        )
    return format_table(
        ["trace", "refs", "write %", "procs", "blocks", "balanced"],
        rows,
        title=f"Trace summaries ({block_size}-byte blocks)",
    )
