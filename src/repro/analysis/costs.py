"""Cost-model analysis over message statistics (Section 4.1).

The paper reports savings under several charging schemes:

* equal cost per message (the headline percentage columns),
* data-carrying messages charged 2x or 4x a short message,
* one unit per message plus one unit per sixteen bytes transmitted.

These helpers apply any of those to a pair of
:class:`repro.common.stats.MessageStats` so a single simulation run can be
re-costed without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.stats import MessageStats


@dataclass(frozen=True, slots=True)
class CostModel:
    """A message-weighting scheme.

    ``data_weight`` multiplies data-carrying messages.  When
    ``bytes_per_unit`` is set, the model instead charges
    ``1 + block_size / bytes_per_unit`` per data message (and 1 per short
    message), which is the paper's byte-proportional model.
    """

    name: str
    data_weight: float = 1.0
    bytes_per_unit: int | None = None

    def cost(self, stats: MessageStats, block_size: int) -> float:
        """Total cost of ``stats`` under this model."""
        if self.bytes_per_unit is not None:
            return stats.byte_cost(block_size, self.bytes_per_unit)
        return stats.weighted_total(self.data_weight)


#: The cost models the paper discusses, in order of appearance.
EQUAL_COST = CostModel("1:1")
TWO_TO_ONE = CostModel("2:1", data_weight=2.0)
FOUR_TO_ONE = CostModel("4:1", data_weight=4.0)
PER_16_BYTES = CostModel("1+bytes/16", bytes_per_unit=16)

PAPER_COST_MODELS = (EQUAL_COST, TWO_TO_ONE, FOUR_TO_ONE, PER_16_BYTES)


def percent_saving(
    base: MessageStats,
    other: MessageStats,
    block_size: int = 16,
    model: CostModel = EQUAL_COST,
) -> float:
    """Percentage cost reduction of ``other`` versus ``base``.

    Positive values mean ``other`` is cheaper; negative values are the
    "penalty" cases the paper notes for large blocks under byte-weighted
    models.
    """
    base_cost = model.cost(base, block_size)
    if base_cost == 0:
        return 0.0
    return 100.0 * (base_cost - model.cost(other, block_size)) / base_cost
