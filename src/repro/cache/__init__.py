"""Set-associative and infinite cache models."""

from repro.cache.core import (
    Cache,
    CacheLine,
    InfiniteCache,
    SetAssociativeCache,
    make_cache,
)

__all__ = [
    "Cache",
    "CacheLine",
    "InfiniteCache",
    "SetAssociativeCache",
    "make_cache",
]
