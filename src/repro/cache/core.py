"""Set-associative cache model.

The cache stores *coherence lines*: a block number plus a protocol-defined
state object and a dirty bit.  The protocols (directory or snooping) own the
meaning of the state; the cache only manages placement, lookup, and
replacement.

Replacement follows the paper's model: 4-way set-associative with LRU.
FIFO and random are provided for ablation studies.  An infinite cache
(:class:`InfiniteCache`) never evicts and is used for the block-size sweep
of Table 3, where the paper eliminates capacity and conflict misses.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError


@dataclass(slots=True)
class CacheLine:
    """One resident cache line.

    Attributes:
        block: block number held by this line.
        state: protocol-defined coherence state.
        dirty: True when the local copy has been modified and memory is
            stale.  Some protocols fold dirtiness into ``state``; the
            explicit bit is authoritative for writeback decisions.
    """

    block: int
    state: Any
    dirty: bool = False
    #: Version stamp used by the optional coherence checker; records which
    #: write to the block this copy reflects.
    version: int = 0
    #: Protocol-private counter (e.g. the competitive-update staleness
    #: count).  Protocols that do not use it leave it at zero.
    counter: int = 0


class Cache:
    """Interface shared by finite and infinite caches.

    Only valid lines are resident: invalidating a block removes it from the
    cache entirely, so iteration never yields stale entries.
    """

    __slots__ = ()

    def lookup(self, block: int) -> CacheLine | None:
        """Return the resident line for ``block`` or None (no LRU update)."""
        raise NotImplementedError

    def touch(self, block: int) -> None:
        """Record a use of ``block`` for the replacement policy."""
        raise NotImplementedError

    def insert(self, block: int, state: Any, dirty: bool = False) -> CacheLine | None:
        """Make ``block`` resident, evicting a victim if necessary.

        Returns:
            The evicted :class:`CacheLine`, or None when no eviction was
            needed.  The caller is responsible for any writeback or
            replacement notification the victim requires.
        """
        raise NotImplementedError

    def remove(self, block: int) -> CacheLine | None:
        """Invalidate ``block``; returns the removed line or None."""
        raise NotImplementedError

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over the block numbers of all resident lines."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, block: int) -> bool:
        return self.lookup(block) is not None


class SetAssociativeCache(Cache):
    """A finite set-associative cache with LRU/FIFO/random replacement."""

    __slots__ = ("_config", "_num_sets", "_ways", "_sets", "_policy",
                 "_rng", "_size")

    def __init__(self, config: CacheConfig, rng: random.Random | None = None):
        if config.is_infinite:
            raise ConfigError("use InfiniteCache for size_bytes=None")
        self._config = config
        self._num_sets = config.num_sets
        self._ways = config.associativity
        # Each set maps block -> CacheLine in recency order (oldest first).
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self._policy = config.replacement
        self._rng = rng or random.Random(0)
        self._size = 0

    @property
    def config(self) -> CacheConfig:
        """The geometry this cache was built with."""
        return self._config

    def _set_of(self, block: int) -> OrderedDict[int, CacheLine]:
        return self._sets[block % self._num_sets]

    def hot_sets(self) -> tuple[list[OrderedDict[int, CacheLine]], int, bool]:
        """Raw ``(sets, num_sets, is_lru)`` for machine replay fast loops.

        The machines bind these to locals and index/``move_to_end`` the
        per-set mappings directly, skipping two method calls per hit.
        """
        return self._sets, self._num_sets, self._policy == "lru"

    def lookup(self, block: int) -> CacheLine | None:
        return self._sets[block % self._num_sets].get(block)

    def touch(self, block: int) -> None:
        if self._policy == "lru":
            cache_set = self._sets[block % self._num_sets]
            if block in cache_set:
                cache_set.move_to_end(block)

    def insert(self, block: int, state: Any, dirty: bool = False) -> CacheLine | None:
        cache_set = self._sets[block % self._num_sets]
        if block in cache_set:
            line = cache_set[block]
            line.state = state
            line.dirty = dirty
            self.touch(block)
            return None
        victim = None
        if len(cache_set) >= self._ways:
            victim = self._choose_victim(cache_set)
            del cache_set[victim.block]
            self._size -= 1
        cache_set[block] = CacheLine(block, state, dirty)
        self._size += 1
        return victim

    def _choose_victim(self, cache_set: OrderedDict[int, CacheLine]) -> CacheLine:
        if self._policy == "random":
            key = self._rng.choice(list(cache_set))
            return cache_set[key]
        # LRU and FIFO both evict the oldest entry; they differ only in
        # whether touch() refreshes recency.
        return next(iter(cache_set.values()))

    def remove(self, block: int) -> CacheLine | None:
        cache_set = self._sets[block % self._num_sets]
        line = cache_set.pop(block, None)
        if line is not None:
            self._size -= 1
        return line

    def resident_blocks(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set

    def __len__(self) -> int:
        return self._size


class InfiniteCache(Cache):
    """A cache that never evicts (no capacity or conflict misses)."""

    __slots__ = ("_config", "_lines")

    def __init__(self, config: CacheConfig | None = None):
        self._config = config
        self._lines: dict[int, CacheLine] = {}

    def hot_lines(self) -> dict[int, CacheLine]:
        """Raw block -> line mapping for machine replay fast loops."""
        return self._lines

    def lookup(self, block: int) -> CacheLine | None:
        return self._lines.get(block)

    def touch(self, block: int) -> None:
        pass

    def insert(self, block: int, state: Any, dirty: bool = False) -> CacheLine | None:
        line = self._lines.get(block)
        if line is None:
            self._lines[block] = CacheLine(block, state, dirty)
        else:
            line.state = state
            line.dirty = dirty
        return None

    def remove(self, block: int) -> CacheLine | None:
        return self._lines.pop(block, None)

    def resident_blocks(self) -> Iterator[int]:
        yield from self._lines

    def __len__(self) -> int:
        return self._lines.__len__()


def make_cache(config: CacheConfig, rng: random.Random | None = None) -> Cache:
    """Build the cache implied by ``config`` (finite or infinite)."""
    if config.is_infinite:
        return InfiniteCache(config)
    return SetAssociativeCache(config, rng)
