"""Process-level fan-out for the experiment harness.

The experiment sweeps (:mod:`repro.experiments`) are embarrassingly
parallel: every table cell is a pure function of ``(app, seed, scale,
machine parameters)``.  :func:`parallel_map` fans such cells across a
:class:`concurrent.futures.ProcessPoolExecutor` while preserving the
input order, so a parallel run merges into *exactly* the same result
list as a serial one.

Determinism contract
--------------------

``parallel_map(fn, items, jobs=N)`` returns ``[fn(x) for x in items]``
for every ``N``: worker processes only change *where* each cell runs,
never its inputs (traces are rebuilt — or loaded from the on-disk trace
cache — from the same ``(app, num_procs, seed, scale)`` key inside each
worker).  Experiments therefore produce byte-identical reports whatever
``--jobs`` says.

The job count resolves in priority order: explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then 1 (serial).  Cells must be
module-level callables with picklable arguments and results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: argument, then ``REPRO_JOBS``, then 1.

    Args:
        jobs: explicit worker count; ``None`` defers to the environment.

    Returns:
        A worker count of at least 1.

    Raises:
        ValueError: if ``REPRO_JOBS`` is set but not an integer.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {env!r}"
            ) from None
    return max(1, int(jobs))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Args:
        fn: a module-level (picklable) callable.
        items: the work list; consumed eagerly.
        jobs: worker processes (see :func:`resolve_jobs`); 1 runs the
            map in-process with no executor at all.

    Returns:
        Results in input order — identical to ``[fn(x) for x in items]``.
    """
    work: Sequence[T] = list(items)
    count = resolve_jobs(jobs)
    if count <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(count, len(work))) as pool:
        # ``Executor.map`` yields results in submission order, which is
        # what makes the parallel merge deterministic.
        return list(pool.map(fn, work))
