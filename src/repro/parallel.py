"""Process-level fan-out for the experiment harness.

The experiment sweeps (:mod:`repro.experiments`) are embarrassingly
parallel: every table cell is a pure function of ``(app, seed, scale,
machine parameters)``.  :func:`parallel_map` fans such cells across a
**persistent, session-scoped** :class:`concurrent.futures.
ProcessPoolExecutor` while preserving the input order, so a parallel run
merges into *exactly* the same result list as a serial one.

Determinism contract
--------------------

``parallel_map(fn, items, jobs=N)`` returns ``[fn(x) for x in items]``
for every ``N``: worker processes only change *where* each cell runs,
never its inputs (traces arrive through the shared-memory arena of
:mod:`repro.trace.shm`, or are re-loaded from the on-disk trace cache,
from the same ``(app, num_procs, seed, scale)`` key).  Experiments
therefore produce byte-identical reports whatever ``--jobs`` says.

The job count resolves in priority order: explicit ``jobs`` argument,
the ``REPRO_JOBS`` environment variable, then 1 (serial).  A count of
**0 means "all CPUs"** (``os.process_cpu_count()``, falling back to the
scheduler affinity mask and ``os.cpu_count()``).  Because output never
depends on the job count, the effective worker count is additionally
clamped to the CPUs actually available — oversubscribing a 2-core CI
runner with ``--jobs 16`` only adds overhead; set
``REPRO_PARALLEL_CLAMP=off`` to force the literal count (the pool
contract tests do).

The executor is created lazily on first parallel use and reused by
every subsequent :func:`parallel_map` in the session — one spawn cost
per run of ``repro-experiments all``, not one per sweep.  The start
method is pinned (``spawn`` by default, override with
``REPRO_MP_START``) so results and worker semantics are reproducible
across platforms.  Cells must be module-level callables with picklable
arguments and results.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable pinning the multiprocessing start method.
START_METHOD_ENV = "REPRO_MP_START"

#: Environment variable disabling the CPU clamp (``off``/``0``/...).
CLAMP_ENV = "REPRO_PARALLEL_CLAMP"

#: The pinned default start method: uniform worker semantics on every
#: platform (fork would hand Linux workers a snapshot of parent state
#: that macOS/Windows workers never see).
DEFAULT_START_METHOD = "spawn"

_OFF_VALUES = {"off", "0", "no", "false", "disable", "disabled"}

#: Target number of chunks handed to each worker; >1 keeps the tail of
#: a sweep balanced, while chunking itself amortises per-item IPC.
_CHUNKS_PER_WORKER = 4


def effective_cpu_count() -> int:
    """CPUs actually available to this process (at least 1)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:  # pragma: no cover - Python >= 3.13
        count = counter()
        return count if count else 1
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: argument, then ``REPRO_JOBS``, then 1.

    Args:
        jobs: explicit worker count; ``None`` defers to the environment.
            ``0`` (argument or environment) means **all CPUs**.

    Returns:
        A worker count of at least 1.

    Raises:
        ValueError: if ``REPRO_JOBS`` is set but not an integer.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(
                f"{JOBS_ENV} must be an integer, got {env!r}"
            ) from None
    jobs = int(jobs)
    if jobs == 0:
        return effective_cpu_count()
    return max(1, jobs)


def _clamp_enabled() -> bool:
    value = os.environ.get(CLAMP_ENV, "").strip().lower()
    return value not in _OFF_VALUES


def effective_workers(jobs: int | None, num_items: int) -> int:
    """Worker processes a ``parallel_map`` over ``num_items`` would use.

    Resolves ``jobs`` (argument / environment / serial default), caps at
    the number of items, and — unless ``REPRO_PARALLEL_CLAMP=off`` —
    at the CPUs actually available.  Experiments consult this before
    paying parallel-only setup costs such as publishing traces to the
    shared-memory arena.
    """
    workers = min(resolve_jobs(jobs), num_items)
    if _clamp_enabled():
        workers = min(workers, effective_cpu_count())
    return max(1, workers)


# ----------------------------------------------------------------------
# The persistent executor
# ----------------------------------------------------------------------

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0

#: Serialises every swap of the module-level pool reference.  The
#: service layer calls :func:`shutdown_pool` from request handlers
#: while the atexit hook can fire concurrently from the main thread;
#: without the lock both could shut down (or leak) the same executor.
_POOL_LOCK = threading.Lock()


def _start_method() -> str:
    return os.environ.get(START_METHOD_ENV, "").strip() or DEFAULT_START_METHOD


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The session executor, grown to at least ``workers`` processes.

    Created lazily on first use with the pinned start method and reused
    by every later :func:`parallel_map`; asking for more workers than
    the current pool has replaces it (asking for fewer reuses the larger
    pool — output never depends on the worker count).
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        previous = None
        if _POOL is None or workers > _POOL_WORKERS:
            previous = _POOL
            _POOL = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context(_start_method()),
            )
            _POOL_WORKERS = workers
        pool = _POOL
    if previous is not None:
        previous.shutdown(wait=False, cancel_futures=True)
    return pool


def shutdown_pool(wait: bool = False) -> None:
    """Shut the session executor down (next use recreates it).

    Idempotent and thread-safe: the pool reference is detached under
    :data:`_POOL_LOCK`, so concurrent callers — e.g. a request handler
    disposing of a broken pool racing the atexit hook at interpreter
    shutdown — agree on a single winner; everyone else sees ``None``
    and returns.  The actual ``Executor.shutdown`` runs outside the
    lock (it can block on worker teardown).

    Args:
        wait: with False (the default, and what the atexit hook gets),
            pending futures are cancelled and the call returns without
            blocking — the right disposal for a broken pool.  With
            True, in-flight jobs run to completion and worker
            processes are reaped before the call returns — the
            graceful path a draining server takes so a replay still
            executing in a worker is finished, not killed, and no
            orphan processes outlive the shard.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool = _POOL
        _POOL = None
        _POOL_WORKERS = 0
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=not wait)


atexit.register(shutdown_pool)


def _chunksize(num_items: int, workers: int) -> int:
    return max(1, -(-num_items // (workers * _CHUNKS_PER_WORKER)))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    Args:
        fn: a module-level (picklable) callable.
        items: the work list; consumed eagerly.
        jobs: worker processes (see :func:`resolve_jobs`; 0 = all CPUs);
            an effective count of 1 runs the map in-process with no
            executor at all.

    Returns:
        Results in input order — identical to ``[fn(x) for x in items]``.
    """
    work: Sequence[T] = list(items)
    workers = effective_workers(jobs, len(work))
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    pool = get_pool(workers)
    try:
        # ``Executor.map`` yields results in submission order, which is
        # what makes the parallel merge deterministic; chunking batches
        # the per-item pickling round-trips for short cells.
        return list(pool.map(fn, work, chunksize=_chunksize(len(work), workers)))
    except BrokenProcessPool:
        # A worker died hard (signal, OOM).  Dispose of the broken pool
        # so the next parallel_map starts from a clean executor.
        shutdown_pool()
        raise
