"""Experiment T2 — Table 2: message counts by cache size.

Sweeps the per-node cache from 4 KByte to 1 MByte (16-byte blocks,
16 processors) for every application and every protocol, reporting
messages without data, messages with data, and the percentage reduction in
total messages versus the conventional protocol — the same columns as the
paper's Table 2.

Expected shape: the adaptive protocols' relative effectiveness *increases*
with cache size (fewer capacity misses leave coherence traffic dominant,
and blocks stay cached long enough to migrate cache-to-cache), and the
more aggressive protocols dominate at every point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, thousands
from repro.directory.policy import PAPER_POLICIES, AdaptivePolicy
from repro.experiments import common
from repro.parallel import effective_workers, parallel_map
from repro.workloads.profiles import APP_ORDER

#: The paper's cache-size sweep (bytes per node).
CACHE_SIZES = (4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One (cache size, application) row across all protocols."""

    cache_size: int
    app: str
    cells: dict  # policy name -> ProtocolCell


def _row(task: tuple) -> Table2Row:
    """One (cache size, app) cell: every policy on one trace.

    Module-level so :func:`repro.parallel.parallel_map` can ship it to a
    worker process; the trace attaches zero-copy through the shared
    handle, falling back to the worker's own cache.
    """
    cache_size, app, policies, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    cells = {}
    baseline_total = 0
    for policy in policies:
        stats = common.run_directory(
            trace, policy, cache_size, num_procs=num_procs
        )
        if policy.name == "conventional" or not cells:
            baseline_total = stats.total
        cells[policy.name] = common.make_cell(stats, baseline_total)
    return Table2Row(cache_size, app, cells)


def run(
    apps: tuple[str, ...] = APP_ORDER,
    cache_sizes: tuple[int, ...] = CACHE_SIZES,
    policies: tuple[AdaptivePolicy, ...] = PAPER_POLICIES,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[Table2Row]:
    """Run the full sweep; returns one row per (cache size, app).

    ``jobs`` fans the (cache size, app) cells across worker processes
    (default: serial, or the ``REPRO_JOBS`` environment variable); the
    result is identical for every job count.
    """
    num_tasks = len(cache_sizes) * len(apps)
    handles: dict = {}
    if effective_workers(jobs, num_tasks) > 1:
        handles = common.publish_traces(tuple(apps), num_procs, seed, scale)
    tasks = [
        (cache_size, app, tuple(policies), scale, seed, num_procs,
         handles.get(app))
        for cache_size in cache_sizes
        for app in apps
    ]
    return parallel_map(_row, tasks, jobs=jobs)


def render(rows: list[Table2Row]) -> str:
    """Render the sweep in the paper's Table 2 layout."""
    policies = list(rows[0].cells) if rows else []
    headers = ["cache / app"]
    for name in policies:
        headers.append(f"{name[:6]} w/o")
        headers.append("w/")
        if name != "conventional":
            headers.append("%")
    out_rows = []
    last_size = None
    for row in rows:
        if row.cache_size != last_size:
            out_rows.append([f"-- {row.cache_size // 1024} Kbyte --"]
                            + [""] * (len(headers) - 1))
            last_size = row.cache_size
        cells = [row.app]
        for name in policies:
            cell = row.cells[name]
            cells.append(thousands(cell.short))
            cells.append(thousands(cell.data))
            if name != "conventional":
                cells.append(cell.reduction_pct)
        out_rows.append(cells)
    return format_table(
        headers,
        out_rows,
        title="Table 2: message counts (thousands) by cache size, "
        "application, and protocol",
    )
