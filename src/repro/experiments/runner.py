"""Command-line entry point: regenerate any paper artifact.

Usage::

    repro-experiments table1
    repro-experiments fig2
    repro-experiments table2 [--scale 0.5] [--jobs 4]
    repro-experiments table3 [--scale 0.5] [--jobs 4]
    repro-experiments cost-ratio
    repro-experiments exec-time
    repro-experiments placement
    repro-experiments bus
    repro-experiments ablations
    repro-experiments sharing        # off-line pattern census per app
    repro-experiments all [--scale 0.5]

``--scale`` shrinks the workloads uniformly (default 1.0, the calibrated
sizes used by EXPERIMENTS.md).  ``--jobs N`` (or the ``REPRO_JOBS``
environment variable) fans the sweep experiments (table2, table3, bus,
ablations, policy-space) across N worker processes — ``--jobs 0`` means
all CPUs — reusing one persistent executor for the whole run and
publishing each trace once to the shared-memory arena so workers attach
zero-copy; every job count produces byte-identical output.

Replay results are memoized in the content-addressed result cache
(:mod:`repro.experiments.resultcache`), so re-runs and overlapping
sweeps skip identical replays; ``--no-result-cache`` (or
``REPRO_RESULT_CACHE=off``) forces every replay to execute.
Per-experiment timings and the final cache hit/miss totals print to
stderr, keeping stdout byte-identical across runs.

``--telemetry-dir DIR`` opens a telemetry session for the run: machine
replays are instrumented (coherence and classification events stream to
``DIR/events.jsonl``), every experiment and replay is timed by a span,
and the metrics registry is dumped to ``DIR/metrics.prom`` on exit.
Render the log with ``repro-stats``.  Sessions do not cross process
boundaries, so machine events are recorded for serial runs (telemetry
runs drop to the generic replay path anyway — use serial for them).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.analysis.classify import SharingPattern, summarize_sharing
from repro.analysis.overhead import overhead_table
from repro.analysis.writeruns import render_write_runs, write_run_stats
from repro.directory.policy import PAPER_POLICIES
from repro.analysis.report import format_table
from repro.experiments import (
    ablations,
    bus,
    common,
    contention,
    cost_ratio,
    exec_time,
    fig2,
    inval_patterns,
    limited_dir,
    oracle,
    placement,
    policy_space,
    prefetch,
    robustness,
    table2,
    table3,
    topology,
    update_protocols,
)
from repro.common.version import add_version_argument
from repro.experiments import resultcache
from repro.interconnect.costs import render_table1
from repro.parallel import resolve_jobs
from repro.telemetry import runtime as telemetry
from repro.workloads.profiles import APP_ORDER


def _jobs(args) -> int | None:
    # COMMANDS handlers are also driven by scripts that build their own
    # argparse namespaces (e.g. examples/splash_campaign.py), which may
    # predate the --jobs flag.
    return getattr(args, "jobs", None)


def _run_table1(args) -> str:
    return render_table1()


def _run_fig2(args) -> str:
    mismatches = fig2.conformance_mismatches()
    text = fig2.render()
    if mismatches:
        text += "\nCONFORMANCE FAILURES:\n" + "\n".join(mismatches)
    else:
        text += "\n(derived tables match the published Figure 2)"
    return text


def _run_table2(args) -> str:
    return table2.render(
        table2.run(scale=args.scale, seed=args.seed, jobs=_jobs(args))
    )


def _run_table3(args) -> str:
    return table3.render(
        table3.run(scale=args.scale, seed=args.seed, jobs=_jobs(args))
    )


def _run_cost_ratio(args) -> str:
    parts = []
    for block_size in (16, 64, 256):
        rows = cost_ratio.run(
            block_size=block_size, scale=args.scale, seed=args.seed
        )
        parts.append(cost_ratio.render(rows))
    return "\n\n".join(parts)


def _run_exec_time(args) -> str:
    return exec_time.render(exec_time.run(scale=args.scale, seed=args.seed))


def _run_placement(args) -> str:
    return placement.render(placement.run(scale=args.scale, seed=args.seed))


def _run_bus(args) -> str:
    return bus.render(
        bus.run(scale=args.scale, seed=args.seed, jobs=_jobs(args))
    )


def _run_ablations(args) -> str:
    parts = [
        ablations.render(
            ablations.hysteresis_sweep(
                scale=args.scale, seed=args.seed, jobs=_jobs(args)
            ),
            "A1: hysteresis depth",
        ),
        ablations.render(
            ablations.uncached_memory(
                scale=args.scale, seed=args.seed, jobs=_jobs(args)
            ),
            "A2: remembering classification across uncached intervals "
            "(4K caches)",
        ),
        ablations.render(
            ablations.eviction_notifications(
                scale=args.scale, seed=args.seed, jobs=_jobs(args)
            ),
            "A3: eviction notifications vs silent drops (conventional)",
        ),
    ]
    return "\n\n".join(parts)


def _run_sharing(args) -> str:
    rows = []
    for app in APP_ORDER:
        trace = common.get_trace(app, seed=args.seed, scale=args.scale)
        for block_size in (16, 64, 256):
            summary = summarize_sharing(trace, block_size)
            rows.append(
                [
                    app,
                    block_size,
                    100 * summary.block_fraction(SharingPattern.MIGRATORY),
                    100 * summary.block_fraction(SharingPattern.READ_ONLY),
                    100 * summary.block_fraction(SharingPattern.PRODUCER_CONSUMER),
                    100 * summary.block_fraction(SharingPattern.PRIVATE),
                    100 * summary.block_fraction(SharingPattern.OTHER),
                ]
            )
    return format_table(
        ["app", "block", "mig %", "ro %", "p-c %", "priv %", "other %"],
        rows,
        title="Off-line sharing-pattern census (share of blocks); larger "
        "blocks hide migratory data behind false sharing",
    )


def _run_policy_space(args) -> str:
    return policy_space.render(
        policy_space.run(scale=args.scale, seed=args.seed, jobs=_jobs(args))
    )


def _run_inval_patterns(args) -> str:
    return inval_patterns.render(
        inval_patterns.run(scale=args.scale, seed=args.seed)
    )


def _run_robustness(args) -> str:
    return robustness.render(robustness.run(scale=args.scale))


def _run_write_runs(args) -> str:
    stats = {}
    for app in APP_ORDER:
        trace = common.get_trace(app, seed=args.seed, scale=args.scale)
        stats[app] = write_run_stats(trace, block_size=16)
    return render_write_runs(
        stats,
        "Write-run characterization (16-byte blocks): migratory data "
        "shows ~1 external re-read per run",
    )


def _run_overhead(args) -> str:
    return overhead_table(PAPER_POLICIES)


def _run_oracle(args) -> str:
    return oracle.render(oracle.run(scale=args.scale, seed=args.seed))


def _run_contention(args) -> str:
    directory_part = contention.render(
        contention.run(scale=args.scale, seed=args.seed)
    )
    bus_part = contention.render_bus(
        contention.run_bus(scale=args.scale, seed=args.seed)
    )
    return directory_part + "\n\n" + bus_part


def _run_topology(args) -> str:
    return topology.render(topology.run(scale=args.scale, seed=args.seed))


def _run_limited_dir(args) -> str:
    return limited_dir.render(
        limited_dir.run(scale=args.scale, seed=args.seed)
    )


def _run_prefetch(args) -> str:
    return prefetch.render(prefetch.run(scale=args.scale, seed=args.seed))


def _run_update_protocols(args) -> str:
    return update_protocols.render(
        update_protocols.run(scale=args.scale, seed=args.seed)
    )


COMMANDS = {
    "table1": _run_table1,
    "fig2": _run_fig2,
    "table2": _run_table2,
    "table3": _run_table3,
    "cost-ratio": _run_cost_ratio,
    "exec-time": _run_exec_time,
    "placement": _run_placement,
    "bus": _run_bus,
    "ablations": _run_ablations,
    "sharing": _run_sharing,
    "oracle": _run_oracle,
    "update-protocols": _run_update_protocols,
    "overhead": _run_overhead,
    "prefetch": _run_prefetch,
    "limited-dir": _run_limited_dir,
    "topology": _run_topology,
    "contention": _run_contention,
    "write-runs": _run_write_runs,
    "robustness": _run_robustness,
    "inval-patterns": _run_inval_patterns,
    "policy-space": _run_policy_space,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    add_version_argument(parser)
    parser.add_argument(
        "experiment", choices=[*COMMANDS, "all"], help="which artifact to run"
    )
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep experiments "
                        "(default: REPRO_JOBS or serial; 0 = all CPUs); "
                        "results are identical for any job count")
    parser.add_argument("--no-result-cache", action="store_true",
                        help="disable the on-disk replay result cache "
                        "for this run (same as REPRO_RESULT_CACHE=off)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="record a telemetry session into this "
                        "directory (events.jsonl + metrics.prom); "
                        "render it with repro-stats")
    args = parser.parse_args(argv)
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    if args.no_result_cache:
        # Before any experiment (and before any worker spawns, which
        # inherit the environment): every replay runs for real.
        os.environ["REPRO_RESULT_CACHE"] = "off"
    if args.telemetry_dir is not None:
        telemetry.configure(telemetry.TelemetrySession(args.telemetry_dir))

    names = list(COMMANDS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            started = time.time()
            with telemetry.span(f"experiment.{name}"):
                output = COMMANDS[name](args)
            elapsed = time.time() - started
            # Timing goes to stderr so stdout is byte-identical across
            # runs (and across --jobs settings).
            print(f"==== {name} ====")
            print(output)
            print()
            print(f"[{name}: {elapsed:.1f}s]", file=sys.stderr)
    finally:
        if resultcache.enabled():
            totals = resultcache.counts()
            print(
                f"[result cache: {totals['hits']} hits, "
                f"{totals['misses']} misses, {totals['stores']} stores]",
                file=sys.stderr,
            )
        if args.telemetry_dir is not None:
            telemetry.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
