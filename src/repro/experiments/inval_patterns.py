"""Experiment R9 — invalidation-size distributions (Weber & Gupta).

The paper's premise rests on Weber & Gupta's analysis of cache
invalidation patterns (its reference [23]): most invalidating writes
destroy very few copies, and migratory data destroys exactly one.  The
directory machine records the number of copies destroyed by every
invalidating write; this experiment tabulates that distribution per
application and shows what adaptation does to it — the adaptive
protocols specifically consume the single-invalidation events (turning
them into migrations), leaving the multi-copy invalidations of widely
shared data untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL, AdaptivePolicy
from repro.experiments import common, resultcache
from repro.system.machine import DirectoryMachine
from repro.workloads.profiles import APP_ORDER

SIZE_BUCKETS = (1, 2, 3)  # plus "4+"


@dataclass(frozen=True, slots=True)
class InvalPatternRow:
    """Invalidation-size histogram for one (app, protocol)."""

    app: str
    protocol: str
    total_invalidations: int
    by_size: dict  # size bucket (1,2,3,"4+") -> count

    def share(self, bucket) -> float:
        if self.total_invalidations == 0:
            return 0.0
        return self.by_size.get(bucket, 0) / self.total_invalidations


def _decode_row(payload: dict) -> InvalPatternRow:
    """Rebuild one row from its cached payload.

    JSON stringifies the integer histogram buckets; restore them so
    ``share(1)`` keeps finding the single-copy bucket (``"4+"`` stays a
    string on both sides).
    """
    by_size = {
        (int(bucket) if bucket.isdigit() else bucket): int(count)
        for bucket, count in payload["by_size"].items()
    }
    return InvalPatternRow(
        app=payload["app"],
        protocol=payload["protocol"],
        total_invalidations=int(payload["total_invalidations"]),
        by_size=by_size,
    )


def run(
    apps: tuple[str, ...] = APP_ORDER,
    policies: tuple[AdaptivePolicy, ...] = (CONVENTIONAL, AGGRESSIVE),
    cache_size: int | None = 256 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[InvalPatternRow]:
    """Collect invalidation-size histograms.

    Per-application row groups are served through the replay result
    cache (with a custom decoder restoring the integer histogram
    buckets JSON stringifies).
    """
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, 16, num_procs)

        def compute(app=app, trace=trace,
                    config=config) -> list[InvalPatternRow]:
            placement = common.get_placement("best_static", trace, config)
            out = []
            for policy in policies:
                machine = DirectoryMachine(config, policy, placement)
                machine.run(trace)
                by_size: dict = {}
                for size, count in machine.invalidation_sizes.items():
                    bucket = size if size in SIZE_BUCKETS else "4+"
                    by_size[bucket] = by_size.get(bucket, 0) + count
                out.append(
                    InvalPatternRow(
                        app=app,
                        protocol=policy.name,
                        total_invalidations=sum(by_size.values()),
                        by_size=by_size,
                    )
                )
            return out

        rows.extend(resultcache.memoize_rows(
            "inval_patterns",
            (trace.pack().digest(), resultcache.config_digest(config),
             "|".join(f"{policy.name}:{resultcache.policy_digest(policy)}"
                      for policy in policies)),
            InvalPatternRow, compute,
            decode_row=_decode_row,
        ))
    return rows


def render(rows: list[InvalPatternRow]) -> str:
    """Render the invalidation-pattern table."""
    headers = ["app", "protocol", "invalidations",
               "1 copy %", "2 %", "3 %", "4+ %"]
    out = [
        [
            r.app,
            r.protocol,
            r.total_invalidations,
            100 * r.share(1),
            100 * r.share(2),
            100 * r.share(3),
            100 * r.share("4+"),
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Invalidation-size distribution (Weber & Gupta patterns): "
        "adaptation consumes the single-copy invalidations",
    )
