"""Experiment S4.3 — the bus-based snooping protocols.

Section 4.3 evaluates the snooping implementation under two cost models
(unit cost per transaction; replies cost two) at 64 KByte and 1 MByte
caches.  Headline numbers to reproduce in shape:

* Water and MP3D save over 40 % under model 1 at >= 64 K caches;
  Pthor saves 7-10 %.
* Under model 2 the savings drop to 25-30 % (Water/MP3D) and 3.9-5 %
  (Pthor), because the adaptive protocol's invalidations need replies.
* The programs that do best also do best with more aggressive variants;
  the always-migrate baseline wins only on heavily migratory programs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments import common
from repro.parallel import effective_workers, parallel_map
from repro.snooping.costmodels import model1_cost, model2_cost
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.workloads.profiles import APP_ORDER

#: Cache sizes Section 4.3 quotes.
BUS_CACHE_SIZES = (64 * 1024, 1024 * 1024)


@dataclass(frozen=True, slots=True)
class BusRow:
    """Bus cost comparison for one (app, cache size)."""

    app: str
    cache_size: int
    mesi_model1: int
    adaptive_model1: int
    model1_saving_pct: float
    mesi_model2: int
    adaptive_model2: int
    model2_saving_pct: float
    always_migrate_model1: int


def _row(task: tuple) -> BusRow:
    """One (app, cache size) cell: all three snooping protocols."""
    app, cache_size, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    mesi = MesiProtocol()
    adaptive = AdaptiveSnoopingProtocol()
    always = AlwaysMigrateProtocol()
    mesi_stats = common.run_bus(trace, mesi, cache_size,
                                num_procs=num_procs)
    adapt_stats = common.run_bus(trace, adaptive, cache_size,
                                 num_procs=num_procs)
    always_stats = common.run_bus(trace, always, cache_size,
                                  num_procs=num_procs)
    m1_base = model1_cost(mesi_stats)
    m1_adapt = model1_cost(adapt_stats)
    m2_base = model2_cost(mesi_stats, mesi)
    m2_adapt = model2_cost(adapt_stats, adaptive)
    return BusRow(
        app=app,
        cache_size=cache_size,
        mesi_model1=m1_base,
        adaptive_model1=m1_adapt,
        model1_saving_pct=(
            100.0 * (m1_base - m1_adapt) / m1_base if m1_base else 0.0
        ),
        mesi_model2=m2_base,
        adaptive_model2=m2_adapt,
        model2_saving_pct=(
            100.0 * (m2_base - m2_adapt) / m2_base if m2_base else 0.0
        ),
        always_migrate_model1=model1_cost(always_stats),
    )


def run(
    apps: tuple[str, ...] = APP_ORDER,
    cache_sizes: tuple[int, ...] = BUS_CACHE_SIZES,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[BusRow]:
    """Run all apps on the bus machine with every protocol.

    ``jobs`` fans the (app, cache size) cells across worker processes;
    the result is identical for every job count.
    """
    num_tasks = len(apps) * len(cache_sizes)
    handles: dict = {}
    if effective_workers(jobs, num_tasks) > 1:
        handles = common.publish_traces(tuple(apps), num_procs, seed, scale)
    tasks = [
        (app, cache_size, scale, seed, num_procs, handles.get(app))
        for app in apps
        for cache_size in cache_sizes
    ]
    return parallel_map(_row, tasks, jobs=jobs)


def render(rows: list[BusRow]) -> str:
    """Render the bus-protocol comparison."""
    headers = [
        "app",
        "cache",
        "mesi m1",
        "adapt m1",
        "m1 %",
        "mesi m2",
        "adapt m2",
        "m2 %",
        "always-mig m1",
    ]
    out = [
        [
            r.app,
            f"{r.cache_size // 1024}K",
            r.mesi_model1,
            r.adaptive_model1,
            r.model1_saving_pct,
            r.mesi_model2,
            r.adaptive_model2,
            r.model2_saving_pct,
            r.always_migrate_model1,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Section 4.3: bus transaction costs (snooping protocols)",
    )
