"""Shared plumbing for the experiment harness.

Experiments share trace construction (one trace per application per
configuration, cached) and the machine-running helpers.  Every experiment
function takes a ``scale`` knob so the pytest benchmarks can run quick
versions while ``repro-experiments`` runs the full calibrated sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.common.config import CacheConfig, MachineConfig
from repro.common.stats import BusStats, MessageStats
from repro.directory.policy import AdaptivePolicy
from repro.experiments import resultcache
from repro.protocols import registry as families
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import SnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.system.placement import PagePlacement, make_placement
from repro.telemetry import runtime as telemetry
from repro.trace import diskcache, shm
from repro.trace.core import Trace
from repro.workloads.profiles import build_app

#: Default processor count for all experiments (the paper simulates 16).
NUM_PROCS = 16

_trace_cache: dict[tuple, Trace] = {}
#: Placements keyed by the trace *object* (not ``id(trace)``: ids are
#: recycled once a trace is garbage collected, which could silently hand
#: a new trace the stale placement of a dead one).  The weak keying also
#: lets dropped traces release their placements.
_placement_cache: WeakKeyDictionary = WeakKeyDictionary()


def get_trace(
    app: str,
    num_procs: int = NUM_PROCS,
    seed: int = 0,
    scale: float = 1.0,
    handle: shm.TraceHandle | None = None,
) -> Trace:
    """Build (or fetch from cache) one application trace.

    Traces are memoized in-process and persisted to the on-disk packed
    trace cache (:mod:`repro.trace.diskcache`), so repeated runs — and
    the worker processes of a ``--jobs N`` sweep — skip the synthesis
    pass entirely.  When the parent published the trace to the
    shared-memory arena (:func:`publish_traces`), workers pass the
    ``handle`` and attach zero-copy instead of touching the disk cache
    at all; a dead or unusable segment silently falls back.
    """
    key = (app, num_procs, seed, scale)
    trace = _trace_cache.get(key)
    if trace is None:
        if handle is not None:
            try:
                trace = shm.attach(handle)
            except (OSError, ValueError):
                trace = None
        if trace is None:
            trace = diskcache.load_or_build(
                app, num_procs, seed, scale, build_app
            )
        _trace_cache[key] = trace
    return trace


def publish_traces(
    apps: tuple[str, ...],
    num_procs: int = NUM_PROCS,
    seed: int = 0,
    scale: float = 1.0,
) -> dict[str, shm.TraceHandle | None]:
    """Publish each app's trace to the shared-memory arena.

    Called by the sweep experiments before fanning cells out, so every
    worker attaches one shared copy of each trace instead of loading its
    own.  Returns one handle per app; ``None`` entries mean publication
    failed there and workers should use their normal trace path.
    """
    arena = shm.default_arena()
    handles: dict[str, shm.TraceHandle | None] = {}
    for app in apps:
        trace = get_trace(app, num_procs, seed, scale)
        handles[app] = arena.publish(
            (app, num_procs, seed, scale), trace.pack()
        )
    return handles


def get_placement(
    kind: str, trace: Trace, config: MachineConfig
) -> PagePlacement:
    """Build (or fetch) the placement policy for one trace/config pair.

    Static placements depend only on the trace, the page size, and the
    node count, so they are shared across cache-size and protocol sweeps.
    """
    per_trace = _placement_cache.get(trace)
    if per_trace is None:
        per_trace = {}
        _placement_cache[trace] = per_trace
    key = (kind, config.page_size, config.num_procs)
    placement = per_trace.get(key)
    if placement is None:
        placement = make_placement(kind, config, trace)
        per_trace[key] = placement
    return placement


def clear_caches() -> None:
    """Drop all cached traces and placements (tests use this)."""
    _trace_cache.clear()
    _placement_cache.clear()


def _directory_realization(policy: AdaptivePolicy):
    """``(machine_cls, family_label)`` for a policy.

    Registered families resolve through :mod:`repro.protocols.registry`
    (a family that ships its own machine gets it here, with no edits in
    any experiment); ad-hoc ablation policies run on the stock machine.
    """
    fam = families.family_of_policy(policy)
    if fam is None:
        return DirectoryMachine, "-"
    return fam.machine_class(), fam.name


def _bus_family_label(protocol: SnoopingProtocol) -> str:
    fam = families.family_of_protocol(protocol)
    return fam.name if fam is not None else "-"


def directory_config(
    cache_size: int | None,
    block_size: int = 16,
    num_procs: int = NUM_PROCS,
    eviction_notification: bool = True,
) -> MachineConfig:
    """The paper's simplified architectural model at one design point."""
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=cache_size, block_size=block_size),
        eviction_notification=eviction_notification,
    )


def run_directory(
    trace: Trace,
    policy: AdaptivePolicy,
    cache_size: int | None,
    block_size: int = 16,
    placement_kind: str = "best_static",
    num_procs: int = NUM_PROCS,
    eviction_notification: bool = True,
) -> MessageStats:
    """Run one directory-machine simulation and return its message stats.

    Results are served through the replay result cache
    (:mod:`repro.experiments.resultcache`) keyed by the trace bytes, the
    machine configuration, and the policy's behavioural fields — except
    when the active telemetry session instruments machines, whose whole
    point is observing the replay this cache would skip.
    """
    config = directory_config(
        cache_size, block_size, num_procs, eviction_notification
    )

    machine_cls, family_label = _directory_realization(policy)

    def replay() -> MessageStats:
        placement = get_placement(placement_kind, trace, config)
        machine = machine_cls(config, policy, placement)
        # Zero-cost when no telemetry session is active (the usual
        # case); under one, the machine gets a recorder and the replay
        # is timed.
        telemetry.attach(machine)
        with telemetry.span("replay.directory", app=trace.name,
                            policy=policy.name,
                            repro_protocol_family=family_label):
            return machine.run(trace)

    if telemetry.machine_instrumentation_active():
        return replay()
    return resultcache.memoize(
        "directory",
        (trace.pack().digest(), resultcache.config_digest(config),
         resultcache.policy_digest(policy), placement_kind),
        resultcache.encode_message_stats,
        resultcache.decode_message_stats,
        replay,
    )


def run_bus(
    trace: Trace,
    protocol: SnoopingProtocol,
    cache_size: int | None,
    block_size: int = 16,
    num_procs: int = NUM_PROCS,
) -> BusStats:
    """Run one bus-machine simulation and return its transaction stats.

    Cached like :func:`run_directory`, with the protocol digest standing
    in for the policy digest.
    """
    config = MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=cache_size, block_size=block_size),
    )

    def replay() -> BusStats:
        machine = BusMachine(config, protocol)
        telemetry.attach(machine)
        with telemetry.span("replay.bus", app=trace.name,
                            protocol=protocol.name,
                            repro_protocol_family=_bus_family_label(protocol)):
            return machine.run(trace)

    if telemetry.machine_instrumentation_active():
        return replay()
    return resultcache.memoize(
        "bus",
        (trace.pack().digest(), resultcache.config_digest(config),
         resultcache.protocol_digest(protocol)),
        resultcache.encode_bus_stats,
        resultcache.decode_bus_stats,
        replay,
    )


def timing_profile(
    trace: Trace,
    policy: AdaptivePolicy,
    cache_size: int | None,
    block_size: int = 16,
    placement_kind: str = "round_robin",
    num_procs: int = NUM_PROCS,
):
    """One cached timing replay, priceable under any :class:`TimingParams`.

    The execution-time experiments (exec-time, topology, prefetch
    baselines) replay the same ``(trace, config, policy)`` design points
    under varying latency parameters.  The replay itself is parameter-
    independent, so it is run once, profiled, and cached; callers price
    the returned profile with :func:`repro.timing.sim.cost`.
    """
    from repro.timing.sim import TimingSimulator

    config = directory_config(cache_size, block_size, num_procs)

    def replay():
        placement = get_placement(placement_kind, trace, config)
        machine = DirectoryMachine(config, policy, placement)
        telemetry.attach(machine)
        with telemetry.span("replay.timing", app=trace.name,
                            policy=policy.name):
            return TimingSimulator(machine).profile(trace)

    return resultcache.memoize(
        "timing_profile",
        (trace.pack().digest(), resultcache.config_digest(config),
         resultcache.policy_digest(policy), placement_kind),
        resultcache.encode_timing_profile,
        resultcache.decode_timing_profile,
        replay,
    )


@dataclass(frozen=True, slots=True)
class ProtocolCell:
    """One (protocol x configuration) table cell, paper-style."""

    short: int
    data: int
    reduction_pct: float

    @property
    def total(self) -> int:
        return self.short + self.data


def make_cell(stats: MessageStats, baseline_total: int) -> ProtocolCell:
    """Build a table cell with the percentage reduction vs the baseline."""
    reduction = 0.0
    if baseline_total:
        reduction = 100.0 * (baseline_total - stats.total) / baseline_total
    return ProtocolCell(stats.short, stats.data, reduction)
