"""Shared plumbing for the experiment harness.

Experiments share trace construction (one trace per application per
configuration, cached) and the machine-running helpers.  Every experiment
function takes a ``scale`` knob so the pytest benchmarks can run quick
versions while ``repro-experiments`` runs the full calibrated sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.common.config import CacheConfig, MachineConfig
from repro.common.stats import BusStats, MessageStats
from repro.directory.policy import AdaptivePolicy
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import SnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.system.placement import PagePlacement, make_placement
from repro.telemetry import runtime as telemetry
from repro.trace import diskcache
from repro.trace.core import Trace
from repro.workloads.profiles import build_app

#: Default processor count for all experiments (the paper simulates 16).
NUM_PROCS = 16

_trace_cache: dict[tuple, Trace] = {}
#: Placements keyed by the trace *object* (not ``id(trace)``: ids are
#: recycled once a trace is garbage collected, which could silently hand
#: a new trace the stale placement of a dead one).  The weak keying also
#: lets dropped traces release their placements.
_placement_cache: WeakKeyDictionary = WeakKeyDictionary()


def get_trace(
    app: str, num_procs: int = NUM_PROCS, seed: int = 0, scale: float = 1.0
) -> Trace:
    """Build (or fetch from cache) one application trace.

    Traces are memoized in-process and persisted to the on-disk packed
    trace cache (:mod:`repro.trace.diskcache`), so repeated runs — and
    the worker processes of a ``--jobs N`` sweep — skip the synthesis
    pass entirely.
    """
    key = (app, num_procs, seed, scale)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = diskcache.load_or_build(app, num_procs, seed, scale, build_app)
        _trace_cache[key] = trace
    return trace


def get_placement(
    kind: str, trace: Trace, config: MachineConfig
) -> PagePlacement:
    """Build (or fetch) the placement policy for one trace/config pair.

    Static placements depend only on the trace, the page size, and the
    node count, so they are shared across cache-size and protocol sweeps.
    """
    per_trace = _placement_cache.get(trace)
    if per_trace is None:
        per_trace = {}
        _placement_cache[trace] = per_trace
    key = (kind, config.page_size, config.num_procs)
    placement = per_trace.get(key)
    if placement is None:
        placement = make_placement(kind, config, trace)
        per_trace[key] = placement
    return placement


def clear_caches() -> None:
    """Drop all cached traces and placements (tests use this)."""
    _trace_cache.clear()
    _placement_cache.clear()


def directory_config(
    cache_size: int | None,
    block_size: int = 16,
    num_procs: int = NUM_PROCS,
    eviction_notification: bool = True,
) -> MachineConfig:
    """The paper's simplified architectural model at one design point."""
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=cache_size, block_size=block_size),
        eviction_notification=eviction_notification,
    )


def run_directory(
    trace: Trace,
    policy: AdaptivePolicy,
    cache_size: int | None,
    block_size: int = 16,
    placement_kind: str = "best_static",
    num_procs: int = NUM_PROCS,
    eviction_notification: bool = True,
) -> MessageStats:
    """Run one directory-machine simulation and return its message stats."""
    config = directory_config(
        cache_size, block_size, num_procs, eviction_notification
    )
    placement = get_placement(placement_kind, trace, config)
    machine = DirectoryMachine(config, policy, placement)
    # Zero-cost when no telemetry session is active (the usual case);
    # under one, the machine gets a recorder and the replay is timed.
    telemetry.attach(machine)
    with telemetry.span("replay.directory", app=trace.name,
                        policy=policy.name):
        return machine.run(trace)


def run_bus(
    trace: Trace,
    protocol: SnoopingProtocol,
    cache_size: int | None,
    block_size: int = 16,
    num_procs: int = NUM_PROCS,
) -> BusStats:
    """Run one bus-machine simulation and return its transaction stats."""
    config = MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=cache_size, block_size=block_size),
    )
    machine = BusMachine(config, protocol)
    telemetry.attach(machine)
    with telemetry.span("replay.bus", app=trace.name,
                        protocol=protocol.name):
        return machine.run(trace)


@dataclass(frozen=True, slots=True)
class ProtocolCell:
    """One (protocol x configuration) table cell, paper-style."""

    short: int
    data: int
    reduction_pct: float

    @property
    def total(self) -> int:
        return self.short + self.data


def make_cell(stats: MessageStats, baseline_total: int) -> ProtocolCell:
    """Build a table cell with the percentage reduction vs the baseline."""
    reduction = 0.0
    if baseline_total:
        reduction = 100.0 * (baseline_total - stats.total) / baseline_total
    return ProtocolCell(stats.short, stats.data, reduction)
