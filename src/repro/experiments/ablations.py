"""Ablation experiments for the design choices Section 2 identifies.

The paper's protocol family varies along three axes (hysteresis depth,
initial classification, memory across uncached intervals); its conclusions
claim that for small blocks "there is no advantage in being conservative".
These ablations quantify each axis independently, beyond the three named
protocols:

* A1 — hysteresis sweep: thresholds 1..4 plus conventional.
* A2 — remember vs forget classification across uncached intervals, at a
  small cache size where blocks cycle out of the cache (the case the
  paper's "write hit on a clean, exclusively-held block" rule exists for).
* A3 — eviction notifications on vs off (the copy-set accuracy trade the
  methodology section discusses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import CONVENTIONAL, AdaptivePolicy
from repro.experiments import common
from repro.parallel import effective_workers, parallel_map


def _handles(apps, jobs, scale, seed, num_procs) -> dict:
    """Shared-trace handles when the sweep actually goes parallel."""
    if effective_workers(jobs, len(apps)) > 1:
        return common.publish_traces(tuple(apps), num_procs, seed, scale)
    return {}


@dataclass(frozen=True, slots=True)
class AblationRow:
    """Message totals for one ablation design point."""

    app: str
    variant: str
    total: int
    reduction_pct: float


def _reduction(base: int, total: int) -> float:
    return 100.0 * (base - total) / base if base else 0.0


def _variant_rows(task: tuple) -> list[AblationRow]:
    """One app's conventional baseline plus a list of policy variants."""
    app, policies, cache_size, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    base = common.run_directory(
        trace, CONVENTIONAL, cache_size, num_procs=num_procs
    ).total
    rows = [AblationRow(app, "conventional", base, 0.0)]
    for policy in policies:
        total = common.run_directory(
            trace, policy, cache_size, num_procs=num_procs
        ).total
        rows.append(
            AblationRow(app, policy.name, total, _reduction(base, total))
        )
    return rows


def hysteresis_sweep(
    apps: tuple[str, ...] = ("mp3d", "water", "pthor"),
    thresholds: tuple[int, ...] = (1, 2, 3, 4),
    cache_size: int | None = 256 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[AblationRow]:
    """A1: how quickly adaptation pays off as hysteresis deepens."""
    policies = tuple(
        AdaptivePolicy(f"threshold-{threshold}", migratory_threshold=threshold)
        for threshold in thresholds
    )
    handles = _handles(apps, jobs, scale, seed, num_procs)
    tasks = [
        (app, policies, cache_size, scale, seed, num_procs,
         handles.get(app))
        for app in apps
    ]
    per_app = parallel_map(_variant_rows, tasks, jobs=jobs)
    return [row for rows in per_app for row in rows]


def uncached_memory(
    apps: tuple[str, ...] = ("mp3d", "cholesky"),
    cache_size: int = 4 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[AblationRow]:
    """A2: value of remembering classifications while uncached.

    Uses a small cache so migratory blocks are regularly evicted; the
    remembering variant keeps its head start on reload.
    """
    policies = (
        AdaptivePolicy("remember", migratory_threshold=1,
                       remember_uncached=True),
        AdaptivePolicy("forget", migratory_threshold=1,
                       remember_uncached=False),
    )
    handles = _handles(apps, jobs, scale, seed, num_procs)
    tasks = [
        (app, policies, cache_size, scale, seed, num_procs,
         handles.get(app))
        for app in apps
    ]
    per_app = parallel_map(_variant_rows, tasks, jobs=jobs)
    return [row for rows in per_app for row in rows]


def _notification_rows(task: tuple) -> list[AblationRow]:
    """One app's notify-vs-silent-drop pair."""
    app, cache_size, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    rows = []
    for notify in (True, False):
        variant = "notify" if notify else "silent-drop"
        total = common.run_directory(
            trace,
            CONVENTIONAL,
            cache_size,
            num_procs=num_procs,
            eviction_notification=notify,
        ).total
        rows.append(AblationRow(app, variant, total, 0.0))
    return rows


def eviction_notifications(
    apps: tuple[str, ...] = ("mp3d", "locusroute"),
    cache_size: int = 4 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[AblationRow]:
    """A3: exact copy sets (notify on clean drop) vs silent drops."""
    handles = _handles(apps, jobs, scale, seed, num_procs)
    tasks = [
        (app, cache_size, scale, seed, num_procs, handles.get(app))
        for app in apps
    ]
    per_app = parallel_map(_notification_rows, tasks, jobs=jobs)
    return [row for rows in per_app for row in rows]


def render(rows: list[AblationRow], title: str) -> str:
    """Render any ablation result list."""
    headers = ["app", "variant", "total msgs", "reduction %"]
    out = [[r.app, r.variant, r.total, r.reduction_pct] for r in rows]
    return format_table(headers, out, title=title)
