"""Experiment S4.1 — in-text cost-ratio analysis.

Section 4.1 re-prices the Table 2/3 message counts under models where
data-carrying messages cost 2x or 4x a short message, and a byte-
proportional model (one unit per message plus one per 16 bytes of data).
The paper's observations to reproduce:

* savings shrink as data messages get more expensive (for MP3D at 1 MB
  caches: 48 % -> 38 % -> 27 % under 1:1 / 2:1 / 4:1; LocusRoute:
  14 % -> 10 % -> 6.4 %);
* under the byte model, adaptive advantages approach zero for 256-byte
  blocks, and LocusRoute's aggressive protocol shows an outright penalty
  while Cholesky keeps a ~8 % saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.costs import CostModel, PAPER_COST_MODELS, percent_saving
from repro.analysis.report import format_table
from repro.common.stats import MessageStats
from repro.directory.policy import PAPER_POLICIES, AdaptivePolicy
from repro.experiments import common
from repro.workloads.profiles import APP_ORDER


@dataclass(frozen=True, slots=True)
class CostRatioRow:
    """Savings for one (app, policy) under every cost model."""

    app: str
    policy: str
    block_size: int
    savings_by_model: dict  # model name -> percent


def run(
    apps: tuple[str, ...] = APP_ORDER,
    policies: tuple[AdaptivePolicy, ...] = PAPER_POLICIES[1:],
    cache_size: int | None = 1024 * 1024,
    block_size: int = 16,
    models: tuple[CostModel, ...] = PAPER_COST_MODELS,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[CostRatioRow]:
    """Price one design point under every cost model."""
    rows = []
    conventional = PAPER_POLICIES[0]
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        base = common.run_directory(
            trace, conventional, cache_size, block_size, num_procs=num_procs
        )
        for policy in policies:
            stats = common.run_directory(
                trace, policy, cache_size, block_size, num_procs=num_procs
            )
            savings = {
                model.name: percent_saving(base, stats, block_size, model)
                for model in models
            }
            rows.append(CostRatioRow(app, policy.name, block_size, savings))
    return rows


def render(rows: list[CostRatioRow]) -> str:
    """Render the cost-ratio analysis table."""
    if not rows:
        return "(no rows)"
    model_names = list(rows[0].savings_by_model)
    headers = ["app", "protocol"] + [f"{m} %" for m in model_names]
    out = [
        [row.app, row.policy]
        + [row.savings_by_model[m] for m in model_names]
        for row in rows
    ]
    return format_table(
        headers,
        out,
        title=f"Section 4.1 cost-ratio analysis "
        f"(block size {rows[0].block_size} bytes)",
    )
