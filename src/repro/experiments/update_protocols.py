"""Experiment R2 — write-invalidate vs write-update vs the Alpha hybrid.

Makes two of the paper's narrative claims measurable on the bus machine:

* the introduction's: write-update "entails interprocessor communication
  on every write operation to shared data", so write-invalidate
  dominates on migratory data;
* the related-work section's: the DEC Alpha systems' hybrid
  update/invalidate protocol "manages migratory data in a very
  inefficient way" — up to three inter-cache operations per migration
  (modelled by competitive update with threshold 1).

The sweep also carries the adaptive families of
:mod:`repro.protocols` — the write-run hybrid (update until a same-
writer run, invalidate until shared reads return) and the lease-based
self-invalidation protocol — so the paper columns and the extension
columns price out side by side on identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments import common
from repro.protocols import registry as families
from repro.snooping.protocols import AdaptiveSnoopingProtocol, MesiProtocol
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.workloads.profiles import APP_ORDER


@dataclass(frozen=True, slots=True)
class UpdateRow:
    """Bus transactions for one application under each protocol."""

    app: str
    mesi: int
    adaptive: int
    write_update: int
    hybrid: int
    adaptive_hybrid: int
    self_invalidation: int


def run(
    apps: tuple[str, ...] = APP_ORDER,
    cache_size: int | None = 256 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[UpdateRow]:
    """Run all apps on the bus under the six protocol families."""
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        totals = {}
        for key, protocol in (
            ("mesi", MesiProtocol()),
            ("adaptive", AdaptiveSnoopingProtocol()),
            ("write_update", WriteUpdateProtocol()),
            ("hybrid", CompetitiveUpdateProtocol(threshold=1)),
            ("adaptive_hybrid",
             families.bus_protocol("hybrid-update-invalidate")),
            ("self_invalidation",
             families.bus_protocol("self-invalidation")),
        ):
            stats = common.run_bus(trace, protocol, cache_size,
                                   num_procs=num_procs)
            totals[key] = stats.total
        rows.append(UpdateRow(app, totals["mesi"], totals["adaptive"],
                              totals["write_update"], totals["hybrid"],
                              totals["adaptive_hybrid"],
                              totals["self_invalidation"]))
    return rows


def render(rows: list[UpdateRow]) -> str:
    """Render the protocol-family comparison."""
    headers = ["app", "mesi", "adaptive", "write-update", "hybrid(k=1)",
               "hybrid(run)", "self-inval"]
    out = [
        [r.app, r.mesi, r.adaptive, r.write_update, r.hybrid,
         r.adaptive_hybrid, r.self_invalidation]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Write-invalidate vs write-update vs Alpha-style hybrid "
        "(bus transactions)",
    )
