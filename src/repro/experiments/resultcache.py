"""Content-addressed on-disk cache for replay results.

The sibling of :mod:`repro.trace.diskcache`, one level up the stack:
that module memoises *traces* (the input of a replay), this one memoises
*results* — the :class:`~repro.common.stats.MessageStats` /
:class:`~repro.common.stats.BusStats` of one machine replay, or a whole
experiment's row list.  The paper's tables re-simulate identical design
points constantly (``table2`` after ``table3`` shares every infinite-
cache conventional replay; a re-run of ``repro-experiments all`` shares
*everything*), and a replay costs seconds while a cache hit costs a JSON
load.

Keys are content-addressed, never positional::

    sha256(version | engine tag | kind | trace digest | config digest
           | policy/protocol digest | extras)

* **trace digest** — :meth:`repro.trace.packed.PackedTrace.digest`,
  a hash of the raw column bytes.  Regenerated, shared-memory attached
  and disk-cached copies of the same trace all hash identically; a
  changed workload generator changes the bytes and therefore the key.
* **config digest** — the frozen-dataclass ``repr`` of the
  :class:`~repro.common.config.MachineConfig` (deterministic, total).
* **policy digest** — the *behavioural* fields of an
  :class:`~repro.directory.policy.AdaptivePolicy` only; the display
  name is excluded, so the ablations' ``threshold-1`` and the paper's
  ``basic`` share one entry.
* **engine tag** — :data:`ENGINE_VERSION` plus a hash over the
  simulator source files, so *any* engine edit invalidates every entry
  automatically (over-invalidation is safe; staleness is not).

Layout and knobs mirror the trace cache:

* Directory: ``$REPRO_RESULT_CACHE`` if set, else
  ``$XDG_CACHE_HOME/repro/results``, else ``~/.cache/repro/results``.
* ``REPRO_RESULT_CACHE=off`` (or ``0``) disables it;
  ``repro-experiments --no-result-cache`` does the same per run.
* Entries are single JSON files written via temp-file + atomic rename;
  a corrupted or truncated entry is a **miss, never an error**.

A small in-memory layer fronts the disk so a sweep that revisits a key
within one process never re-reads the file.  Hit/miss/store totals are
kept in module counters (:func:`counts`) and, when a telemetry session
is active, mirrored to the ``repro_result_cache_requests_total`` metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from collections import Counter, OrderedDict
from pathlib import Path
from typing import Callable, TypeVar

from repro.common.stats import BusStats, MessageStats
from repro.telemetry import runtime as telemetry

T = TypeVar("T")

#: Bump manually on semantic changes the source hash cannot see
#: (e.g. a cost-model reinterpretation living in data files).
ENGINE_VERSION = 1

#: Telemetry counter mirroring the module counters, labelled by
#: ``kind`` (directory/bus/row kind) and ``status`` (hit/miss).
REQUESTS_METRIC = "repro_result_cache_requests_total"

_DISABLE_VALUES = {"off", "0", "no", "false", "disable", "disabled"}

#: Subpackages whose sources define replay behaviour; their bytes feed
#: the engine tag.  Telemetry and conformance are deliberately absent —
#: they observe replays, they do not change results.
_ENGINE_PACKAGES = (
    "analysis", "cache", "common", "directory", "experiments",
    "interconnect", "kernels", "protocols", "snooping", "system",
    "timing", "trace", "workloads",
)

_engine_tag: str | None = None


class MemoryLru:
    """A bounded in-memory cache tier: key -> encoded payload.

    This is the *tier interface* the cluster router stacks on top of
    the shards' shared on-disk store: ``get``/``put``/``__len__``/
    ``clear`` plus hit/miss counters.  ``capacity=None`` means
    unbounded (the module's own in-process front below); a bounded tier
    evicts least-recently-used entries, and every ``get`` hit refreshes
    recency, so a zipf head pins itself resident while the tail cycles
    through.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions")

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("MemoryLru capacity must be >= 1 or None")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str):
        """The payload under ``key``, or None (counts the lookup)."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: str, payload) -> None:
        """Record ``payload``; evicts the LRU entry past capacity."""
        self._entries[key] = payload
        self._entries.move_to_end(key)
        if self.capacity is not None and len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot (``/v1/cluster/status`` renders this)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: In-memory front: key -> encoded payload (decoded fresh per fetch so
#: callers can never mutate a cached object in place).  Unbounded: one
#: process's working set of distinct replays is small; bounded tiers
#: (the cluster router's) construct their own :class:`MemoryLru`.
_memory = MemoryLru()

_counts = {"hits": 0, "misses": 0, "stores": 0}


# ----------------------------------------------------------------------
# Location and keys
# ----------------------------------------------------------------------

def enabled() -> bool:
    """Whether the result cache is active at all."""
    return cache_dir() is not None


def cache_dir() -> Path | None:
    """The active cache directory, or None when the cache is disabled."""
    configured = os.environ.get("REPRO_RESULT_CACHE")
    if configured is not None:
        if configured.strip().lower() in _DISABLE_VALUES:
            return None
        return Path(configured)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "results"


def engine_tag() -> str:
    """Version tag hashing the simulator sources (memoised).

    Any edit under the engine subpackages produces a new tag, so stale
    results can never be served across a code change.
    """
    global _engine_tag
    if _engine_tag is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        h.update(f"engine-v{ENGINE_VERSION}|".encode("ascii"))
        for package in _ENGINE_PACKAGES:
            for source in sorted((root / package).glob("**/*.py")):
                h.update(str(source.relative_to(root)).encode())
                try:
                    h.update(source.read_bytes())
                except OSError:  # pragma: no cover - racing deletes
                    pass
        _engine_tag = h.hexdigest()[:16]
    return _engine_tag


def config_digest(config) -> str:
    """Digest of a frozen config dataclass (``MachineConfig`` etc.)."""
    return repr(config)


def _policy_family_digest(policy) -> str:
    """The machine-realization component of a policy's cache key.

    Policies whose registered family ships its own directory machine
    (:mod:`repro.protocols.registry`) replay through *that* machine, so
    the family's behavioural digest must be part of the key; every
    stock-machine policy — registered or ad-hoc ablation — shares the
    ``stock`` marker so name-only aliases keep sharing entries.
    """
    from repro.protocols import registry as families

    fam = families.family_of_policy(policy)
    if fam is not None and fam.machine is not None:
        return fam.behavior_digest()
    return "stock"


def policy_digest(policy) -> str:
    """Behavioural digest of an :class:`AdaptivePolicy`.

    The display ``name`` is excluded: it labels table columns but never
    reaches the protocol engine, so e.g. the hysteresis ablation's
    ``threshold-1`` point shares its cache entry with ``basic``.

    The compiled kernel table digest (:mod:`repro.kernels.tables`) is
    folded in: replays may run on the table-driven kernel, so the key
    must change whenever the *compiled* behaviour changes, even if a
    code edit slipped past the engine tag.  The family digest is folded
    in for the same reason: a policy served by a protocol family's own
    machine must never share entries with a stock replay of the same
    policy fields.
    """
    from repro.kernels.tables import dir_table_digest

    return (
        f"policy|{policy.migratory_threshold}|{policy.initial_migratory}"
        f"|{policy.remember_uncached}|{policy.demote_on_migratory_write_miss}"
        f"|ktable:{dir_table_digest(policy)}"
        f"|family:{_policy_family_digest(policy)}"
    )


def protocol_digest(protocol) -> str:
    """Digest of a snooping protocol instance.

    Snooping protocols encode their constructor parameters in ``name``
    (``competitive-update(4)``), so class + name + reply/update flags
    pins the behaviour.  The compiled kernel table digest is folded in
    for the same reason as in :func:`policy_digest` (``"uncompiled"``
    for protocols outside the kernel envelope), and the registered
    family's behavioural digest rides along so registry-level changes
    (fallback classification, tunable defaults) invalidate entries.
    """
    from repro.kernels.tables import snoop_table_digest
    from repro.protocols import registry as families

    fam = families.family_of_protocol(protocol)
    family_digest = fam.behavior_digest() if fam is not None else "-"
    return (
        f"protocol|{type(protocol).__qualname__}|{protocol.name}"
        f"|{getattr(protocol, 'invalidations_need_reply', None)}"
        f"|{getattr(protocol, 'updates_remote_copies', None)}"
        f"|ktable:{snoop_table_digest(protocol)}"
        f"|family:{family_digest}"
    )


def result_key(kind: str, parts: tuple) -> str:
    """The content key for one cached result."""
    spec = "|".join((f"v{ENGINE_VERSION}", engine_tag(), kind,
                     *(str(part) for part in parts)))
    return hashlib.sha256(spec.encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# Storage
# ----------------------------------------------------------------------

def _path(key: str) -> Path | None:
    directory = cache_dir()
    if directory is None:
        return None
    return directory / f"{key}.json"


def fetch(key: str):
    """The encoded payload for ``key``, or None on any kind of miss."""
    payload = _memory.get(key)
    if payload is not None:
        return payload
    path = _path(key)
    if path is None:
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        # Missing, unreadable, truncated or corrupted: all misses.
        return None
    _memory.put(key, payload)
    return payload


def store(key: str, payload) -> None:
    """Record ``payload`` under ``key`` (best-effort on disk)."""
    _memory.put(key, payload)
    path = _path(key)
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except (OSError, UnboundLocalError):
            pass


def _record(kind: str, status: str) -> None:
    _counts["hits" if status == "hit" else "misses"] += 1
    telemetry.count(REQUESTS_METRIC, "replay result-cache lookups",
                    kind=kind, status=status)


def record_lookup(kind: str, status: str) -> None:
    """Count one out-of-band cache lookup (``status``: hit/miss).

    For consumers that cannot use :func:`memoize` because the compute
    step happens elsewhere — the serving layer fetches here, coalesces
    concurrent identical requests into a single pool execution, then
    stores the worker's payload back.  Routing their counts through the
    same module counters and ``repro_result_cache_requests_total``
    metric keeps "one metric, one meaning" across batch and serving.
    """
    _record(kind, status)


def record_store() -> None:
    """Count one out-of-band :func:`store` (see :func:`record_lookup`)."""
    _counts["stores"] += 1


def memoize(
    kind: str,
    parts: tuple,
    encode: Callable[[T], object],
    decode: Callable[[object], T],
    compute: Callable[[], T],
) -> T:
    """Serve ``compute()`` through the cache.

    ``encode``/``decode`` convert the result to and from a JSON-safe
    payload; a payload that fails to decode (corruption, schema drift
    the engine tag somehow missed) is treated as a miss and recomputed.

    When the active telemetry session instruments machines, the cache
    stands aside entirely: the whole point of instrumentation is
    observing the replay a hit would skip.
    """
    if not enabled() or telemetry.machine_instrumentation_active():
        return compute()
    key = result_key(kind, parts)
    payload = fetch(key)
    if payload is not None:
        try:
            result = decode(payload)
        except Exception:
            pass  # corrupt or stale shape: fall through to recompute
        else:
            _record(kind, "hit")
            return result
    _record(kind, "miss")
    result = compute()
    store(key, encode(result))
    _counts["stores"] += 1
    return result


def counts() -> dict:
    """Snapshot of the hit/miss/store counters."""
    return dict(_counts)


def reset_counts() -> None:
    """Zero the counters (tests and benchmark harnesses)."""
    for field in _counts:
        _counts[field] = 0


def clear_memory() -> None:
    """Drop the in-memory layer (tests; disk entries survive)."""
    _memory.clear()


def clear() -> int:
    """Delete every cached result file; returns the number removed."""
    _memory.clear()
    directory = cache_dir()
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for entry in directory.glob("*.json"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

def encode_message_stats(stats: MessageStats) -> dict:
    """JSON-safe payload for one :class:`MessageStats`."""
    return {
        "short": stats.short,
        "data": stats.data,
        "by_cause_short": dict(stats.by_cause_short),
        "by_cause_data": dict(stats.by_cause_data),
    }


def decode_message_stats(payload) -> MessageStats:
    """Rebuild a :class:`MessageStats`; raises on any malformed shape."""
    stats = MessageStats(
        short=int(payload["short"]), data=int(payload["data"])
    )
    stats.by_cause_short = Counter(
        {str(k): int(v) for k, v in payload["by_cause_short"].items()}
    )
    stats.by_cause_data = Counter(
        {str(k): int(v) for k, v in payload["by_cause_data"].items()}
    )
    return stats


def encode_bus_stats(stats: BusStats) -> dict:
    """JSON-safe payload for one :class:`BusStats`."""
    return {
        "read_miss": stats.read_miss,
        "write_miss": stats.write_miss,
        "invalidation": stats.invalidation,
        "writeback": stats.writeback,
        "update": stats.update,
        "by_kind": dict(stats.by_kind),
    }


def decode_bus_stats(payload) -> BusStats:
    """Rebuild a :class:`BusStats`; raises on any malformed shape."""
    stats = BusStats(
        read_miss=int(payload["read_miss"]),
        write_miss=int(payload["write_miss"]),
        invalidation=int(payload["invalidation"]),
        writeback=int(payload["writeback"]),
        update=int(payload["update"]),
    )
    stats.by_kind = Counter(
        {str(k): int(v) for k, v in payload["by_kind"].items()}
    )
    return stats


def encode_timing_profile(profile) -> dict:
    """JSON-safe payload for one :class:`~repro.timing.sim.TimingProfile`."""
    return {
        "num_procs": profile.num_procs,
        "total_references": profile.total_references,
        "refs_per_proc": list(profile.refs_per_proc),
        "hits_per_proc": list(profile.hits_per_proc),
        "miss_msgs_per_proc": [dict(h) for h in profile.miss_msgs_per_proc],
        "read_miss_msgs": dict(profile.read_miss_msgs),
    }


def decode_timing_profile(payload):
    """Rebuild a :class:`TimingProfile`; raises on any malformed shape.

    JSON stringifies the integer message-count keys of the histograms;
    they are restored to ints here so :func:`repro.timing.sim.cost`
    prices a cached profile exactly like a fresh one.
    """
    from repro.timing.sim import TimingProfile

    return TimingProfile(
        num_procs=int(payload["num_procs"]),
        total_references=int(payload["total_references"]),
        refs_per_proc=[int(n) for n in payload["refs_per_proc"]],
        hits_per_proc=[int(n) for n in payload["hits_per_proc"]],
        miss_msgs_per_proc=[
            {int(k): int(v) for k, v in hist.items()}
            for hist in payload["miss_msgs_per_proc"]
        ],
        read_miss_msgs={
            int(k): int(v) for k, v in payload["read_miss_msgs"].items()
        },
    )


def memoize_rows(
    kind: str,
    parts: tuple,
    row_type: type,
    compute: Callable[[], list],
    decode_row: Callable[[dict], object] | None = None,
) -> list:
    """Cache a list of frozen dataclass rows (one experiment's output).

    Rows round-trip through ``dataclasses.asdict``; ints and floats are
    exact under JSON, so rendered tables are byte-identical whether the
    rows were computed or cached.  ``decode_row`` overrides the default
    ``row_type(**payload)`` for rows with non-trivial field types.
    """
    if decode_row is None:
        def decode_row(payload: dict):
            return row_type(**payload)

    def decode(payload) -> list:
        return [decode_row(entry) for entry in payload]

    def encode(rows: list) -> list:
        return [dataclasses.asdict(row) for row in rows]

    return memoize(kind, parts, encode, decode, compute)
