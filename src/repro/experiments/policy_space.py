"""Experiment R10 — mapping the full policy space.

The conclusions claim a specific corner of the design space is optimal
for small blocks: "The aggressive protocol that reclassifies blocks
immediately, that initially classifies blocks as migratory, and that
remembers classifications over intervals in which data is not cached
performs better than any of the more conservative strategies."

This experiment evaluates the *entire* grid — threshold in {1, 2, 3},
initial classification in {non-migratory, migratory}, memory across
uncached intervals in {remember, forget} — so the claim becomes a
statement about a measured surface rather than three cherry-picked
points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import CONVENTIONAL, AdaptivePolicy
from repro.experiments import common
from repro.parallel import effective_workers, parallel_map


def policy_grid(
    thresholds: tuple[int, ...] = (1, 2, 3),
    initials: tuple[bool, ...] = (False, True),
    memories: tuple[bool, ...] = (True, False),
) -> list[AdaptivePolicy]:
    """Every policy point in the grid, named systematically."""
    grid = []
    for threshold in thresholds:
        for initial in initials:
            for remember in memories:
                name = (
                    f"t{threshold}"
                    f"-{'mig' if initial else 'non'}"
                    f"-{'mem' if remember else 'fgt'}"
                )
                grid.append(
                    AdaptivePolicy(
                        name,
                        migratory_threshold=threshold,
                        initial_migratory=initial,
                        remember_uncached=remember,
                    )
                )
    return grid


@dataclass(frozen=True, slots=True)
class PolicyPointRow:
    """One policy point's performance on one application."""

    app: str
    policy: str
    threshold: int
    initial_migratory: bool
    remember_uncached: bool
    total: int
    reduction_pct: float


def _app_rows(task: tuple) -> list[PolicyPointRow]:
    """The whole policy grid evaluated on one application."""
    app, cache_size, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    base = common.run_directory(
        trace, CONVENTIONAL, cache_size, num_procs=num_procs
    ).total
    rows = []
    for policy in policy_grid():
        total = common.run_directory(
            trace, policy, cache_size, num_procs=num_procs
        ).total
        rows.append(
            PolicyPointRow(
                app=app,
                policy=policy.name,
                threshold=policy.migratory_threshold,
                initial_migratory=policy.initial_migratory,
                remember_uncached=policy.remember_uncached,
                total=total,
                reduction_pct=(
                    100.0 * (base - total) / base if base else 0.0
                ),
            )
        )
    return rows


def run(
    apps: tuple[str, ...] = ("mp3d", "pthor"),
    cache_size: int | None = 16 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[PolicyPointRow]:
    """Evaluate the full grid (small caches so memory matters).

    ``jobs`` fans the applications across worker processes; the result
    is identical for every job count.
    """
    handles: dict = {}
    if effective_workers(jobs, len(apps)) > 1:
        handles = common.publish_traces(tuple(apps), num_procs, seed, scale)
    tasks = [
        (app, cache_size, scale, seed, num_procs, handles.get(app))
        for app in apps
    ]
    per_app = parallel_map(_app_rows, tasks, jobs=jobs)
    return [row for rows in per_app for row in rows]


def best_point(rows: list[PolicyPointRow], app: str) -> PolicyPointRow:
    """The winning policy point for one application."""
    candidates = [r for r in rows if r.app == app]
    return max(candidates, key=lambda r: r.reduction_pct)


def render(rows: list[PolicyPointRow]) -> str:
    """Render the policy-space map, best point last per app."""
    headers = ["app", "policy", "thr", "initial", "memory", "reduction %"]
    out = []
    for row in sorted(rows, key=lambda r: (r.app, r.reduction_pct)):
        out.append(
            [
                row.app,
                row.policy,
                row.threshold,
                "migratory" if row.initial_migratory else "non-mig",
                "remember" if row.remember_uncached else "forget",
                row.reduction_pct,
            ]
        )
    return format_table(
        headers,
        out,
        title="Policy-space map (sorted worst to best per app); the "
        "paper's conclusion predicts t1-mig-mem wins",
    )
