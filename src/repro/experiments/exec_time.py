"""Experiment S4.2a — execution-driven timing (Section 4.2).

The paper runs Cholesky, MP3D and Water (the three largest message
reducers) through a detailed DASH simulator and reports parallel-section
execution-time reductions of 19.3 %, 10.4 % and 3.5 % under the basic
adaptive protocol, mostly from removed write-hit invalidation latency.

This experiment replays each trace through the timing model of
:mod:`repro.timing`, with the execution-driven configuration: round-robin
page placement (as the paper's dixie runs use) and finite caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import BASIC, CONVENTIONAL, AdaptivePolicy
from repro.experiments import common, resultcache
from repro.timing.sim import (
    TimingParams,
    TimingResult,
    cost,
    percent_time_reduction,
)

#: The three applications Section 4.2 simulates.
EXEC_TIME_APPS = ("cholesky", "mp3d", "water")


@dataclass(frozen=True, slots=True)
class ExecTimeRow:
    """Timing comparison for one application."""

    app: str
    base_cycles: int
    adaptive_cycles: int
    time_reduction_pct: float
    base_read_miss_latency: float
    adaptive_read_miss_latency: float


def _timed_run(
    trace, policy: AdaptivePolicy, cache_size: int, num_procs: int,
    params: TimingParams,
) -> TimingResult:
    # The replay is priced separately from the parameters: the profile
    # is cached and shared with the topology/prefetch experiments, which
    # time the same design points under other latency sets.
    profile = common.timing_profile(
        trace, policy, cache_size, num_procs=num_procs
    )
    return cost(profile, params)


def run(
    apps: tuple[str, ...] = EXEC_TIME_APPS,
    cache_size: int = 64 * 1024,
    adaptive: AdaptivePolicy = BASIC,
    params: TimingParams | None = None,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[ExecTimeRow]:
    """Time each app under the conventional and adaptive protocols.

    Rows are served through the replay result cache, keyed by the trace
    bytes, the cache geometry, the adaptive policy, and the timing
    parameters.
    """
    params = params or TimingParams()
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)

        def compute(app=app, trace=trace) -> list[ExecTimeRow]:
            base = _timed_run(
                trace, CONVENTIONAL, cache_size, num_procs, params
            )
            adapt = _timed_run(trace, adaptive, cache_size, num_procs, params)
            return [ExecTimeRow(
                app=app,
                base_cycles=base.execution_time,
                adaptive_cycles=adapt.execution_time,
                time_reduction_pct=percent_time_reduction(base, adapt),
                base_read_miss_latency=base.mean_read_miss_latency,
                adaptive_read_miss_latency=adapt.mean_read_miss_latency,
            )]

        rows.extend(resultcache.memoize_rows(
            "exec_time",
            (trace.pack().digest(), cache_size, num_procs,
             resultcache.policy_digest(adaptive), repr(params)),
            ExecTimeRow, compute,
        ))
    return rows


def render(rows: list[ExecTimeRow]) -> str:
    """Render the execution-time comparison."""
    headers = [
        "app",
        "conv cycles",
        "basic cycles",
        "time reduction %",
        "conv rd-miss lat",
        "basic rd-miss lat",
    ]
    out = [
        [
            r.app,
            r.base_cycles,
            r.adaptive_cycles,
            r.time_reduction_pct,
            r.base_read_miss_latency,
            r.adaptive_read_miss_latency,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Section 4.2: parallel-section execution time "
        "(conventional vs basic adaptive)",
    )
