"""Experiment R1 — on-line adaptation vs the off-line oracle.

The related-work section notes that off-line analysis "can make
predictions about the future behavior of a program and, if those
predictions are accurate, use them to outperform an on-line algorithm"
via load-with-intent-to-modify (Berkeley Read-With-Ownership).  This
experiment quantifies the gap: each application runs under

* the conventional protocol,
* the basic and aggressive adaptive protocols (on-line), and
* the conventional protocol driven by perfect read-exclusive hints
  (the off-line oracle of :mod:`repro.analysis.oracle`).

Expected shape: the oracle bounds the on-line protocols from above, and
the aggressive protocol closes most of the gap on migratory-heavy
applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.oracle import hint_coverage, read_exclusive_hints
from repro.analysis.report import format_table
from repro.directory.policy import AGGRESSIVE, BASIC, CONVENTIONAL
from repro.experiments import common, resultcache
from repro.system.machine import DirectoryMachine
from repro.workloads.profiles import APP_ORDER


@dataclass(frozen=True, slots=True)
class OracleRow:
    """Message totals for one application under each scheme."""

    app: str
    conventional: int
    basic: int
    aggressive: int
    oracle: int
    oracle_reduction_pct: float
    aggressive_reduction_pct: float
    hint_fraction_pct: float


def run(
    apps: tuple[str, ...] = APP_ORDER,
    cache_size: int | None = 256 * 1024,
    block_size: int = 16,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[OracleRow]:
    """Compare the adaptive protocols against the read-exclusive oracle.

    One row per application, served through the replay result cache
    keyed by the trace bytes and the machine configuration.
    """
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, block_size, num_procs)

        def compute(app=app, trace=trace, config=config) -> list[OracleRow]:
            placement = common.get_placement("best_static", trace, config)
            totals = {}
            for policy in (CONVENTIONAL, BASIC, AGGRESSIVE):
                machine = DirectoryMachine(config, policy, placement)
                totals[policy.name] = machine.run(trace).total
            hints = read_exclusive_hints(trace, block_size)
            machine = DirectoryMachine(config, CONVENTIONAL, placement)
            oracle_total = machine.run_with_hints(trace, hints).total
            base = totals["conventional"]
            return [OracleRow(
                app=app,
                conventional=base,
                basic=totals["basic"],
                aggressive=totals["aggressive"],
                oracle=oracle_total,
                oracle_reduction_pct=(
                    100.0 * (base - oracle_total) / base if base else 0.0
                ),
                aggressive_reduction_pct=(
                    100.0 * (base - totals["aggressive"]) / base
                    if base else 0.0
                ),
                hint_fraction_pct=100.0 * hint_coverage(hints, trace),
            )]

        rows.extend(resultcache.memoize_rows(
            "oracle",
            (trace.pack().digest(), resultcache.config_digest(config)),
            OracleRow, compute,
        ))
    return rows


def render(rows: list[OracleRow]) -> str:
    """Render the oracle comparison table."""
    headers = [
        "app",
        "conv",
        "basic",
        "aggressive",
        "oracle",
        "aggr %",
        "oracle %",
        "hinted reads %",
    ]
    out = [
        [
            r.app,
            r.conventional,
            r.basic,
            r.aggressive,
            r.oracle,
            r.aggressive_reduction_pct,
            r.oracle_reduction_pct,
            r.hint_fraction_pct,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="On-line adaptive protocols vs the off-line read-exclusive "
        "oracle (total messages)",
    )
