"""Experiment F2 — regenerate Figure 2's transition tables.

Figure 2 presents the adaptive snooping protocol as two tables: the
transitions taken on local cache events and those taken on bus requests.
Rather than hard-coding the figure, this module *derives* both tables from
the implementation by placing caches in each state and observing the
protocol's behaviour, then renders them in the paper's layout.  The
benchmark compares the derived table against the published one, making the
implementation-vs-paper correspondence executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.cache.core import InfiniteCache
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.snooping.states import SnoopState as St

BLOCK = 0


@dataclass(frozen=True, slots=True)
class BusRow:
    """One bus-request transition: holder's reaction to a snoop."""

    state: str
    request: str
    new_state: str
    assert_line: str
    provides_data: bool


@dataclass(frozen=True, slots=True)
class LocalRow:
    """One local-event transition: requester outcome given the reply."""

    state: str
    event: str
    reply: str
    new_state: str


def _caches_with_holder(state: St, dirty: bool) -> list[InfiniteCache]:
    caches = [InfiniteCache(), InfiniteCache()]
    caches[0].insert(BLOCK, state, dirty)
    return caches


def _state_name(line) -> str:
    return "I" if line is None else line.state.name


def derive_bus_table() -> list[BusRow]:
    """Probe every (holder state, bus request) pair."""
    protocol = AdaptiveSnoopingProtocol()
    rows = []
    for state, dirty in (
        (St.E, False),
        (St.D, True),
        (St.S2, False),
        (St.S, False),
        (St.MC, False),
        (St.MD, True),
    ):
        # Read-miss request from processor 1.
        caches = _caches_with_holder(state, dirty)
        fill_state, _fill_dirty = protocol.read_miss_fill(caches, 1, BLOCK)
        asserted = {St.MC: "M", St.S: "S", St.E: "-"}[fill_state]
        rows.append(
            BusRow(state.name, "Brmr", _state_name(caches[0].lookup(BLOCK)),
                   asserted, dirty)
        )
        # Write-miss request from processor 1.
        caches = _caches_with_holder(state, dirty)
        fill_state, _fill_dirty = protocol.write_miss_fill(caches, 1, BLOCK)
        asserted = "M" if fill_state is St.MD else "-"
        rows.append(
            BusRow(state.name, "Bwmr", _state_name(caches[0].lookup(BLOCK)),
                   asserted, dirty)
        )
        # Invalidation requests only ever see S2 or S holders.
        if state in (St.S2, St.S):
            caches = _caches_with_holder(state, dirty)
            caches[1].insert(BLOCK, St.S, False)
            writer_line = caches[1].lookup(BLOCK)
            protocol.write_hit_invalidate(caches, 1, BLOCK, writer_line)
            asserted = "M" if writer_line.state is St.MD else "-"
            rows.append(
                BusRow(state.name, "Bir", _state_name(caches[0].lookup(BLOCK)),
                       asserted, False)
            )
    return rows


def derive_local_table() -> list[LocalRow]:
    """Probe every (local state, cache event, bus reply) combination."""
    protocol = AdaptiveSnoopingProtocol()
    rows = []
    # I + Crm with each possible reply.
    for remote, dirty, reply in (
        (None, False, "¬M∧¬S"),
        (St.S, False, "S"),
        (St.MD, True, "M"),
    ):
        caches = [InfiniteCache(), InfiniteCache()]
        if remote is not None:
            caches[1].insert(BLOCK, remote, dirty)
        fill_state, fill_dirty = protocol.read_miss_fill(caches, 0, BLOCK)
        caches[0].insert(BLOCK, fill_state, fill_dirty)
        rows.append(LocalRow("I", "Crm", reply, fill_state.name))
    # I + Cwm with each possible reply.
    for remote, dirty, reply in ((None, False, "¬M"), (St.D, True, "M")):
        caches = [InfiniteCache(), InfiniteCache()]
        if remote is not None:
            caches[1].insert(BLOCK, remote, dirty)
        fill_state, fill_dirty = protocol.write_miss_fill(caches, 0, BLOCK)
        rows.append(LocalRow("I", "Cwm", reply, fill_state.name))
    # Silent write hits.
    for state in (St.E, St.MC):
        caches = _caches_with_holder(state, False)
        line = caches[0].lookup(BLOCK)
        assert not protocol.write_hit_needs_bus(line)
        protocol.write_hit_silent(line)
        rows.append(LocalRow(state.name, "Cwh", "(silent)", line.state.name))
    # Write hits needing the bus: S2 (other copy in S), S vs S2, S vs S.
    for own, other, reply in (
        (St.S2, St.S, "¬M"),
        (St.S, St.S2, "M"),
        (St.S, St.S, "¬M"),
    ):
        caches = [InfiniteCache(), InfiniteCache()]
        caches[0].insert(BLOCK, own, False)
        caches[1].insert(BLOCK, other, False)
        line = caches[0].lookup(BLOCK)
        assert protocol.write_hit_needs_bus(line)
        protocol.write_hit_invalidate(caches, 0, BLOCK, line)
        rows.append(LocalRow(own.name, "Cwh+Bir", reply, line.state.name))
    return rows


def render() -> str:
    """Render both derived tables in the Figure 2 layout."""
    local = format_table(
        ["state", "event", "reply", "new state"],
        [[r.state, r.event, r.reply, r.new_state] for r in derive_local_table()],
        title="Figure 2 (derived): transitions on local cache events",
    )
    bus = format_table(
        ["state", "request", "new state", "assert", "data"],
        [
            [r.state, r.request, r.new_state, r.assert_line,
             "provide" if r.provides_data else ""]
            for r in derive_bus_table()
        ],
        title="Figure 2 (derived): transitions on bus requests",
    )
    return local + "\n\n" + bus


#: The published Figure 2 bus-request table, for conformance checking:
#: (state, request) -> (new state, assert, provides data)
PAPER_BUS_TABLE = {
    ("E", "Brmr"): ("S2", "S", False),
    ("E", "Bwmr"): ("I", "M", False),
    ("D", "Brmr"): ("S2", "S", True),
    ("D", "Bwmr"): ("I", "M", True),
    ("S2", "Brmr"): ("S", "S", False),
    ("S2", "Bwmr"): ("I", "-", False),
    ("S2", "Bir"): ("I", "M", False),
    ("S", "Brmr"): ("S", "S", False),
    ("S", "Bwmr"): ("I", "-", False),
    ("S", "Bir"): ("I", "-", False),
    ("MC", "Brmr"): ("S2", "S", False),
    ("MC", "Bwmr"): ("I", "-", False),
    ("MD", "Brmr"): ("I", "M", True),
    ("MD", "Bwmr"): ("I", "M", True),
}


def conformance_mismatches() -> list[str]:
    """Compare the derived bus table against the published one."""
    derived = {
        (r.state, r.request): (r.new_state, r.assert_line, r.provides_data)
        for r in derive_bus_table()
    }
    problems = []
    for key, expected in PAPER_BUS_TABLE.items():
        got = derived.get(key)
        if got != expected:
            problems.append(f"{key}: paper {expected}, implementation {got}")
    for key in derived:
        if key not in PAPER_BUS_TABLE:
            problems.append(f"{key}: not in the published table")
    return problems
