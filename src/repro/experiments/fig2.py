"""Experiment F2 — regenerate Figure 2's transition tables.

Figure 2 presents the adaptive snooping protocol as two tables: the
transitions taken on local cache events and those taken on bus requests.
Rather than hard-coding the figure, this module *derives* both tables
from the implementation by observing the protocol's behaviour, then
renders them in the paper's layout.  The benchmark compares the derived
table against the published one, making the implementation-vs-paper
correspondence executable.

The derive-by-observation probing originally lived here; it has since
been promoted into the kernel compiler
(:func:`repro.kernels.tables.compile_snoop_rows`), which probes every
protocol this way to build the table-driven replay kernels.  This
module now just *reads* those compiled rows back into the figure's
vocabulary — so the rendered Figure 2 and the tables the kernels replay
with are one and the same artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.kernels.tables import (
    DIRTY_SNOOP,
    SNOOP_INDEX,
    SNOOP_STATES,
    SnoopRows,
    compile_snoop_rows,
)
from repro.snooping.protocols import AdaptiveSnoopingProtocol
from repro.snooping.states import SnoopState as St

BLOCK = 0


@dataclass(frozen=True, slots=True)
class BusRow:
    """One bus-request transition: holder's reaction to a snoop."""

    state: str
    request: str
    new_state: str
    assert_line: str
    provides_data: bool


@dataclass(frozen=True, slots=True)
class LocalRow:
    """One local-event transition: requester outcome given the reply."""

    state: str
    event: str
    reply: str
    new_state: str


def _rows() -> SnoopRows:
    return compile_snoop_rows(AdaptiveSnoopingProtocol())


def _name(state_idx: int) -> str:
    return "I" if state_idx == 0 else SNOOP_STATES[state_idx].name


def derive_bus_table() -> list[BusRow]:
    """Read every (holder state, bus request) pair off the compiled rows."""
    rows = _rows()
    s_idx = SNOOP_INDEX[St.S]
    table = []
    for state in (St.E, St.D, St.S2, St.S, St.MC, St.MD):
        idx = SNOOP_INDEX[state]
        dirty = idx in DIRTY_SNOOP
        # Read-miss request: holder reaction + the line the fill implies.
        new_s, _c, fill_s, _d = rows.read_react[(idx, 0)]
        asserted = {St.MC: "M", St.S: "S", St.E: "-"}[SNOOP_STATES[fill_s]]
        table.append(BusRow(state.name, "Brmr", _name(new_s), asserted, dirty))
        # Write-miss request.
        new_s, _c, fill_s, _d = rows.write_react[(idx, 0)]
        asserted = "M" if SNOOP_STATES[fill_s] is St.MD else "-"
        table.append(BusRow(state.name, "Bwmr", _name(new_s), asserted, dirty))
        # Invalidation requests only ever see S2 or S holders (writer in S).
        if state in (St.S2, St.S):
            new_s, _c = rows.wh_remote[(idx, 0)]
            local_s, _c = rows.wh_local[(s_idx, idx, 0)]
            asserted = "M" if SNOOP_STATES[local_s] is St.MD else "-"
            table.append(BusRow(state.name, "Bir", _name(new_s), asserted,
                                False))
    return table


def derive_local_table() -> list[LocalRow]:
    """Read every (local state, event, reply) combination off the rows."""
    rows = _rows()
    s_idx, s2_idx = SNOOP_INDEX[St.S], SNOOP_INDEX[St.S2]
    table = []
    # I + Crm with each possible reply: cold, a Shared holder, a
    # Migratory-Dirty holder.
    for holder, reply in ((None, "¬M∧¬S"), (St.S, "S"), (St.MD, "M")):
        if holder is None:
            fill_s = rows.read_cold[0]
        else:
            fill_s = rows.read_react[(SNOOP_INDEX[holder], 0)][2]
        table.append(LocalRow("I", "Crm", reply, _name(fill_s)))
    # I + Cwm with each possible reply.
    for holder, reply in ((None, "¬M"), (St.D, "M")):
        if holder is None:
            fill_s = rows.write_cold[0]
        else:
            fill_s = rows.write_react[(SNOOP_INDEX[holder], 0)][2]
        table.append(LocalRow("I", "Cwm", reply, _name(fill_s)))
    # Silent write hits.
    for state in (St.E, St.MC):
        idx = SNOOP_INDEX[state]
        assert not rows.needs_bus[idx]
        table.append(LocalRow(state.name, "Cwh", "(silent)",
                              _name(rows.silent[idx])))
    # Write hits needing the bus: S2 (other copy in S), S vs S2, S vs S.
    for own, other, reply in (
        (St.S2, St.S, "¬M"),
        (St.S, St.S2, "M"),
        (St.S, St.S, "¬M"),
    ):
        assert rows.needs_bus[SNOOP_INDEX[own]]
        local_s, _c = rows.wh_local[(SNOOP_INDEX[own], SNOOP_INDEX[other], 0)]
        table.append(LocalRow(own.name, "Cwh+Bir", reply, _name(local_s)))
    return table


def render() -> str:
    """Render both derived tables in the Figure 2 layout."""
    local = format_table(
        ["state", "event", "reply", "new state"],
        [[r.state, r.event, r.reply, r.new_state] for r in derive_local_table()],
        title="Figure 2 (derived): transitions on local cache events",
    )
    bus = format_table(
        ["state", "request", "new state", "assert", "data"],
        [
            [r.state, r.request, r.new_state, r.assert_line,
             "provide" if r.provides_data else ""]
            for r in derive_bus_table()
        ],
        title="Figure 2 (derived): transitions on bus requests",
    )
    return local + "\n\n" + bus


#: The published Figure 2 bus-request table, for conformance checking:
#: (state, request) -> (new state, assert, provides data)
PAPER_BUS_TABLE = {
    ("E", "Brmr"): ("S2", "S", False),
    ("E", "Bwmr"): ("I", "M", False),
    ("D", "Brmr"): ("S2", "S", True),
    ("D", "Bwmr"): ("I", "M", True),
    ("S2", "Brmr"): ("S", "S", False),
    ("S2", "Bwmr"): ("I", "-", False),
    ("S2", "Bir"): ("I", "M", False),
    ("S", "Brmr"): ("S", "S", False),
    ("S", "Bwmr"): ("I", "-", False),
    ("S", "Bir"): ("I", "-", False),
    ("MC", "Brmr"): ("S2", "S", False),
    ("MC", "Bwmr"): ("I", "-", False),
    ("MD", "Brmr"): ("I", "M", True),
    ("MD", "Bwmr"): ("I", "M", True),
}


def conformance_mismatches() -> list[str]:
    """Compare the derived bus table against the published one."""
    derived = {
        (r.state, r.request): (r.new_state, r.assert_line, r.provides_data)
        for r in derive_bus_table()
    }
    problems = []
    for key, expected in PAPER_BUS_TABLE.items():
        got = derived.get(key)
        if got != expected:
            problems.append(f"{key}: paper {expected}, implementation {got}")
    for key in derived:
        if key not in PAPER_BUS_TABLE:
            problems.append(f"{key}: not in the published table")
    return problems
