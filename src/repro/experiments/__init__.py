"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.table2` — Table 2 (cache-size sweep).
* :mod:`repro.experiments.table3` — Table 3 (block-size sweep).
* :mod:`repro.experiments.cost_ratio` — Section 4.1 cost-ratio analysis.
* :mod:`repro.experiments.exec_time` — Section 4.2 execution timing.
* :mod:`repro.experiments.placement` — Section 4.2 placement comparison.
* :mod:`repro.experiments.bus` — Section 4.3 snooping protocols.
* :mod:`repro.experiments.fig2` — Figure 2 transition-table derivation.
* :mod:`repro.experiments.ablations` — design-axis ablations.
* :mod:`repro.experiments.runner` — the ``repro-experiments`` CLI.
"""

from repro.experiments import (
    ablations,
    bus,
    common,
    contention,
    cost_ratio,
    exec_time,
    fig2,
    inval_patterns,
    limited_dir,
    oracle,
    placement,
    policy_space,
    prefetch,
    results,
    robustness,
    table2,
    table3,
    topology,
    update_protocols,
)

__all__ = [
    "ablations",
    "bus",
    "common",
    "contention",
    "cost_ratio",
    "exec_time",
    "fig2",
    "inval_patterns",
    "limited_dir",
    "oracle",
    "placement",
    "policy_space",
    "prefetch",
    "results",
    "robustness",
    "table2",
    "table3",
    "topology",
    "update_protocols",
]
