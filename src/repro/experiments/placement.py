"""Experiment S4.2b — page placement and the trace/execution gap.

Section 4.2 observes smaller message reductions in the execution-driven
runs (32 % for MP3D) than in the trace-driven runs (46 %) and attributes
the difference to page placement: the execution-driven simulator used
standard round-robin allocation, inflating the conventional protocol's
non-migratory traffic less than... rather, inflating *total* messages for
all data so the migratory savings are a smaller share.  This experiment
reproduces the comparison directly: the same trace and protocols under
round-robin versus majority-accessor static placement.

Expected shape: the adaptive reduction percentage is higher under the
good static placement than under round-robin, while the absolute message
counts are lower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import BASIC, CONVENTIONAL, AdaptivePolicy
from repro.experiments import common

PLACEMENTS = ("round_robin", "best_static")


@dataclass(frozen=True, slots=True)
class PlacementRow:
    """Message totals and adaptive reduction under one placement."""

    app: str
    placement: str
    conventional_total: int
    adaptive_total: int
    reduction_pct: float


def run(
    apps: tuple[str, ...] = ("mp3d", "cholesky", "water"),
    placements: tuple[str, ...] = PLACEMENTS,
    adaptive: AdaptivePolicy = BASIC,
    cache_size: int | None = 4 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[PlacementRow]:
    """Compare adaptive reductions under each placement policy."""
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        for placement in placements:
            base = common.run_directory(
                trace, CONVENTIONAL, cache_size,
                placement_kind=placement, num_procs=num_procs,
            )
            adapt = common.run_directory(
                trace, adaptive, cache_size,
                placement_kind=placement, num_procs=num_procs,
            )
            reduction = 0.0
            if base.total:
                reduction = 100.0 * (base.total - adapt.total) / base.total
            rows.append(
                PlacementRow(app, placement, base.total, adapt.total, reduction)
            )
    return rows


def render(rows: list[PlacementRow]) -> str:
    """Render the placement comparison."""
    headers = ["app", "placement", "conv msgs", "basic msgs", "reduction %"]
    out = [
        [r.app, r.placement, r.conventional_total, r.adaptive_total,
         r.reduction_pct]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Section 4.2: page placement and the adaptive reduction",
    )
