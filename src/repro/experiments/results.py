"""Experiment result persistence and comparison.

Experiment runs are lists of (frozen) dataclass rows.  This module
serialises them to JSON — with enough metadata (experiment name,
workload scale, seed, package version) to know what a file means —
reloads them, and diffs two result sets so that calibration drift is
visible when workloads or protocols change.

Used by ``examples/splash_campaign.py --json`` and by regression
tooling; the golden tests pin exact counts, while this supports
human-level comparison across larger changes.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Sequence


class ResultError(ValueError):
    """A result file is malformed or incompatible."""


def rows_to_payload(
    experiment: str,
    rows: Sequence[Any],
    scale: float = 1.0,
    seed: int = 0,
    extra: dict | None = None,
) -> dict:
    """Build the JSON-ready payload for a list of dataclass rows."""
    serialised = []
    for row in rows:
        if not dataclasses.is_dataclass(row):
            raise ResultError(f"row {row!r} is not a dataclass")
        record = {}
        for key, value in dataclasses.asdict(row).items():
            record[key] = value if _plain(value) else str(value)
        serialised.append(record)
    payload = {
        "experiment": experiment,
        "scale": scale,
        "seed": seed,
        "rows": serialised,
    }
    if extra:
        payload["extra"] = extra
    return payload


def _plain(value) -> bool:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_plain(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _plain(v) for k, v in value.items())
    return False


def save_results(
    path: str | Path,
    experiment: str,
    rows: Sequence[Any],
    scale: float = 1.0,
    seed: int = 0,
    extra: dict | None = None,
) -> None:
    """Write one experiment's rows as JSON."""
    payload = rows_to_payload(experiment, rows, scale, seed, extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_results(path: str | Path) -> dict:
    """Read a result file written by :func:`save_results`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ResultError(f"{path}: not valid JSON: {exc}") from exc
    for key in ("experiment", "scale", "seed", "rows"):
        if key not in payload:
            raise ResultError(f"{path}: missing {key!r}")
    return payload


def compare_results(
    old: dict,
    new: dict,
    keys: Sequence[str],
    numeric_fields: Sequence[str],
    tolerance_pct: float = 5.0,
) -> list[str]:
    """Diff two result payloads.

    Rows are matched by the tuple of ``keys`` fields; each
    ``numeric_fields`` entry is compared with a relative tolerance.

    Returns:
        Human-readable difference descriptions (empty when compatible).
    """
    if old["experiment"] != new["experiment"]:
        return [
            f"different experiments: {old['experiment']!r} vs "
            f"{new['experiment']!r}"
        ]
    problems = []

    def index(payload):
        table = {}
        for row in payload["rows"]:
            table[tuple(str(row.get(k)) for k in keys)] = row
        return table

    old_rows = index(old)
    new_rows = index(new)
    for key in old_rows.keys() - new_rows.keys():
        problems.append(f"row {key} disappeared")
    for key in new_rows.keys() - old_rows.keys():
        problems.append(f"row {key} appeared")
    for key in old_rows.keys() & new_rows.keys():
        for fieldname in numeric_fields:
            before = old_rows[key].get(fieldname)
            after = new_rows[key].get(fieldname)
            if before is None or after is None:
                problems.append(f"row {key}: missing field {fieldname!r}")
                continue
            reference = max(abs(before), 1e-12)
            drift = 100.0 * abs(after - before) / reference
            if drift > tolerance_pct:
                problems.append(
                    f"row {key}: {fieldname} drifted {drift:.1f}% "
                    f"({before} -> {after})"
                )
    return problems
