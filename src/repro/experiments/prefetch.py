"""Experiment R3 — adaptive protocols vs software prefetching (Section 5).

Times each application under four schemes:

* conventional protocol, no prefetch (baseline);
* basic adaptive protocol (this paper);
* conventional + oracle prefetch (latency tolerated, traffic unchanged);
* conventional + oracle prefetch-exclusive (prefetch plus
  read-with-ownership hints: invalidation waits removed too).

Expected shape (the paper's reading of Mowry & Gupta): prefetch-exclusive
matches the adaptive protocol's removal of invalidation waiting *and*
hides read-miss latency, so it is the fastest — "a carefully designed
prefetching mechanism may be the best approach", at the cost of needing
compiler/programmer support the adaptive protocols avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.oracle import read_exclusive_hints
from repro.analysis.report import format_table
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.experiments import common, resultcache
from repro.system.machine import DirectoryMachine
from repro.timing.prefetch import PrefetchingTimingSimulator
from repro.timing.sim import TimingParams, cost

PREFETCH_APPS = ("mp3d", "pthor", "cholesky")


@dataclass(frozen=True, slots=True)
class PrefetchRow:
    """Execution time under each scheme, for one application."""

    app: str
    conventional: int
    adaptive: int
    prefetch: int
    prefetch_exclusive: int

    def reduction(self, cycles: int) -> float:
        if not self.conventional:
            return 0.0
        return 100.0 * (self.conventional - cycles) / self.conventional


def run(
    apps: tuple[str, ...] = PREFETCH_APPS,
    cache_size: int = 64 * 1024,
    coverage: float = 1.0,
    params: TimingParams | None = None,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[PrefetchRow]:
    """Time every app under the four schemes.

    Rows are served through the replay result cache, keyed by the trace
    bytes, configuration, prefetch coverage, and timing parameters.
    """
    params = params or TimingParams()
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, 16, num_procs)

        def compute(app=app, trace=trace,
                    config=config) -> list[PrefetchRow]:
            placement = common.get_placement("round_robin", trace, config)

            def machine(policy):
                return DirectoryMachine(config, policy, placement)

            # The two plain timing runs share cached profiles with the
            # exec-time and topology experiments; the prefetch runs stay
            # live — prefetch issue decisions depend on the params.
            base = cost(common.timing_profile(
                trace, CONVENTIONAL, cache_size, num_procs=num_procs
            ), params)
            adaptive = cost(common.timing_profile(
                trace, BASIC, cache_size, num_procs=num_procs
            ), params)
            prefetch = PrefetchingTimingSimulator(
                machine(CONVENTIONAL), params, coverage=coverage
            ).run(trace)
            hints = read_exclusive_hints(trace, config.block_size)
            prefetch_excl = PrefetchingTimingSimulator(
                machine(CONVENTIONAL), params, coverage=coverage
            ).run(trace, exclusive_hints=hints)
            return [PrefetchRow(
                app=app,
                conventional=base.execution_time,
                adaptive=adaptive.execution_time,
                prefetch=prefetch.execution_time,
                prefetch_exclusive=prefetch_excl.execution_time,
            )]

        rows.extend(resultcache.memoize_rows(
            "prefetch",
            (trace.pack().digest(), resultcache.config_digest(config),
             coverage, repr(params)),
            PrefetchRow, compute,
        ))
    return rows


def render(rows: list[PrefetchRow]) -> str:
    """Render the prefetch comparison."""
    headers = [
        "app",
        "conv cycles",
        "adaptive %",
        "prefetch %",
        "prefetch-excl %",
    ]
    out = [
        [
            r.app,
            r.conventional,
            r.reduction(r.adaptive),
            r.reduction(r.prefetch),
            r.reduction(r.prefetch_exclusive),
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Adaptive coherence vs software prefetching "
        "(execution-time reduction vs conventional)",
    )
