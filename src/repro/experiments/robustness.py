"""Experiment R8 — seed robustness of the headline results.

The workload analogues are randomized (particle walks, pair selection,
queue interleavings).  A reproduction whose conclusions flip with the
random seed would be worthless, so this experiment re-runs the headline
comparison (aggressive vs conventional, 16-byte blocks) across several
seeds per application and reports the spread of the reduction
percentage.  The paper's qualitative claims must hold for *every* seed,
and the spread should be small relative to the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.experiments import common
from repro.workloads.profiles import APP_ORDER


@dataclass(frozen=True, slots=True)
class RobustnessRow:
    """Reduction-percentage spread across seeds for one application."""

    app: str
    reductions: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.reductions) / len(self.reductions)

    @property
    def spread(self) -> float:
        """Max minus min reduction across seeds (percentage points)."""
        return max(self.reductions) - min(self.reductions)

    @property
    def minimum(self) -> float:
        return min(self.reductions)


def run(
    apps: tuple[str, ...] = APP_ORDER,
    seeds: tuple[int, ...] = (0, 1, 2),
    cache_size: int | None = 256 * 1024,
    scale: float = 1.0,
    num_procs: int = common.NUM_PROCS,
) -> list[RobustnessRow]:
    """Measure the aggressive protocol's reduction across seeds."""
    rows = []
    for app in apps:
        reductions = []
        for seed in seeds:
            trace = common.get_trace(app, num_procs, seed, scale)
            base = common.run_directory(
                trace, CONVENTIONAL, cache_size, num_procs=num_procs
            ).total
            aggressive = common.run_directory(
                trace, AGGRESSIVE, cache_size, num_procs=num_procs
            ).total
            reductions.append(
                100.0 * (base - aggressive) / base if base else 0.0
            )
        rows.append(RobustnessRow(app, tuple(reductions)))
    return rows


def render(rows: list[RobustnessRow]) -> str:
    """Render the robustness summary."""
    headers = ["app", "mean reduction %", "min %", "max %", "spread (pp)"]
    out = [
        [r.app, r.mean, min(r.reductions), max(r.reductions), r.spread]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Seed robustness of the aggressive protocol's reduction",
    )
