"""Experiment R5 — how network distance scales the adaptive advantage.

Message counts do not depend on the network, but message *latency* does:
the farther apart the nodes, the more each removed message is worth.
This experiment times the basic adaptive protocol against the
conventional one with the per-message latency scaled by each topology's
average hop count (crossbar, hypercube, 2-D mesh, ring).

Expected shape: the execution-time reduction grows monotonically with
average hop distance — supporting the paper's closing observation that
"since cache coherency traffic represents a larger part of the total
communication as cache size increases, the relative benefit ... also
increases", extended here along the network axis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.report import format_table
from repro.directory.policy import BASIC, CONVENTIONAL
from repro.experiments import common, resultcache
from repro.interconnect.topology import Topology, standard_topologies
from repro.timing.sim import TimingParams, cost, percent_time_reduction


@dataclass(frozen=True, slots=True)
class TopologyRow:
    """Timing comparison under one topology."""

    app: str
    topology: str
    average_hops: float
    base_cycles: int
    adaptive_cycles: int
    time_reduction_pct: float


def run(
    apps: tuple[str, ...] = ("mp3d", "cholesky"),
    topologies: tuple[Topology, ...] | None = None,
    cache_size: int = 64 * 1024,
    params: TimingParams | None = None,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[TopologyRow]:
    """Time conventional vs basic under each topology's hop scaling.

    Per-application row groups are served through the replay result
    cache, keyed by the trace bytes, configuration, timing parameters,
    and the topology set.
    """
    params = params or TimingParams()
    topologies = topologies or standard_topologies(num_procs)
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, 16, num_procs)

        def compute(app=app, trace=trace) -> list[TopologyRow]:
            # Only message_cycles varies across topologies, so each
            # policy is replayed once and the profile re-priced per
            # topology instead of re-simulating the same machine four
            # times over.
            base_profile = common.timing_profile(
                trace, CONVENTIONAL, cache_size, num_procs=num_procs
            )
            adaptive_profile = common.timing_profile(
                trace, BASIC, cache_size, num_procs=num_procs
            )
            out = []
            for topology in topologies:
                scaled = replace(
                    params,
                    message_cycles=max(
                        1,
                        round(params.message_cycles * topology.average_hops),
                    ),
                )
                base = cost(base_profile, scaled)
                adaptive = cost(adaptive_profile, scaled)
                out.append(
                    TopologyRow(
                        app=app,
                        topology=topology.name,
                        average_hops=topology.average_hops,
                        base_cycles=base.execution_time,
                        adaptive_cycles=adaptive.execution_time,
                        time_reduction_pct=percent_time_reduction(
                            base, adaptive
                        ),
                    )
                )
            return out

        rows.extend(resultcache.memoize_rows(
            "topology",
            (trace.pack().digest(), resultcache.config_digest(config),
             repr(params), repr(tuple(topologies))),
            TopologyRow, compute,
        ))
    return rows


def render(rows: list[TopologyRow]) -> str:
    """Render the topology sweep."""
    headers = ["app", "topology", "avg hops", "conv cycles",
               "basic cycles", "reduction %"]
    out = [
        [r.app, r.topology, r.average_hops, r.base_cycles,
         r.adaptive_cycles, r.time_reduction_pct]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Execution-time benefit of adaptation vs network distance",
    )
