"""Experiment T3 — Table 3: message counts by block size.

Sweeps the coherence block size from 16 to 256 bytes with caches large
enough to eliminate capacity misses (we use infinite caches, as the paper
does in spirit), for every application and protocol.

Expected shape: raw message counts fall with block size (fewer cold
misses), but the adaptive protocols' *relative* advantage erodes for the
applications whose migratory data gets swallowed by false sharing (MP3D
most prominently — the paper notes its invalidations rise from 64 to
128-byte blocks), while staying flat or improving for Cholesky.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, thousands
from repro.directory.policy import PAPER_POLICIES, AdaptivePolicy
from repro.experiments import common
from repro.parallel import effective_workers, parallel_map
from repro.workloads.profiles import APP_ORDER

#: The paper's block-size sweep (bytes).
BLOCK_SIZES = (16, 32, 64, 128, 256)


@dataclass(frozen=True, slots=True)
class Table3Row:
    """One (block size, application) row across all protocols."""

    block_size: int
    app: str
    cells: dict  # policy name -> ProtocolCell


def _row(task: tuple) -> Table3Row:
    """One (block size, app) cell: every policy on one trace."""
    block_size, app, policies, scale, seed, num_procs, handle = task
    trace = common.get_trace(app, num_procs, seed, scale, handle=handle)
    cells = {}
    baseline_total = 0
    for policy in policies:
        stats = common.run_directory(
            trace,
            policy,
            cache_size=None,
            block_size=block_size,
            num_procs=num_procs,
        )
        if policy.name == "conventional" or not cells:
            baseline_total = stats.total
        cells[policy.name] = common.make_cell(stats, baseline_total)
    return Table3Row(block_size, app, cells)


def run(
    apps: tuple[str, ...] = APP_ORDER,
    block_sizes: tuple[int, ...] = BLOCK_SIZES,
    policies: tuple[AdaptivePolicy, ...] = PAPER_POLICIES,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
    jobs: int | None = None,
) -> list[Table3Row]:
    """Run the full sweep; returns one row per (block size, app).

    ``jobs`` fans the (block size, app) cells across worker processes;
    the result is identical for every job count.
    """
    num_tasks = len(block_sizes) * len(apps)
    handles: dict = {}
    if effective_workers(jobs, num_tasks) > 1:
        handles = common.publish_traces(tuple(apps), num_procs, seed, scale)
    tasks = [
        (block_size, app, tuple(policies), scale, seed, num_procs,
         handles.get(app))
        for block_size in block_sizes
        for app in apps
    ]
    return parallel_map(_row, tasks, jobs=jobs)


def render(rows: list[Table3Row]) -> str:
    """Render the sweep in the paper's Table 3 layout."""
    policies = list(rows[0].cells) if rows else []
    headers = ["block / app"]
    for name in policies:
        headers.append(f"{name[:6]} w/o")
        headers.append("w/")
        if name != "conventional":
            headers.append("%")
    out_rows = []
    last_size = None
    for row in rows:
        if row.block_size != last_size:
            out_rows.append([f"-- {row.block_size}-byte --"]
                            + [""] * (len(headers) - 1))
            last_size = row.block_size
        cells = [row.app]
        for name in policies:
            cell = row.cells[name]
            cells.append(thousands(cell.short))
            cells.append(thousands(cell.data))
            if name != "conventional":
                cells.append(cell.reduction_pct)
        out_rows.append(cells)
    return format_table(
        headers,
        out_rows,
        title="Table 3: message counts (thousands) by block size, "
        "application, and protocol (no capacity misses)",
    )
