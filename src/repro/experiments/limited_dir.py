"""Experiment R4 — adaptive protocols under limited-pointer directories.

The paper's cost model assumes a full-map directory.  Contemporary
machines (DASH, Alewife/LimitLESS — both cited) used limited pointers.
This experiment re-runs the protocol comparison under Dir_iB and Dir_iNB
directories to test that the adaptive advantage is robust to the
directory representation: migratory blocks occupy a single pointer and
never overflow, so the savings survive — and read-shared data gets more
expensive, so they matter relatively more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import AGGRESSIVE, CONVENTIONAL
from repro.directory.representation import (
    DirectoryRepresentation,
    FullMapDirectory,
    LimitedPointerDirectory,
)
from repro.experiments import common, resultcache
from repro.system.machine import DirectoryMachine
from repro.workloads.profiles import APP_ORDER


@dataclass(frozen=True, slots=True)
class LimitedDirRow:
    """Protocol comparison under one directory representation."""

    app: str
    representation: str
    conventional_total: int
    aggressive_total: int
    reduction_pct: float


def default_representations() -> tuple:
    """The representations compared by default."""
    return (
        FullMapDirectory(),
        LimitedPointerDirectory(4, broadcast=True),
        LimitedPointerDirectory(4, broadcast=False),
    )


def run(
    apps: tuple[str, ...] = APP_ORDER,
    representations: tuple[DirectoryRepresentation, ...] | None = None,
    cache_size: int | None = 256 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[LimitedDirRow]:
    """Compare conventional vs aggressive under each representation.

    Per-application row groups are served through the replay result
    cache, keyed by the trace bytes, configuration, and representation
    set.
    """
    reprs = representations or default_representations()
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, 16, num_procs)

        def compute(app=app, trace=trace,
                    config=config) -> list[LimitedDirRow]:
            placement = common.get_placement("best_static", trace, config)
            out = []
            for representation in reprs:
                conv = DirectoryMachine(
                    config, CONVENTIONAL, placement,
                    representation=type(representation)(
                        *_repr_args(representation)
                    ),
                )
                conv.run(trace)
                aggr = DirectoryMachine(
                    config, AGGRESSIVE, placement,
                    representation=type(representation)(
                        *_repr_args(representation)
                    ),
                )
                aggr.run(trace)
                base = conv.stats.total
                out.append(
                    LimitedDirRow(
                        app=app,
                        representation=representation.name,
                        conventional_total=base,
                        aggressive_total=aggr.stats.total,
                        reduction_pct=(
                            100.0 * (base - aggr.stats.total) / base
                            if base else 0.0
                        ),
                    )
                )
            return out

        rows.extend(resultcache.memoize_rows(
            "limited_dir",
            (trace.pack().digest(), resultcache.config_digest(config),
             "|".join(representation.name for representation in reprs)),
            LimitedDirRow, compute,
        ))
    return rows


def _repr_args(representation: DirectoryRepresentation) -> tuple:
    """Constructor arguments to build a fresh copy of a representation."""
    if isinstance(representation, LimitedPointerDirectory):
        return (representation.pointers, representation.broadcast)
    return ()


def render(rows: list[LimitedDirRow]) -> str:
    """Render the limited-directory comparison."""
    headers = ["app", "directory", "conv msgs", "aggressive msgs",
               "reduction %"]
    out = [
        [r.app, r.representation, r.conventional_total, r.aggressive_total,
         r.reduction_pct]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Adaptive advantage under limited-pointer directories",
    )
