"""Experiment S4.2c — contention and the read-miss latency effect.

Section 4.2's most surprising observation: "eliminating the extra
invalidation operations decreases the average latency of primary cache
read misses by 20 % ... by nearly eliminating contention at the
secondary cache."  The event-driven simulator of
:mod:`repro.timing.eventsim` models controller queueing explicitly, so
the mechanism is directly visible: the adaptive protocol removes
messages, controllers queue less, and *unrelated* misses get faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.directory.policy import BASIC, CONVENTIONAL, AdaptivePolicy
from repro.experiments import common, resultcache
from repro.system.machine import DirectoryMachine
from repro.timing.eventsim import EventDrivenSimulator, EventTimingParams

CONTENTION_APPS = ("cholesky", "mp3d", "water")


@dataclass(frozen=True, slots=True)
class ContentionRow:
    """Contended timing comparison for one application."""

    app: str
    base_cycles: int
    adaptive_cycles: int
    time_reduction_pct: float
    base_read_miss_latency: float
    adaptive_read_miss_latency: float
    read_miss_latency_reduction_pct: float
    base_contention_share: float
    adaptive_contention_share: float


def run(
    apps: tuple[str, ...] = CONTENTION_APPS,
    cache_size: int = 64 * 1024,
    adaptive: AdaptivePolicy = BASIC,
    params: EventTimingParams | None = None,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[ContentionRow]:
    """Run the contended comparison for each application.

    Rows are served through the replay result cache, keyed by the trace
    bytes, the configuration, the policy, and the timing parameters.
    """
    params = params or EventTimingParams()
    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = common.directory_config(cache_size, 16, num_procs)

        def compute(app=app, trace=trace,
                    config=config) -> list[ContentionRow]:
            placement = common.get_placement("round_robin", trace, config)
            results = {}
            for policy in (CONVENTIONAL, adaptive):
                machine = DirectoryMachine(config, policy, placement)
                results[policy.name] = EventDrivenSimulator(
                    machine, params
                ).run(trace)
            base = results["conventional"]
            adapt = results[adaptive.name]
            lat_reduction = 0.0
            if base.mean_read_miss_latency:
                lat_reduction = 100.0 * (
                    base.mean_read_miss_latency - adapt.mean_read_miss_latency
                ) / base.mean_read_miss_latency
            return [ContentionRow(
                app=app,
                base_cycles=base.execution_time,
                adaptive_cycles=adapt.execution_time,
                time_reduction_pct=(
                    100.0
                    * (base.execution_time - adapt.execution_time)
                    / base.execution_time
                    if base.execution_time else 0.0
                ),
                base_read_miss_latency=base.mean_read_miss_latency,
                adaptive_read_miss_latency=adapt.mean_read_miss_latency,
                read_miss_latency_reduction_pct=lat_reduction,
                base_contention_share=base.contention_share,
                adaptive_contention_share=adapt.contention_share,
            )]

        rows.extend(resultcache.memoize_rows(
            "contention",
            (trace.pack().digest(), resultcache.config_digest(config),
             resultcache.policy_digest(adaptive), repr(params)),
            ContentionRow, compute,
        ))
    return rows


def render(rows: list[ContentionRow]) -> str:
    """Render the contention comparison."""
    headers = [
        "app",
        "time red. %",
        "rd-miss lat conv",
        "rd-miss lat basic",
        "lat red. %",
        "queue share conv %",
        "queue share basic %",
    ]
    out = [
        [
            r.app,
            r.time_reduction_pct,
            r.base_read_miss_latency,
            r.adaptive_read_miss_latency,
            r.read_miss_latency_reduction_pct,
            100 * r.base_contention_share,
            100 * r.adaptive_contention_share,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Section 4.2 contention effect: fewer protocol messages -> "
        "less controller queueing -> faster read misses",
    )


@dataclass(frozen=True, slots=True)
class BusContentionRow:
    """Shared-bus utilization comparison for one application."""

    app: str
    mesi_utilization: float
    adaptive_utilization: float
    mesi_exec: int
    adaptive_exec: int
    time_reduction_pct: float
    adaptive_read_share: float


def run_bus(
    apps: tuple[str, ...] = CONTENTION_APPS,
    cache_size: int = 64 * 1024,
    scale: float = 1.0,
    seed: int = 0,
    num_procs: int = common.NUM_PROCS,
) -> list[BusContentionRow]:
    """Shared-bus contention comparison (MESI vs adaptive snooping)."""
    from repro.common.config import CacheConfig, MachineConfig
    from repro.snooping.machine import BusMachine
    from repro.snooping.protocols import (
        AdaptiveSnoopingProtocol,
        MesiProtocol,
    )
    from repro.timing.bus_eventsim import BusEventSimulator

    rows = []
    for app in apps:
        trace = common.get_trace(app, num_procs, seed, scale)
        config = MachineConfig(
            num_procs=num_procs,
            cache=CacheConfig(size_bytes=cache_size, block_size=16),
        )

        def compute(app=app, trace=trace,
                    config=config) -> list[BusContentionRow]:
            results = {}
            for key, protocol in (
                ("mesi", MesiProtocol()),
                ("adaptive", AdaptiveSnoopingProtocol()),
            ):
                machine = BusMachine(config, protocol)
                results[key] = BusEventSimulator(machine).run(trace)
            mesi, adaptive = results["mesi"], results["adaptive"]
            return [BusContentionRow(
                app=app,
                mesi_utilization=mesi.utilization,
                adaptive_utilization=adaptive.utilization,
                mesi_exec=mesi.execution_time,
                adaptive_exec=adaptive.execution_time,
                time_reduction_pct=(
                    100.0
                    * (mesi.execution_time - adaptive.execution_time)
                    / mesi.execution_time
                    if mesi.execution_time else 0.0
                ),
                adaptive_read_share=adaptive.kind_share("read_miss"),
            )]

        rows.extend(resultcache.memoize_rows(
            "contention_bus",
            (trace.pack().digest(), resultcache.config_digest(config)),
            BusContentionRow, compute,
        ))
    return rows


def render_bus(rows: list[BusContentionRow]) -> str:
    """Render the shared-bus contention comparison."""
    headers = [
        "app",
        "mesi util %",
        "adaptive util %",
        "time red. %",
        "adaptive read share %",
    ]
    out = [
        [
            r.app,
            100 * r.mesi_utilization,
            100 * r.adaptive_utilization,
            r.time_reduction_pct,
            100 * r.adaptive_read_share,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        out,
        title="Shared-bus utilization (snooping machine, contended)",
    )
