"""The trace-driven CC-NUMA directory machine (Section 3.3).

:class:`DirectoryMachine` assembles per-node caches, a page-placement
policy, the directory protocol (conventional or adaptive), and Table 1
message charging.  Feeding it a trace of shared-data references reproduces
the measurement methodology behind Tables 2 and 3.

The model follows the paper:

* write-invalidate with delayed write-back; a modified block is written
  back when replaced or when another processor accesses it;
* blocks are loaded in a read-only (Shared) state by replicating read
  misses, and in an exclusive writable state by write misses and by the
  migratory migrate-on-read-miss path;
* a migratory block arrives with write permission, so the first write at
  its new node is silent — this is the entire saving;
* dropping a clean entry notifies the home node (charged at full message
  cost, as the paper chooses to); dirty victims are written back.

An optional coherence checker simulates block versions end-to-end and
asserts that every read observes the most recent write and that the
directory's copy set matches reality.  It is enabled in tests and disabled
in benchmark runs.  The structural invariants themselves live in
:mod:`repro.conformance.invariants` (shared with the model checker and
the conformance fuzzer), and external tools can observe every
protocol-visible step through :attr:`DirectoryMachine.step_hook`
without enabling the version checker.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from typing import Callable, Iterable

from repro.cache.core import (
    Cache,
    CacheLine,
    InfiniteCache,
    SetAssociativeCache,
    make_cache,
)
from repro.common.config import MachineConfig
from repro.conformance.invariants import check_directory_block
from repro.common.errors import ProtocolError
from repro.common.stats import CacheStats, MessageStats
from repro.common.types import Access, Op
from repro.directory.entry import DirState
from repro.directory.policy import AdaptivePolicy
from repro.directory.protocol import DirectoryProtocol
from repro.directory.representation import (
    DirectoryRepresentation,
    FullMapDirectory,
)
from repro.interconnect.costs import (
    eviction_counts,
    read_miss_counts,
    write_hit_counts,
    write_miss_counts,
)
from repro.system.placement import PagePlacement, RoundRobinPlacement


class CState(enum.Enum):
    """Per-cache-line permission in the directory machine."""

    SHARED = "shared"  # read-only copy
    EXCL = "exclusive"  # write permission (dirty bit says if modified)


class DirectoryMachine:
    """A 16-node (configurable) CC-NUMA multiprocessor model."""

    __slots__ = (
        "config", "policy", "placement", "protocol", "representation",
        "block_messages", "caches", "stats", "cache_stats",
        "invalidation_sizes", "step_hook",
        "_check", "_block_shift", "_page_shift", "_home_shift",
        "_latest", "_version_counter",
    )

    #: Named kernel-fallback reason a subclass replay records (the
    #: table-driven kernels encode exactly this class's transitions).
    kernel_fallback_reason = "machine-subclass"

    def __init__(
        self,
        config: MachineConfig,
        policy: AdaptivePolicy,
        placement: PagePlacement | None = None,
        check: bool = False,
        seed: int = 0,
        track_blocks: bool = False,
        representation: DirectoryRepresentation | None = None,
        step_hook: Callable[["DirectoryMachine", int, int], None] | None = None,
    ):
        self.config = config
        self.policy = policy
        self.placement = placement or RoundRobinPlacement(config.num_procs)
        self.protocol = DirectoryProtocol(policy)
        self.representation = representation or FullMapDirectory()
        #: Per-block message totals (populated when ``track_blocks``).
        self.block_messages: dict[int, int] | None = (
            {} if track_blocks else None
        )
        rng = random.Random(seed)
        self.caches: list[Cache] = [
            make_cache(config.cache, random.Random(rng.random()))
            for _ in range(config.num_procs)
        ]
        self.stats = MessageStats()
        self.cache_stats = CacheStats()
        #: Distribution of invalidation sizes: number of copies destroyed
        #: per invalidating write (Weber & Gupta's invalidation patterns).
        self.invalidation_sizes: Counter = Counter()
        #: Observer called as ``step_hook(machine, proc, block)`` after
        #: every protocol-visible step (misses, upgrades — the same
        #: points the built-in checker audits).  Installing one forces
        #: the generic per-access replay path.
        self.step_hook = step_hook
        self._check = check
        self._block_shift = config.cache.block_size.bit_length() - 1
        self._page_shift = config.page_size.bit_length() - 1
        # page_size >= block_size (validated by MachineConfig), so a
        # block's page is a single right shift away.
        self._home_shift = self._page_shift - self._block_shift
        # Coherence checker state: the latest version written to each block.
        self._latest: dict[int, int] = {}
        self._version_counter = 0

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    def run(self, trace: Iterable[Access]) -> MessageStats:
        """Process every access in ``trace``; returns the message stats.

        ``trace`` may be a :class:`repro.trace.core.Trace`, a
        :class:`repro.trace.packed.PackedTrace`, or any iterable of
        :class:`Access` records.  Packable traces replay through a fast
        columnar loop (bit-identical statistics, several times faster);
        the coherence checker and an installed step hook force the
        generic per-access path.  The hook contract is symmetric with
        :meth:`repro.snooping.machine.BusMachine.run`: install the hook
        *before* calling ``run``.  A hook that appears mid-replay on
        the packed path (from a placement or protocol callback, say)
        would observe only part of the stream, so the replay ends with
        a :class:`ProtocolError` instead of returning silently partial
        observations.

        Under the same guard, replays inside the table-driven kernel
        envelope (:mod:`repro.kernels`) run on the compiled transition
        tables instead of the packed loop — bit-identical statistics
        and final state, roughly an order of magnitude faster.
        """
        pack = getattr(trace, "pack", None)
        if pack is not None and not self._check and self.step_hook is None:
            packed = pack()
            if type(self) is DirectoryMachine:
                from repro.kernels.directory import try_replay

                result = try_replay(self, packed)
                if result is not None:
                    return result
            else:
                from repro.kernels import registry as kernel_registry

                kernel_registry.record_fallback(
                    "directory", self.kernel_fallback_reason
                )
            return self._run_packed(packed)
        access = self.access
        for acc in trace:
            access(acc.proc, acc.op is Op.WRITE, acc.addr)
        return self.stats

    def _run_packed(self, packed) -> MessageStats:
        """Replay packed columns, retiring plain hits inline.

        A read hit, or a write hit on an exclusively-held line, needs no
        protocol transition and no message charge — only an LRU touch and
        a counter bump — so those retire without leaving the loop; every
        other access falls through to :meth:`_access_block`.  The block
        column is precomputed once per (trace, block size) by
        ``packed.blocks_column``.
        """
        blocks = packed.blocks_column(self._block_shift)
        procs = packed.procs
        ops = packed.ops
        caches = self.caches
        access = self._access_block
        excl = CState.EXCL
        read_hits = 0
        write_hits = 0
        first = caches[0] if caches else None
        if type(first) is SetAssociativeCache:
            sets_by_proc = [cache.hot_sets()[0] for cache in caches]
            _, num_sets, lru = first.hot_sets()
            if lru:
                for proc, is_write, block in zip(procs, ops, blocks):
                    cset = sets_by_proc[proc][block % num_sets]
                    line = cset.get(block)
                    if line is not None:
                        if not is_write:
                            cset.move_to_end(block)
                            read_hits += 1
                            continue
                        if line.state is excl:
                            line.dirty = True
                            cset.move_to_end(block)
                            write_hits += 1
                            continue
                    access(proc, is_write, block)
            else:
                for proc, is_write, block in zip(procs, ops, blocks):
                    line = sets_by_proc[proc][block % num_sets].get(block)
                    if line is not None:
                        if not is_write:
                            read_hits += 1
                            continue
                        if line.state is excl:
                            line.dirty = True
                            write_hits += 1
                            continue
                    access(proc, is_write, block)
        elif type(first) is InfiniteCache:
            lines_by_proc = [cache.hot_lines() for cache in caches]
            for proc, is_write, block in zip(procs, ops, blocks):
                line = lines_by_proc[proc].get(block)
                if line is not None:
                    if not is_write:
                        read_hits += 1
                        continue
                    if line.state is excl:
                        line.dirty = True
                        write_hits += 1
                        continue
                access(proc, is_write, block)
        else:
            for proc, is_write, block in zip(procs, ops, blocks):
                access(proc, is_write, block)
        self.cache_stats.read_hits += read_hits
        self.cache_stats.write_hits += write_hits
        if self.step_hook is not None:
            raise ProtocolError(
                "step_hook installed mid-replay on the packed fast path: "
                "the hook missed every earlier step, so its observations "
                "are unreliable; install it before run() to take the "
                "generic per-access path"
            )
        return self.stats

    def run_with_hints(
        self, trace: Iterable[Access], hints: Iterable[bool]
    ) -> MessageStats:
        """Process a trace with aligned read-exclusive hints.

        Hinted reads that miss fetch the block with ownership (one
        transaction), modelling a load-with-intent-to-modify instruction
        (see :mod:`repro.analysis.oracle`).
        """
        for acc, hint in zip(trace, hints):
            self.access(acc.proc, acc.op is Op.WRITE, acc.addr,
                        exclusive_hint=hint)
        return self.stats

    def access(
        self, proc: int, is_write: bool, addr: int,
        exclusive_hint: bool = False,
    ) -> None:
        """Process a single reference from ``proc`` to byte ``addr``.

        Args:
            exclusive_hint: for reads, fetch ownership on a miss (the
                off-line read-exclusive oracle); ignored for writes and
                read hits.
        """
        self._access_block(
            proc, is_write, addr >> self._block_shift, exclusive_hint
        )

    def _access_block(
        self, proc: int, is_write: bool, block: int,
        exclusive_hint: bool = False,
    ) -> None:
        """Process one reference given its block number directly.

        Everything downstream of the address is a function of the block
        (page homes derive from ``block << block_shift``), so the packed
        replay loop resolves blocks once per trace and enters here.
        """
        cache = self.caches[proc]
        line = cache.lookup(block)
        if not is_write:
            if line is not None:
                cache.touch(block)
                self.cache_stats.read_hits += 1
                if self._check:
                    self._check_read(block, line)
                return
            self.cache_stats.read_misses += 1
            if exclusive_hint:
                self._read_exclusive_miss(proc, block)
            else:
                self._read_miss(proc, block)
            if self._check:
                self._check_block(proc, block)
            if self.step_hook is not None:
                self.step_hook(self, proc, block)
            return
        if line is not None:
            if line.state is CState.EXCL:
                # Silent write: the node already holds write permission
                # (either it wrote before, or the block migrated in).
                line.dirty = True
                cache.touch(block)
                self.cache_stats.write_hits += 1
                self._bump_version(block, line)
                return
            self.cache_stats.write_hits += 1
            self._write_hit_shared(proc, block, line)
        else:
            self.cache_stats.write_misses += 1
            self._write_miss(proc, block)
        if self._check:
            self._check_block(proc, block)
        if self.step_hook is not None:
            self.step_hook(self, proc, block)

    def block_extra(self, block: int):
        """Per-block adaptation state beyond the directory entry.

        Family machines (see :mod:`repro.protocols`) whose decisions
        depend on more than the entry and the lines expose that state
        here so the bounded model checker can fold it into its global
        states.  ``None`` must mean "indistinguishable from a
        never-seen block".
        """
        return None

    def set_block_extra(self, block: int, extra) -> None:
        """Restore state previously returned by :meth:`block_extra`."""
        if extra is not None:
            raise ProtocolError(
                f"{type(self).__name__} keeps no per-block extra state"
            )

    # ------------------------------------------------------------------
    # Miss and upgrade handling
    # ------------------------------------------------------------------

    def _home_of(self, block: int, proc: int) -> int:
        return self.placement.home(block >> self._home_shift, proc)

    def _dirty_owner(self, block: int, copyset: set[int]) -> int | None:
        # A dirty copy can only exist while the copy set is a singleton:
        # every path that dirties a line (write miss, shared write hit,
        # silent write on an exclusive copy) first collapses the copy set
        # to the writer, and every path that adds a sharer flushes or
        # demotes the exclusive holder.  Larger copy sets therefore never
        # hold a dirty line, and the scan short-circuits.
        if len(copyset) == 1:
            (node,) = copyset
            line = self.caches[node].lookup(block)
            if line is not None and line.dirty:
                return node
        return None

    def _charge(self, cause: str, block: int, short: int, data: int) -> None:
        # Open-coded MessageStats.charge (counts from the helpers in
        # repro.interconnect.costs are already validated non-negative).
        stats = self.stats
        stats.short += short
        stats.data += data
        if short:
            stats.by_cause_short[cause] += short
        if data:
            stats.by_cause_data[cause] += data
        if self.block_messages is not None and (short or data):
            self.block_messages[block] = (
                self.block_messages.get(block, 0) + short + data
            )

    def _read_miss(self, proc: int, block: int) -> None:
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        dirty_owner = self._dirty_owner(block, ent.copyset)
        dirty = dirty_owner is not None
        was_migratory = ent.state is DirState.ONE_COPY_MIG
        migrate = self.protocol.read_miss(block, proc, dirty)
        home_local = home == proc
        if migrate:
            if dirty:
                dc = len(ent.copyset - {proc, home})
                short, data = read_miss_counts(home_local, True, dc)
                self.caches[dirty_owner].remove(block)
                ent.copyset.discard(dirty_owner)
            else:
                # Reloading a remembered-migratory block from memory.
                short, data = read_miss_counts(home_local, False, 0)
            self._charge("read_miss", block, short, data)
            self._fill(proc, block, CState.EXCL, dirty=False)
        else:
            if dirty:
                dc = len(ent.copyset - {proc, home})
                short, data = read_miss_counts(home_local, True, dc)
                owner_line = self.caches[dirty_owner].lookup(block)
                owner_line.state = CState.SHARED
                owner_line.dirty = False  # flushed to memory
            else:
                # Table 1 charges by the block's actual status: a *clean*
                # block — including a clean migratory one being demoted —
                # costs an ordinary clean read miss (memory is up to
                # date).  The paper's own accounting works this way, which
                # is why the aggressive protocol's data-message counts
                # barely rise on read-shared data (Table 2).
                short, data = read_miss_counts(home_local, False, 0)
                if was_migratory or len(ent.copyset) == 1:
                    # Revoke any clean-exclusive holder's silent-write
                    # permission (a demoted migratory copy or a hinted
                    # read-exclusive fill).  Exclusive copies only exist
                    # when the copy set is a singleton.
                    for node in ent.copyset:
                        owner_line = self.caches[node].lookup(block)
                        if owner_line is not None:
                            owner_line.state = CState.SHARED
            self._charge("read_miss", block, short, data)
            self._fill(proc, block, CState.SHARED, dirty=False)
        ent.copyset.add(proc)
        victim = self.representation.on_sharer_added(ent, proc)
        if victim is not None:
            # Dir_iNB pointer overflow: forcibly invalidate one sharer
            # (request + acknowledgement) to keep the directory exact.
            self.caches[victim].remove(block)
            ent.copyset.discard(victim)
            cost = 2 if victim != home else 0
            self._charge("pointer_eviction", block, cost, 0)

    def _read_exclusive_miss(self, proc: int, block: int) -> None:
        """A hinted read miss: fetch the block with ownership.

        Charged as a write miss (the fetch and the invalidations happen
        in one transaction); the line arrives exclusive-clean so the
        predicted write completes silently.
        """
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        dirty_owner = self._dirty_owner(block, ent.copyset)
        dirty = dirty_owner is not None
        self.protocol.write_miss(block, proc, dirty)
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_miss_counts(home == proc, dirty, dc)
        self._charge("read_exclusive", block, short, data)
        for node in ent.copyset:
            self.caches[node].remove(block)
        ent.copyset.clear()
        self._fill(proc, block, CState.EXCL, dirty=False)
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)

    def _write_miss(self, proc: int, block: int) -> None:
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        dirty_owner = self._dirty_owner(block, ent.copyset)
        dirty = dirty_owner is not None
        self.protocol.write_miss(block, proc, dirty)
        home_local = home == proc
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_miss_counts(home_local, dirty, dc)
        self._charge("write_miss", block, short, data)
        if ent.copyset:
            self.invalidation_sizes[len(ent.copyset)] += 1
        for node in ent.copyset:
            self.caches[node].remove(block)
        ent.copyset.clear()
        self._fill(proc, block, CState.EXCL, dirty=True)
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)
        self._bump_version(block, self.caches[proc].lookup(block))

    def _write_hit_shared(self, proc: int, block: int, line: CacheLine) -> None:
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        others = ent.copyset - {proc}
        self.protocol.write_hit(block, proc, sole_copy=not others)
        home_local = home == proc
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_hit_counts(home_local, dc)
        self._charge("write_hit", block, short, data)
        if others:
            self.invalidation_sizes[len(others)] += 1
        for node in others:
            self.caches[node].remove(block)
        ent.copyset.intersection_update({proc})
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)
        line.state = CState.EXCL
        line.dirty = True
        self.caches[proc].touch(block)
        self.cache_stats.upgrades += 1
        self._bump_version(block, line)

    def _fill(self, proc: int, block: int, state: CState, dirty: bool) -> None:
        victim = self.caches[proc].insert(block, state, dirty)
        if self._check:
            line = self.caches[proc].lookup(block)
            line.version = self._latest.get(block, 0)
        if victim is not None:
            self._evict(proc, victim)

    def _evict(self, proc: int, victim: CacheLine) -> None:
        vblock = victim.block
        home = self._home_of(vblock, proc)
        short, data = eviction_counts(
            victim.dirty, home == proc, self.config.eviction_notification
        )
        self._charge("eviction", vblock, short, data)
        if victim.dirty:
            self.cache_stats.evictions_dirty += 1
        else:
            self.cache_stats.evictions_clean += 1
        ent = self.protocol.peek(vblock)
        if ent is None:
            raise ProtocolError(f"evicting block {vblock} with no directory entry")
        if victim.dirty or self.config.eviction_notification:
            ent.copyset.discard(proc)
            if not ent.copyset:
                self.representation.on_exclusive(ent)
                self.protocol.note_uncached(vblock)

    # ------------------------------------------------------------------
    # Coherence checker (tests only)
    # ------------------------------------------------------------------

    def _bump_version(self, block: int, line: CacheLine) -> None:
        if not self._check:
            return
        self._version_counter += 1
        self._latest[block] = self._version_counter
        line.version = self._version_counter

    def _check_read(self, block: int, line: CacheLine) -> None:
        latest = self._latest.get(block, 0)
        if line.version != latest:
            raise ProtocolError(
                f"stale read of block {block}: copy has version "
                f"{line.version}, latest write is {latest}"
            )

    def _check_block(self, proc: int, block: int) -> None:
        """Verify structural invariants for one block after an operation."""
        check_directory_block(self, block)
        line = self.caches[proc].lookup(block)
        if line is not None:
            self._check_read(block, line)
