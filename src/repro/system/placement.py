"""Page-to-home-node placement policies.

The assignment of data pages to nodes determines how often coherence
operations cross node boundaries (Section 3.3).  The paper's trace-driven
simulator finds a good *static* placement (in the spirit of Bolosky et al.
and Stenström et al.), while its execution-driven simulator uses standard
round-robin allocation — the gap between the two explains the smaller
message savings observed in Section 4.2.

Three policies are provided:

* :class:`RoundRobinPlacement` — page ``p`` lives at node ``p mod N``.
* :class:`FirstTouchPlacement` — a page's home is the first node to
  access it.
* :class:`BestStaticPlacement` — a two-pass policy: a profiling pass
  counts accesses per page per node, then each page is homed at its
  majority accessor.  This stands in for the paper's "simple dynamic
  technique for finding a good static placement".
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.common.config import MachineConfig
from repro.common.types import Access


class PagePlacement:
    """Maps page numbers to home nodes."""

    __slots__ = ()

    def home(self, page: int, accessor: int) -> int:
        """Return the home node of ``page``.

        Args:
            page: page number.
            accessor: the node currently accessing the page; used by
                first-touch placement, ignored by static policies.
        """
        raise NotImplementedError


class RoundRobinPlacement(PagePlacement):
    """Standard round-robin allocation (used by Section 4.2)."""

    __slots__ = ("_num_procs",)

    def __init__(self, num_procs: int):
        self._num_procs = num_procs

    def home(self, page: int, accessor: int) -> int:
        return page % self._num_procs


class FirstTouchPlacement(PagePlacement):
    """Each page is homed at the first node that touches it."""

    __slots__ = ("_homes",)

    def __init__(self) -> None:
        self._homes: dict[int, int] = {}

    def home(self, page: int, accessor: int) -> int:
        node = self._homes.get(page)
        if node is None:
            node = accessor
            self._homes[page] = node
        return node


class BestStaticPlacement(PagePlacement):
    """Majority-accessor static placement derived from a profiling pass."""

    __slots__ = ("_homes", "_fallback")

    def __init__(self, homes: dict[int, int], fallback_procs: int):
        self._homes = homes
        self._fallback = RoundRobinPlacement(fallback_procs)

    @classmethod
    def from_trace(
        cls, trace: Iterable[Access], config: MachineConfig
    ) -> "BestStaticPlacement":
        """Profile ``trace`` and home every page at its majority accessor.

        Pages never seen in the profiling pass fall back to round-robin.
        Packable traces (``iter_packed``) profile over the raw columns
        without materialising ``Access`` objects.
        """
        counts: dict[int, Counter] = {}
        page_size = config.page_size
        iter_packed = getattr(trace, "iter_packed", None)
        if iter_packed is not None:
            pairs = ((addr // page_size, proc)
                     for proc, _is_write, addr in iter_packed())
        else:
            pairs = ((acc.addr // page_size, acc.proc) for acc in trace)
        for page, proc in pairs:
            per_page = counts.get(page)
            if per_page is None:
                per_page = Counter()
                counts[page] = per_page
            per_page[proc] += 1
        homes = {page: counter.most_common(1)[0][0] for page, counter in counts.items()}
        return cls(homes, config.num_procs)

    def home(self, page: int, accessor: int) -> int:
        node = self._homes.get(page)
        if node is None:
            return self._fallback.home(page, accessor)
        return node


def make_placement(
    kind: str,
    config: MachineConfig,
    trace: Iterable[Access] | None = None,
) -> PagePlacement:
    """Construct a placement policy by name.

    Args:
        kind: ``"round_robin"``, ``"first_touch"`` or ``"best_static"``.
        config: machine parameters (for page size / node count).
        trace: required for ``"best_static"``; the profiling input.
    """
    if kind == "round_robin":
        return RoundRobinPlacement(config.num_procs)
    if kind == "first_touch":
        return FirstTouchPlacement()
    if kind == "best_static":
        if trace is None:
            raise ValueError("best_static placement needs a profiling trace")
        return BestStaticPlacement.from_trace(trace, config)
    raise ValueError(f"unknown placement kind: {kind!r}")
