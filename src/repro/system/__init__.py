"""Machine assembly: CC-NUMA directory machine, bus machine, placement."""

from repro.system.machine import CState, DirectoryMachine
from repro.system.placement import (
    BestStaticPlacement,
    FirstTouchPlacement,
    PagePlacement,
    RoundRobinPlacement,
    make_placement,
)

__all__ = [
    "BestStaticPlacement",
    "CState",
    "DirectoryMachine",
    "FirstTouchPlacement",
    "PagePlacement",
    "RoundRobinPlacement",
    "make_placement",
]
