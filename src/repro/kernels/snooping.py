"""Table-driven replay for :class:`repro.snooping.machine.BusMachine`.

The bus analogue of :mod:`repro.kernels.directory`: with no evictions,
each block's snoop life is an independent finite state machine over the
per-processor line states (and, for the competitive-update family, the
per-copy staleness counters).  The kernel packs that state into one
integer — ``field_bits`` bits per processor, state index in the low
three bits, counter above — grows a single DFA lazily (bus charges do
not depend on a home node, so one sub-DFA covers every block), and
replays each block's symbol sequence as a tight walk appending one
interned delta index per access.

Finite geometries replay on the same tables: cache sets that can never
evict keep the per-block walks, and each conflict set replays as one
interleaved group walk (:func:`_walk_bus_group`) carrying per-processor
recency order, popping LRU/FIFO victims exactly as
``SetAssociativeCache.insert`` does (a dirty victim is one writeback
transaction; clean replacement is silent on a bus) and re-entering the
victim's walk at its post-eviction state.  Symbol sequences switch to
the 16-bit wide encoding past 128 processors, with chunk-skipping
holder decodes, raising the processor cap to 1024.

Multi-holder bus requests are composed from the compiler's single-holder
probes: every holder's reaction depends only on its own line, and the
requester fill / writer upgrade is the highest-:data:`RANK` candidate
(migratory beats shared beats default — exactly the wired-OR of the
Migratory and Shared bus lines).  A rank tie between *different*
candidates has no wired-OR reading, so the walk aborts to the packed
loop rather than guess.

``try_replay`` returns ``None`` without touching the machine whenever
the replay falls outside the kernel envelope; the caller then runs the
packed loop, keeping behavior identical.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.core import InfiniteCache, SetAssociativeCache
from repro.common.errors import ProtocolError
from repro.common.stats import BusStats, CacheStats
from repro.kernels import registry
from repro.kernels.tables import (
    DIRTY_SNOOP,
    RANK,
    SNOOP_STATES,
    KernelUnsupported,
)

# Delta vector layout (all additive):
# 0 read_hits  1 read_misses  2 write_hits  3 write_misses  4 upgrades
# 5 bus read_miss  6 bus write_miss  7 invalidation  8 update
_VEC = 9

#: Delta slot charged for a bus write hit, by transaction kind.
_WH_SLOT = {"invalidation": 7, "update": 8}

#: Processor cap: symbols must fit the 16-bit wide encoding.
_MAX_PROCS = 1024


def _fallback(reason: str):
    """Count one fallback and return ``None`` (the try_replay contract)."""
    return registry.record_fallback("bus", reason)


def _holders(key: int, fb: int, skip: int) -> list[tuple[int, int, int]]:
    """Decode the packed fields into ``(node, state, counter)`` triples,
    skipping the requester (whose line is not snooped).

    Scans eight processors per step so wide-processor keys with sparse
    holders skip empty regions in one shift.
    """
    mask = (1 << fb) - 1
    cb = 8 * fb
    cmask = (1 << cb) - 1
    holders = []
    p = 0
    while key:
        chunk = key & cmask
        if chunk:
            q = p
            while chunk:
                f = chunk & mask
                if f and q != skip:
                    holders.append((q, f & 7, f >> 3))
                chunk >>= fb
                q += 1
        key >>= cb
        p += 8
    return holders


def _prefer(best, cand):
    """Wired-OR composition of per-holder outcomes: highest rank wins.

    ``best``/``cand`` are ``(state, counter)`` pairs (requester fills
    carry counter 0).  Equal candidates collapse; a rank tie between
    different candidates means the single-holder probes cannot be
    composed, so the walk falls back.
    """
    if best is None or cand == best:
        return cand
    rb, rc = RANK[best[0]], RANK[cand[0]]
    if rb == rc:
        raise KernelUnsupported("ambiguous multi-holder snoop combination")
    return cand if rc > rb else best


def _expand(table, node: list, sym: int):
    """Grow one DFA edge by running the integer protocol semantics.

    Mirrors ``BusMachine._access_block`` exactly: the packed fields play
    the caches, the compiled rows play the protocol handlers, and the
    transaction/event charges are evaluated here — once per edge, never
    per access.
    """
    rows = table.rows
    key = node[-1]
    proc = sym >> 1
    fb = table.field_bits
    mask = (1 << fb) - 1
    shift = fb * proc
    pf = (key >> shift) & mask
    ps = pf & 7
    d = [0] * _VEC
    nkey = key
    if not sym & 1:
        if ps:
            d[0] = 1  # read hit: touch plus the protocol's read_hit hook
            s, c = rows.read_hit[(ps, pf >> 3)]
            nkey = key & ~(mask << shift) | (s | c << 3) << shift
        else:
            d[1] = d[5] = 1
            fill = None
            for p, s, c in _holders(key, fb, proc):
                ns, nc, fs, _fd = rows.read_react[(s, c)]
                pos = fb * p
                nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
                fill = _prefer(fill, (fs, 0))
            if fill is None:
                fill = (rows.read_cold[0], 0)
            nkey |= (fill[0] | fill[1] << 3) << shift
    elif ps:
        d[2] = 1
        if rows.needs_bus[ps]:
            d[4] = 1  # upgrade
            d[_WH_SLOT[rows.wh_kind]] = 1
            local = None
            for p, s, c in _holders(key, fb, proc):
                ns, nc = rows.wh_remote[(s, c)]
                pos = fb * p
                nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
                local = _prefer(local, rows.wh_local[(ps, s, c)])
            if local is None:
                local = rows.wh_local_cold[ps]
            nkey = nkey & ~(mask << shift) | (local[0] | local[1] << 3) << shift
        else:
            # Bus-silent write; the staleness counter is untouched.
            ns = rows.silent[ps]
            nkey = key & ~(mask << shift) | (ns | (pf >> 3) << 3) << shift
    else:
        d[3] = d[6] = 1
        fill = None
        for p, s, c in _holders(key, fb, proc):
            ns, nc, fs, _fd = rows.write_react[(s, c)]
            pos = fb * p
            nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
            fill = _prefer(fill, (fs, 0))
        if fill is None:
            fill = (rows.write_cold[0], 0)
        nkey |= (fill[0] | fill[1] << 3) << shift
    # The third slot holds the lazily-computed eviction metadata
    # (miss/removal summary) the group walks need; plain walks never
    # touch it (see _edge_meta).
    edge = node[sym] = [table.node(nkey, nkey), table.intern_delta(tuple(d)), None]
    return edge


def _edge_meta(src_key: int, dst_key: int, sym: int, fb: int):
    """``(is_miss, removed)`` summary of one edge, for set bookkeeping.

    ``is_miss`` is whether the requester filled a line (its field was 0),
    ``removed`` the processors whose copy this access destroyed
    (invalidated holders: field nonzero -> 0).  Computed once per edge
    on first use by a group walk and memoised in the edge's third slot.
    """
    proc = sym >> 1
    mask = (1 << fb) - 1
    cb = 8 * fb
    cmask = (1 << cb) - 1
    is_miss = not (src_key >> (fb * proc)) & mask
    removed = []
    p = 0
    src, dst = src_key, dst_key
    while src:
        schunk = src & cmask
        if schunk != dst & cmask:
            tchunk = dst & cmask
            q = p
            while schunk:
                if (schunk & mask) and not tchunk & mask:
                    removed.append(q)
                schunk >>= fb
                tchunk >>= fb
                q += 1
        src >>= cb
        dst >>= cb
        p += 8
    return (is_miss, tuple(removed))


def _delta_counts(out: list[int]):
    """Occurrence counts of each delta index, via C-level byte scans."""
    distinct = set(out)
    try:
        buf = bytes(out)
    except ValueError:  # more than 256 interned deltas in this table
        return Counter(out).items()
    return [(idx, buf.count(idx)) for idx in distinct]


def _aggregate(table, out: list[int]) -> tuple:
    """Sum a walk's delta indices into a totals tuple."""
    totals = [0] * _VEC
    deltas = table.deltas
    for idx, count in _delta_counts(out):
        totals = [t + count * v for t, v in zip(totals, deltas[idx])]
    return tuple(totals)


def _walk(table, root: list, syms):
    """Replay one block's symbol sequence; return the walk summary.

    ``syms`` is any iterable of symbol ints — the byte string of
    :meth:`block_sequences` or a ``memoryview('H')`` over the wide form.
    """
    node = root
    out: list[int] = []
    append = out.append
    for sym in syms:
        edge = node[sym]
        if edge is None:
            edge = _expand(table, node, sym)
        append(edge[1])
        node = edge[0]
    return _aggregate(table, out), node[-1]


def _walk_bus_group(table, count: int, stream, ways: int, lru: bool):
    """Replay one conflict set's interleaved access stream.

    ``stream`` entries are ``(dense_block_id << 32) | symbol``
    (:meth:`PackedTrace.set_streams`) over ``count`` distinct blocks.
    The walk advances each block's DFA node exactly like the
    independent walks, and additionally mirrors the machine's per-set
    replacement state: ``resident[proc]`` is that processor's recency
    list for this set (oldest first), updated on fills, invalidations,
    and — for LRU — hits.  A fill into a full set pops the victim and
    clears its field; a dirty victim is one writeback transaction,
    clean replacement is silent.  The victim's walk re-enters at the
    post-eviction node: the segment restart.

    Returns ``(totals, final_keys, recency, (writebacks, dirty,
    clean))``.
    """
    fb = table.field_bits
    node_of = table.node
    nodes = [node_of(0, 0) for _ in range(count)]
    resident: dict[int, list[int]] = {}
    out: list[int] = []
    append = out.append
    writebacks = ev_dirty = ev_clean = 0
    dirty_states = DIRTY_SNOOP
    for entry in stream:
        dense = entry >> 32
        sym = entry & 0xFFFFFFFF
        node = nodes[dense]
        edge = node[sym]
        if edge is None:
            edge = _expand(table, node, sym)
        meta = edge[2]
        if meta is None:
            meta = edge[2] = _edge_meta(node[-1], edge[0][-1], sym, fb)
        append(edge[1])
        nodes[dense] = edge[0]
        proc = sym >> 1
        if meta[1]:
            for q in meta[1]:
                resident[q].remove(dense)
        rp = resident.get(proc)
        if rp is None:
            rp = resident[proc] = []
        if meta[0]:
            # A fill; evict the oldest line first when the set is full,
            # exactly as SetAssociativeCache.insert does.
            if len(rp) >= ways:
                victim = rp.pop(0)
                vnode = nodes[victim]
                vkey = vnode[-1]
                vshift = fb * proc
                vf = (vkey >> vshift) & ((1 << fb) - 1)
                if vf & 7 in dirty_states:
                    writebacks += 1
                    ev_dirty += 1
                else:
                    ev_clean += 1
                nvkey = vkey & ~(((1 << fb) - 1) << vshift)
                nodes[victim] = node_of(nvkey, nvkey)
            rp.append(dense)
        elif lru:
            rp.remove(dense)
            rp.append(dense)
    finals = tuple(node[-1] for node in nodes)
    recency = tuple(
        (proc, tuple(ids))
        for proc, ids in sorted(resident.items()) if ids
    )
    return (_aggregate(table, out), finals, recency,
            (writebacks, ev_dirty, ev_clean))


def try_replay(machine, packed):
    """Replay ``packed`` on the kernel, or return ``None`` untouched.

    The envelope (each gate falls back to the packed loop, which is
    always correct): kernels enabled; an exactly-shipped protocol type
    (checked by the compiler); processor ids packable (<= 1024); and a
    fresh machine.  Finite geometries replay eviction-aware: sets that
    can never evict take the independent per-block walks, conflict sets
    take the grouped recency walks.  Random replacement is the one
    genuinely unsupported finite geometry (its RNG draws are
    unobservable from here) and falls back by that name.
    """
    if not registry.kernels_enabled():
        return _fallback("disabled")
    config = machine.config
    num_procs = config.num_procs
    if num_procs > _MAX_PROCS:
        return _fallback("num-procs")
    if packed.num_procs > num_procs:
        return _fallback("trace-procs")
    if (machine.bus_stats != BusStats()
            or machine.cache_stats != CacheStats()
            or any(len(cache) for cache in machine.caches)):
        return _fallback("not-fresh")
    first = machine.caches[0] if machine.caches else None
    finite = type(first) is SetAssociativeCache
    if not finite and type(first) is not InfiniteCache:
        return _fallback("cache-type")
    wide = packed.num_procs > 128
    try:
        if wide:
            seqs = packed.block_sequences_wide(machine._block_shift)
        else:
            seqs = packed.block_sequences(machine._block_shift)
    except (ValueError, OverflowError):  # a processor id out of range
        return _fallback("symbol-range")
    conflicts: dict = {}
    lru = False
    ways = 0
    if finite:
        ways = config.cache.associativity
        conflicts = packed.set_streams(
            machine._block_shift, config.cache.num_sets, ways
        )
        if conflicts:
            replacement = config.cache.replacement
            if replacement == "random":
                # The per-cache replacement RNG is unobservable here.
                return _fallback("replacement-random")
            lru = replacement == "lru"
    family_reason = getattr(machine.protocol, "kernel_fallback_reason", None)
    if family_reason is not None:
        # The protocol family declares itself outside the DFA
        # abstraction (see repro.protocols.registry): name the fallback
        # honestly instead of probing a table that cannot exist.
        return _fallback(family_reason)
    try:
        table = registry.bus_table(machine.protocol, num_procs)
    except (KernelUnsupported, ProtocolError):
        return _fallback("table-unsupported")
    conflict_blocks: set[int] = set()
    for blocks, _stream in conflicts.values():
        conflict_blocks.update(blocks)
    seq_results = table.seq_results
    totals = [0] * _VEC
    finals: list[tuple[int, int]] = []
    groups: list[tuple] = []
    ev_totals = (0, 0, 0)
    try:
        for block, seq in seqs.items():
            if block in conflict_blocks:
                continue
            seq_key = (seq, 1) if wide else seq
            result = seq_results.get(seq_key)
            if result is None:
                root = table.node(0, 0)
                syms = memoryview(seq).cast("H") if wide else seq
                result = _walk(table, root, syms)
                table.cache_seq_result(seq_key, result)
            vec, final_key = result
            totals = [a + b for a, b in zip(totals, vec)]
            finals.append((block, final_key))
        for blocks, stream in conflicts.values():
            group_key = (ways, lru, stream.tobytes())
            result = table.group_results.get(group_key)
            if result is None:
                result = _walk_bus_group(table, len(blocks), stream, ways, lru)
                table.cache_group_result(group_key, result)
            vec, gfinals, recency, gev = result
            totals = [a + b for a, b in zip(totals, vec)]
            ev_totals = tuple(a + b for a, b in zip(ev_totals, gev))
            groups.append((blocks, gfinals, recency))
    except (KernelUnsupported, KeyError):
        # DFA capacity, an un-probed combination, or an uncomposable
        # multi-holder snoop: the machine is untouched (mutation happens
        # only below), so the packed loop can still run the replay.
        return _fallback("walk-abort")
    _apply(machine, table, totals, finals)
    if groups:
        _apply_groups(machine, table, groups)
    if any(ev_totals):
        _apply_evictions(machine, ev_totals)
    registry.engagements["bus"] += 1
    if machine.step_hook is not None:
        raise ProtocolError(
            "step_hook installed mid-replay on the table-driven kernel "
            "path: the hook missed every earlier step, so its "
            "observations are unreliable; install it before run() to "
            "take the generic per-access path"
        )
    return machine.bus_stats


def _insert_line(cache, block: int, field: int) -> None:
    """Re-insert one line from its packed field (state + counter)."""
    s = field & 7
    cache.insert(block, SNOOP_STATES[s], s in DIRTY_SNOOP)
    if field >> 3:
        cache.lookup(block).counter = field >> 3


def _apply(machine, table, totals, finals) -> None:
    """Write the walk totals and final per-block lines into the machine.

    ``by_kind`` keys are only created for nonzero totals, matching the
    object engine's lazy population.  Cache lines are re-inserted in
    first-touch block order; these blocks' sets never evicted, so the
    recency order is unobservable and this canonical order is as good
    as the historical one.
    """
    cache_stats = machine.cache_stats
    cache_stats.read_hits += totals[0]
    cache_stats.read_misses += totals[1]
    cache_stats.write_hits += totals[2]
    cache_stats.write_misses += totals[3]
    cache_stats.upgrades += totals[4]
    bus = machine.bus_stats
    bus.read_miss += totals[5]
    bus.write_miss += totals[6]
    bus.invalidation += totals[7]
    bus.update += totals[8]
    for kind, i in (("read_miss", 5), ("write_miss", 6),
                    ("invalidation", 7), ("update", 8)):
        if totals[i]:
            bus.by_kind[kind] += totals[i]
    caches = machine.caches
    fb = table.field_bits
    mask = (1 << fb) - 1
    for block, final_key in finals:
        p = 0
        while final_key:
            f = final_key & mask
            if f:
                _insert_line(caches[p], block, f)
            final_key >>= fb
            p += 1


def _apply_groups(machine, table, groups) -> None:
    """Write the conflict-set walk results into the machine.

    Each processor's lines are re-inserted in the walk's final recency
    order (oldest first), so the machine's per-set ordering — observable
    by any further accesses after the replay — matches the packed loop's
    exactly.
    """
    caches = machine.caches
    fb = table.field_bits
    mask = (1 << fb) - 1
    for blocks, gfinals, recency in groups:
        for proc, order in recency:
            cache = caches[proc]
            for dense in order:
                f = (gfinals[dense] >> (fb * proc)) & mask
                _insert_line(cache, blocks[dense], f)


def _apply_evictions(machine, ev_totals) -> None:
    """Charge the group walks' replacement traffic into the machine."""
    writebacks, dirty, clean = ev_totals
    if writebacks:
        bus = machine.bus_stats
        bus.writeback += writebacks
        bus.by_kind["writeback"] += writebacks
    machine.cache_stats.evictions_dirty += dirty
    machine.cache_stats.evictions_clean += clean
