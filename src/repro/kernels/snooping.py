"""Table-driven replay for :class:`repro.snooping.machine.BusMachine`.

The bus analogue of :mod:`repro.kernels.directory`: with no evictions,
each block's snoop life is an independent finite state machine over the
per-processor line states (and, for the competitive-update family, the
per-copy staleness counters).  The kernel packs that state into one
integer — ``field_bits`` bits per processor, state index in the low
three bits, counter above — grows a single DFA lazily (bus charges do
not depend on a home node, so one sub-DFA covers every block), and
replays each block's symbol sequence as a tight walk appending one
interned delta index per access.

Multi-holder bus requests are composed from the compiler's single-holder
probes: every holder's reaction depends only on its own line, and the
requester fill / writer upgrade is the highest-:data:`RANK` candidate
(migratory beats shared beats default — exactly the wired-OR of the
Migratory and Shared bus lines).  A rank tie between *different*
candidates has no wired-OR reading, so the walk aborts to the packed
loop rather than guess.

``try_replay`` returns ``None`` without touching the machine whenever
the replay falls outside the kernel envelope; the caller then runs the
packed loop, keeping behavior identical.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.core import InfiniteCache, SetAssociativeCache
from repro.common.errors import ProtocolError
from repro.common.stats import BusStats, CacheStats
from repro.kernels import registry
from repro.kernels.tables import (
    DIRTY_SNOOP,
    RANK,
    SNOOP_STATES,
    KernelUnsupported,
)

# Delta vector layout (all additive):
# 0 read_hits  1 read_misses  2 write_hits  3 write_misses  4 upgrades
# 5 bus read_miss  6 bus write_miss  7 invalidation  8 update
_VEC = 9

#: Delta slot charged for a bus write hit, by transaction kind.
_WH_SLOT = {"invalidation": 7, "update": 8}


def _fallback(reason: str):
    """Count one fallback and return ``None`` (the try_replay contract)."""
    return registry.record_fallback("bus", reason)


def _holders(key: int, fb: int, skip: int) -> list[tuple[int, int, int]]:
    """Decode the packed fields into ``(node, state, counter)`` triples,
    skipping the requester (whose line is not snooped)."""
    mask = (1 << fb) - 1
    holders = []
    p = 0
    while key:
        f = key & mask
        if f and p != skip:
            holders.append((p, f & 7, f >> 3))
        key >>= fb
        p += 1
    return holders


def _prefer(best, cand):
    """Wired-OR composition of per-holder outcomes: highest rank wins.

    ``best``/``cand`` are ``(state, counter)`` pairs (requester fills
    carry counter 0).  Equal candidates collapse; a rank tie between
    different candidates means the single-holder probes cannot be
    composed, so the walk falls back.
    """
    if best is None or cand == best:
        return cand
    rb, rc = RANK[best[0]], RANK[cand[0]]
    if rb == rc:
        raise KernelUnsupported("ambiguous multi-holder snoop combination")
    return cand if rc > rb else best


def _expand(table, node: list, sym: int):
    """Grow one DFA edge by running the integer protocol semantics.

    Mirrors ``BusMachine._access_block`` exactly: the packed fields play
    the caches, the compiled rows play the protocol handlers, and the
    transaction/event charges are evaluated here — once per edge, never
    per access.
    """
    rows = table.rows
    key = node[-1]
    proc = sym >> 1
    fb = table.field_bits
    mask = (1 << fb) - 1
    shift = fb * proc
    pf = (key >> shift) & mask
    ps = pf & 7
    d = [0] * _VEC
    nkey = key
    if not sym & 1:
        if ps:
            d[0] = 1  # read hit: touch plus the protocol's read_hit hook
            s, c = rows.read_hit[(ps, pf >> 3)]
            nkey = key & ~(mask << shift) | (s | c << 3) << shift
        else:
            d[1] = d[5] = 1
            fill = None
            for p, s, c in _holders(key, fb, proc):
                ns, nc, fs, _fd = rows.read_react[(s, c)]
                pos = fb * p
                nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
                fill = _prefer(fill, (fs, 0))
            if fill is None:
                fill = (rows.read_cold[0], 0)
            nkey |= (fill[0] | fill[1] << 3) << shift
    elif ps:
        d[2] = 1
        if rows.needs_bus[ps]:
            d[4] = 1  # upgrade
            d[_WH_SLOT[rows.wh_kind]] = 1
            local = None
            for p, s, c in _holders(key, fb, proc):
                ns, nc = rows.wh_remote[(s, c)]
                pos = fb * p
                nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
                local = _prefer(local, rows.wh_local[(ps, s, c)])
            if local is None:
                local = rows.wh_local_cold[ps]
            nkey = nkey & ~(mask << shift) | (local[0] | local[1] << 3) << shift
        else:
            # Bus-silent write; the staleness counter is untouched.
            ns = rows.silent[ps]
            nkey = key & ~(mask << shift) | (ns | (pf >> 3) << 3) << shift
    else:
        d[3] = d[6] = 1
        fill = None
        for p, s, c in _holders(key, fb, proc):
            ns, nc, fs, _fd = rows.write_react[(s, c)]
            pos = fb * p
            nkey = nkey & ~(mask << pos) | (ns | nc << 3) << pos
            fill = _prefer(fill, (fs, 0))
        if fill is None:
            fill = (rows.write_cold[0], 0)
        nkey |= (fill[0] | fill[1] << 3) << shift
    edge = (table.node(nkey, nkey), table.intern_delta(tuple(d)))
    node[sym] = edge
    return edge


def _delta_counts(out: list[int]):
    """Occurrence counts of each delta index, via C-level byte scans."""
    distinct = set(out)
    try:
        buf = bytes(out)
    except ValueError:  # more than 256 interned deltas in this table
        return Counter(out).items()
    return [(idx, buf.count(idx)) for idx in distinct]


def _walk(table, root: list, seq: bytes):
    """Replay one block's symbol sequence; return the walk summary."""
    node = root
    out: list[int] = []
    append = out.append
    for sym in seq:
        edge = node[sym]
        if edge is None:
            edge = _expand(table, node, sym)
        append(edge[1])
        node = edge[0]
    totals = [0] * _VEC
    deltas = table.deltas
    for idx, count in _delta_counts(out):
        totals = [t + count * v for t, v in zip(totals, deltas[idx])]
    return tuple(totals), node[-1]


def try_replay(machine, packed):
    """Replay ``packed`` on the kernel, or return ``None`` untouched.

    The envelope (each gate falls back to the packed loop, which is
    always correct): kernels enabled; an exactly-shipped protocol type
    (checked by the compiler); processor ids packable; a fresh machine;
    and an eviction-free replay — infinite caches, or a finite geometry
    where no cache set ever sees more distinct blocks than it has ways,
    so replacement (and its RNG, LRU order, writebacks) cannot be
    observed.
    """
    if not registry.kernels_enabled():
        return _fallback("disabled")
    config = machine.config
    num_procs = config.num_procs
    if num_procs > 128:
        return _fallback("num-procs")
    if packed.num_procs > num_procs:
        return _fallback("trace-procs")
    if (machine.bus_stats != BusStats()
            or machine.cache_stats != CacheStats()
            or any(len(cache) for cache in machine.caches)):
        return _fallback("not-fresh")
    first = machine.caches[0] if machine.caches else None
    finite = type(first) is SetAssociativeCache
    if not finite and type(first) is not InfiniteCache:
        return _fallback("cache-type")
    try:
        seqs = packed.block_sequences(machine._block_shift)
    except ValueError:  # a processor id outside the symbol byte
        return _fallback("symbol-range")
    if finite:
        num_sets = config.cache.num_sets
        ways = config.cache.associativity
        per_set = Counter(block % num_sets for block in seqs)
        if any(count > ways for count in per_set.values()):
            return _fallback("evictions")
    try:
        table = registry.bus_table(machine.protocol, num_procs)
    except (KernelUnsupported, ProtocolError):
        return _fallback("table-unsupported")
    seq_results = table.seq_results
    totals = [0] * _VEC
    finals: list[tuple[int, int]] = []
    try:
        for block, seq in seqs.items():
            result = seq_results.get(seq)
            if result is None:
                root = table.node(0, 0)
                result = _walk(table, root, seq)
                table.cache_seq_result(seq, result)
            vec, final_key = result
            totals = [a + b for a, b in zip(totals, vec)]
            finals.append((block, final_key))
    except (KernelUnsupported, KeyError):
        # DFA capacity, an un-probed combination, or an uncomposable
        # multi-holder snoop: the machine is untouched (mutation happens
        # only below), so the packed loop can still run the replay.
        return _fallback("walk-abort")
    _apply(machine, table, totals, finals)
    registry.engagements["bus"] += 1
    if machine.step_hook is not None:
        raise ProtocolError(
            "step_hook installed mid-replay on the table-driven kernel "
            "path: the hook missed every earlier step, so its "
            "observations are unreliable; install it before run() to "
            "take the generic per-access path"
        )
    return machine.bus_stats


def _apply(machine, table, totals, finals) -> None:
    """Write the walk totals and final per-block lines into the machine.

    ``by_kind`` keys are only created for nonzero totals, matching the
    object engine's lazy population.  Cache lines are re-inserted in
    first-touch block order; with no evictions the recency order is
    unobservable, so this canonical order is as good as the historical
    one.
    """
    cache_stats = machine.cache_stats
    cache_stats.read_hits += totals[0]
    cache_stats.read_misses += totals[1]
    cache_stats.write_hits += totals[2]
    cache_stats.write_misses += totals[3]
    cache_stats.upgrades += totals[4]
    bus = machine.bus_stats
    bus.read_miss += totals[5]
    bus.write_miss += totals[6]
    bus.invalidation += totals[7]
    bus.update += totals[8]
    for kind, i in (("read_miss", 5), ("write_miss", 6),
                    ("invalidation", 7), ("update", 8)):
        if totals[i]:
            bus.by_kind[kind] += totals[i]
    caches = machine.caches
    fb = table.field_bits
    mask = (1 << fb) - 1
    for block, final_key in finals:
        p = 0
        while final_key:
            f = final_key & mask
            if f:
                s = f & 7
                caches[p].insert(block, SNOOP_STATES[s], s in DIRTY_SNOOP)
                if f >> 3:
                    caches[p].lookup(block).counter = f >> 3
            final_key >>= fb
            p += 1
