"""Table-driven replay kernels.

The protocols of the paper are small finite state machines (Figures 1-3),
so replay does not need per-access object dispatch: this package lowers
each snooping protocol and each directory policy into dense integer
transition tables, then replays :class:`repro.trace.packed.PackedTrace`
columns against lazily-grown per-block DFAs whose edges carry precomputed
statistics deltas (cache events, Table 1 message charges, bus
transactions, classification transitions).

Layers:

* :mod:`repro.kernels.tables` — the compiler.  It *probes* the real
  protocol implementations (the technique
  :mod:`repro.experiments.fig2` introduced for regenerating Figure 2)
  over every reachable (state, event, evidence) combination and records
  the outcomes as integer rows.  The rows are deterministic and
  digestable, which is how the result cache keeps its keys honest.
* :mod:`repro.kernels.registry` — process-wide cache of compiled tables
  and their DFAs, plus the engagement counters and the kill switches
  (the ``REPRO_NO_KERNEL`` environment variable and
  :func:`repro.kernels.registry.disabled`).
* :mod:`repro.kernels.directory` / :mod:`repro.kernels.snooping` — the
  interpreters.  ``try_replay(machine, packed)`` either replays the
  whole trace on the kernel and returns the stats object, or returns
  ``None`` (machine untouched) when the replay is outside the kernel's
  envelope, in which case the machine falls through to its packed loop.

The kernels engage automatically from ``DirectoryMachine.run`` /
``BusMachine.run`` under the same guard as the packed fast path (packed
trace, no checker, no ``step_hook``) plus eligibility conditions
documented in ``docs/PERFORMANCE.md``; statistics and final machine
state are bit-identical to the object engines (enforced by the
conformance oracle's kernel-vs-object stage).
"""

from repro.kernels.registry import disabled, engagements, kernels_enabled

__all__ = ["disabled", "engagements", "kernels_enabled"]
