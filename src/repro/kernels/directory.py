"""Table-driven replay for :class:`repro.system.machine.DirectoryMachine`.

With no evictions, cache contents couple blocks only through capacity,
so every block's coherence life is an independent finite state machine:
(per-node line states, directory state, evidence streak, last
invalidator).  The kernel packs that machine state into one integer,
grows a DFA over it lazily (one sub-DFA per home node, since Table 1
charges depend on whether the actor is home), and replays each block's
access sequence (:meth:`PackedTrace.block_sequences`) as a tight
walk appending one interned delta index per access.  Whole-walk results
are cached per (home, sequence), so re-replaying a workload — the
result-cache warm path, sweeps over policies sharing traffic patterns —
reduces to dictionary lookups and integer adds.

``try_replay`` returns ``None`` without touching the machine whenever
the replay falls outside the kernel envelope (see the gate comments);
the caller then runs the packed loop, keeping behavior identical.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.core import InfiniteCache, SetAssociativeCache
from repro.common.errors import ProtocolError
from repro.common.stats import CacheStats, MessageStats
from repro.directory.entry import DirectoryEntry
from repro.directory.protocol import DirectoryProtocol
from repro.directory.representation import FullMapDirectory
from repro.interconnect.costs import (
    read_miss_counts,
    write_hit_counts,
    write_miss_counts,
)
from repro.kernels import registry
from repro.kernels.tables import (
    DIR_STATES,
    KernelUnsupported,
    ONE_COPY_MIG_IDX,
)
from repro.system.placement import BestStaticPlacement, RoundRobinPlacement


def _fallback(reason: str):
    """Count one fallback and return ``None`` (the try_replay contract)."""
    return registry.record_fallback("directory", reason)

#: Stateless placements whose ``home`` is a pure function of the page.
#: (First-touch is stateful — homes depend on access order across blocks
#: — so it replays on the object paths.)
_PLACEMENT_TYPES = (RoundRobinPlacement, BestStaticPlacement)

# Delta vector layout (17th slot is the invalidation size, not additive):
# 0 read_hits  1 read_misses  2 write_hits  3 write_misses  4 upgrades
# 5 short  6 data  7/8 read_miss short/data  9/10 write_miss short/data
# 11/12 write_hit short/data  13 promote  14 demote  15 evidence
_VEC = 16


def _members(lines: int) -> list[tuple[int, int]]:
    """Decode the packed per-node fields into ``(node, field)`` pairs."""
    members = []
    p = 0
    while lines:
        f = lines & 3
        if f:
            members.append((p, f))
        lines >>= 2
        p += 1
    return members


def _expand(table, home: int, node: list, sym: int):
    """Grow one DFA edge by running the integer protocol semantics.

    Mirrors ``DirectoryMachine._access_block`` and its miss/upgrade
    handlers exactly: per-node line fields (0 absent, 1 SHARED, 2
    EXCL-clean, 3 EXCL-dirty) play the caches and the copy set, the
    compiled rows play :class:`DirectoryProtocol`, and the Table 1
    helpers are evaluated here — once per edge, never per access.
    """
    rows = table.rows
    key = node[-1]
    proc = sym >> 1
    shift2 = 2 * table.num_procs
    lines = key & ((1 << shift2) - 1)
    ds = (key >> shift2) & 7
    streak = (key >> (shift2 + 3)) & 127
    li = key >> (shift2 + 10)  # last_invalidator + 1; 0 means None
    pf = (lines >> (2 * proc)) & 3
    d = [0] * _VEC
    inv_size = 0
    new_lines = lines
    nds, nstreak, nli = ds, streak, li
    if not sym & 1:
        if pf:
            d[0] = 1  # read hit: touch only, no protocol involvement
        else:
            d[1] = 1
            members = _members(lines)
            ncopies = len(members)
            # A dirty copy only exists while the copy set is a singleton
            # (same invariant DirectoryMachine._dirty_owner relies on).
            dirty = 1 if ncopies == 1 and members[0][1] == 3 else 0
            was_migratory = ds == ONE_COPY_MIG_IDX
            nds, nstreak, promote, demote, evidence, migrate = (
                rows.read_miss[(ds, streak, dirty)]
            )
            d[13], d[14], d[15] = promote, demote, evidence
            if dirty:
                dc = sum(1 for p, _ in members if p != proc and p != home)
                short, data = read_miss_counts(proc == home, True, dc)
            else:
                short, data = read_miss_counts(proc == home, False, 0)
            d[5] = d[7] = short
            d[6] = d[8] = data
            if migrate:
                if dirty:
                    new_lines &= ~(3 << (2 * members[0][0]))
                new_lines |= 2 << (2 * proc)  # fill EXCL clean
            else:
                if dirty:
                    owner = members[0][0]  # demoted SHARED, flushed clean
                    new_lines = new_lines & ~(3 << (2 * owner)) | (1 << (2 * owner))
                elif was_migratory or ncopies == 1:
                    # Revoke any clean-exclusive holder's silent-write
                    # permission, as the replicating read miss does.
                    for p, f in members:
                        if f == 2:
                            new_lines = new_lines & ~(3 << (2 * p)) | (1 << (2 * p))
                new_lines |= 1 << (2 * proc)  # fill SHARED
    elif pf >= 2:
        d[2] = 1  # silent write on an exclusive copy
        new_lines |= 3 << (2 * proc)
    elif pf == 1:
        d[2] = d[4] = 1  # shared write hit: upgrade
        members = _members(lines)
        others = [p for p, _ in members if p != proc]
        same = 1 if li == proc + 1 else 0
        nds, nstreak, promote, demote, evidence = (
            rows.write_hit[(ds, streak, same, 0 if others else 1)]
        )
        d[13], d[14], d[15] = promote, demote, evidence
        dc = sum(1 for p in others if p != home)
        short, data = write_hit_counts(proc == home, dc)
        d[5] = d[11] = short
        d[6] = d[12] = data
        if others:
            inv_size = len(others)
            for p in others:
                new_lines &= ~(3 << (2 * p))
        new_lines |= 3 << (2 * proc)
        nli = proc + 1
    else:
        d[3] = 1  # write miss
        members = _members(lines)
        ncopies = len(members)
        dirty = 1 if ncopies == 1 and members[0][1] == 3 else 0
        same = 1 if li == proc + 1 else 0
        nds, nstreak, promote, demote, evidence = (
            rows.write_miss[(ds, streak, same, dirty)]
        )
        d[13], d[14], d[15] = promote, demote, evidence
        dc = sum(1 for p, _ in members if p != proc and p != home)
        short, data = write_miss_counts(proc == home, dirty, dc)
        d[5] = d[9] = short
        d[6] = d[10] = data
        if ncopies:
            inv_size = ncopies
        new_lines = 3 << (2 * proc)  # all other copies invalidated
        nli = proc + 1
    nkey = (new_lines | (nds << shift2) | (nstreak << (shift2 + 3))
            | (nli << (shift2 + 10)))
    edge = (table.node((home, nkey), nkey), table.intern_delta((*d, inv_size)))
    node[sym] = edge
    return edge


def _delta_counts(out: list[int]):
    """Occurrence counts of each delta index, via C-level byte scans."""
    distinct = set(out)
    try:
        buf = bytes(out)
    except ValueError:  # more than 256 interned deltas in this table
        return Counter(out).items()
    return [(idx, buf.count(idx)) for idx in distinct]


def _walk(table, home: int, root: list, seq: bytes):
    """Replay one block's symbol sequence; return the walk summary."""
    node = root
    out: list[int] = []
    append = out.append
    for sym in seq:
        edge = node[sym]
        if edge is None:
            edge = _expand(table, home, node, sym)
        append(edge[1])
        node = edge[0]
    totals = [0] * _VEC
    inv: dict[int, int] = {}
    deltas = table.deltas
    for idx, count in _delta_counts(out):
        delta = deltas[idx]
        totals = [t + count * v for t, v in zip(totals, delta)]
        if delta[_VEC]:
            inv[delta[_VEC]] = inv.get(delta[_VEC], 0) + count
    return tuple(totals), tuple(sorted(inv.items())), node[-1]


def try_replay(machine, packed):
    """Replay ``packed`` on the kernel, or return ``None`` untouched.

    The envelope (each gate falls back to the packed loop, which is
    always correct): kernels enabled; exact production component types
    (subclassed machines/placements/representations may observe steps
    the kernel elides); no per-block message tracking; processor ids
    packable; a fresh machine; and an eviction-free replay — infinite
    caches, or a finite geometry where no cache set ever sees more
    distinct blocks than it has ways, so replacement (and its RNG, LRU
    order, writebacks, notifications) cannot be observed.
    """
    if not registry.kernels_enabled():
        return _fallback("disabled")
    config = machine.config
    num_procs = config.num_procs
    if num_procs > 128:
        return _fallback("num-procs")
    if machine.block_messages is not None:
        return _fallback("block-messages")
    if type(machine.placement) not in _PLACEMENT_TYPES:
        return _fallback("placement")
    if type(machine.representation) is not FullMapDirectory:
        return _fallback("representation")
    protocol = machine.protocol
    if type(protocol) is not DirectoryProtocol:
        return _fallback("protocol-type")
    if packed.num_procs > num_procs:
        return _fallback("trace-procs")
    if (machine.stats != MessageStats()
            or machine.cache_stats != CacheStats()
            or protocol._entries or protocol.transitions
            or machine.invalidation_sizes
            or any(len(cache) for cache in machine.caches)):
        return _fallback("not-fresh")
    first = machine.caches[0] if machine.caches else None
    finite = type(first) is SetAssociativeCache
    if not finite and type(first) is not InfiniteCache:
        return _fallback("cache-type")
    try:
        seqs = packed.block_sequences(machine._block_shift)
    except ValueError:  # a processor id outside the symbol byte
        return _fallback("symbol-range")
    if finite:
        num_sets = config.cache.num_sets
        ways = config.cache.associativity
        per_set = Counter(block % num_sets for block in seqs)
        if any(count > ways for count in per_set.values()):
            return _fallback("evictions")
    try:
        table = registry.dir_table(machine.policy, num_procs)
    except KernelUnsupported:
        return _fallback("table-unsupported")
    placement = machine.placement
    home_shift = machine._home_shift
    seq_results = table.seq_results
    root_key = table.rows.initial_state << (2 * num_procs)
    totals = [0] * _VEC
    inv_sizes: dict[int, int] = {}
    finals: list[tuple[int, int]] = []
    try:
        for block, seq in seqs.items():
            home = placement.home(block >> home_shift, 0)
            result = seq_results.get((home, seq))
            if result is None:
                root = table.node((home, root_key), root_key)
                result = _walk(table, home, root, seq)
                table.cache_seq_result((home, seq), result)
            vec, inv, final_key = result
            totals = [a + b for a, b in zip(totals, vec)]
            for size, count in inv:
                inv_sizes[size] = inv_sizes.get(size, 0) + count
            finals.append((block, final_key))
    except (KernelUnsupported, KeyError):
        # DFA capacity, or a combination outside the probed rows: the
        # machine is untouched (mutation happens only below), so the
        # packed loop can still run the replay.
        return _fallback("walk-abort")
    _apply(machine, totals, inv_sizes, finals)
    registry.engagements["directory"] += 1
    if machine.step_hook is not None:
        raise ProtocolError(
            "step_hook installed mid-replay on the table-driven kernel "
            "path: the hook missed every earlier step, so its "
            "observations are unreliable; install it before run() to "
            "take the generic per-access path"
        )
    return machine.stats


def _apply(machine, totals, inv_sizes, finals) -> None:
    """Write the walk totals and final per-block state into the machine.

    Counter keys are only created for nonzero totals, matching the
    object engine's lazy ``by_cause``/``transitions`` population.  Cache
    lines are re-inserted in first-touch block order; with no evictions
    the recency order is unobservable, so this canonical order is as
    good as the historical one.
    """
    cache_stats = machine.cache_stats
    cache_stats.read_hits += totals[0]
    cache_stats.read_misses += totals[1]
    cache_stats.write_hits += totals[2]
    cache_stats.write_misses += totals[3]
    cache_stats.upgrades += totals[4]
    stats = machine.stats
    stats.short += totals[5]
    stats.data += totals[6]
    for cause, si, di in (("read_miss", 7, 8), ("write_miss", 9, 10),
                          ("write_hit", 11, 12)):
        if totals[si]:
            stats.by_cause_short[cause] += totals[si]
        if totals[di]:
            stats.by_cause_data[cause] += totals[di]
    transitions = machine.protocol.transitions
    for name, i in (("promote", 13), ("demote", 14), ("evidence", 15)):
        if totals[i]:
            transitions[name] += totals[i]
    if inv_sizes:
        machine.invalidation_sizes.update(inv_sizes)
    from repro.system.machine import CState

    shared, excl = CState.SHARED, CState.EXCL
    caches = machine.caches
    entries = machine.protocol._entries
    shift2 = 2 * machine.config.num_procs
    for block, final_key in finals:
        lines = final_key & ((1 << shift2) - 1)
        ds = (final_key >> shift2) & 7
        streak = (final_key >> (shift2 + 3)) & 127
        li = final_key >> (shift2 + 10)
        copyset = set()
        p = 0
        while lines:
            f = lines & 3
            if f:
                copyset.add(p)
                caches[p].insert(block, shared if f == 1 else excl, f == 3)
            lines >>= 2
            p += 1
        entries[block] = DirectoryEntry(
            state=DIR_STATES[ds], copyset=copyset,
            last_invalidator=li - 1 if li else None, streak=streak,
        )
