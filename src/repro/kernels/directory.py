"""Table-driven replay for :class:`repro.system.machine.DirectoryMachine`.

With no evictions, cache contents couple blocks only through capacity,
so every block's coherence life is an independent finite state machine:
(per-node line states, directory state, evidence streak, last
invalidator).  The kernel packs that machine state into one integer,
grows a DFA over it lazily (one sub-DFA per home node, since Table 1
charges depend on whether the actor is home), and replays each block's
access sequence (:meth:`PackedTrace.block_sequences`) as a tight
walk appending one interned delta index per access.  Whole-walk results
are cached per (home, sequence), so re-replaying a workload — the
result-cache warm path, sweeps over policies sharing traffic patterns —
reduces to dictionary lookups and integer adds.

Finite geometries replay on the same tables.  Cache sets that can never
evict (distinct blocks <= ways) keep the independent per-block walks;
each *conflict* set replays as one interleaved group walk
(:func:`_walk_dir_group`) that carries per-processor recency order
beside the per-block DFA nodes, charges each replacement through the
compiled ``uncached`` rows, and re-enters the victim's walk at its
post-eviction state — a segment restart instead of a whole-replay
fallback.  Group results are cached per (geometry, homes, stream), so
Table 2/3 cache-size sweeps hit dictionaries on the warm path too.

First-touch placement resolves every page home before walking (a fresh
machine's first access to a page is always a miss, so the home is the
first symbol's processor), and symbol sequences switch to 16-bit
encodings past 128 processors (:meth:`PackedTrace.block_sequences_wide`)
with chunk-skipping holder decodes, raising the processor cap to 1024.

``try_replay`` returns ``None`` without touching the machine whenever
the replay falls outside the kernel envelope (see the gate comments);
the caller then runs the packed loop, keeping behavior identical.
"""

from __future__ import annotations

from collections import Counter

from repro.cache.core import InfiniteCache, SetAssociativeCache
from repro.common.errors import ProtocolError
from repro.common.stats import CacheStats, MessageStats
from repro.directory.entry import DirectoryEntry
from repro.directory.protocol import DirectoryProtocol
from repro.directory.representation import FullMapDirectory
from repro.interconnect.costs import (
    eviction_counts,
    read_miss_counts,
    write_hit_counts,
    write_miss_counts,
)
from repro.kernels import registry
from repro.kernels.tables import (
    DIR_STATES,
    KernelUnsupported,
    ONE_COPY_MIG_IDX,
)
from repro.system.placement import (
    BestStaticPlacement,
    FirstTouchPlacement,
    RoundRobinPlacement,
)


def _fallback(reason: str):
    """Count one fallback and return ``None`` (the try_replay contract)."""
    return registry.record_fallback("directory", reason)

#: Stateless placements whose ``home`` is a pure function of the page.
#: First-touch is handled separately: its homes are resolved from each
#: page's first symbol before the walk.
_PLACEMENT_TYPES = (RoundRobinPlacement, BestStaticPlacement)

#: Processor cap: symbols must fit the 16-bit wide encoding and node
#: keys must stay practical (2 bits per processor plus directory bits).
_MAX_PROCS = 1024

# Delta vector layout (17th slot is the invalidation size, not additive):
# 0 read_hits  1 read_misses  2 write_hits  3 write_misses  4 upgrades
# 5 short  6 data  7/8 read_miss short/data  9/10 write_miss short/data
# 11/12 write_hit short/data  13 promote  14 demote  15 evidence
_VEC = 16

#: ``(dirty, home_local) -> (short, data)`` replacement charges with
#: clean-eviction notification on (the group walk requires it; silent
#: clean evictions desynchronise the copy set from the cache fields).
_EVICT_COUNTS = {
    (dirty, local): eviction_counts(bool(dirty), bool(local), True)
    for dirty in (False, True) for local in (False, True)
}


def _members(lines: int) -> list[tuple[int, int]]:
    """Decode the packed per-node fields into ``(node, field)`` pairs.

    Scans 16 processors (32 bits) at a time so wide-processor keys with
    sparse holders skip empty regions in one shift.
    """
    members = []
    base = 0
    while lines:
        chunk = lines & 0xFFFFFFFF
        if chunk:
            p = base
            while chunk:
                f = chunk & 3
                if f:
                    members.append((p, f))
                chunk >>= 2
                p += 1
        lines >>= 32
        base += 16
    return members


def _expand(table, home: int, node: list, sym: int):
    """Grow one DFA edge by running the integer protocol semantics.

    Mirrors ``DirectoryMachine._access_block`` and its miss/upgrade
    handlers exactly: per-node line fields (0 absent, 1 SHARED, 2
    EXCL-clean, 3 EXCL-dirty) play the caches and the copy set, the
    compiled rows play :class:`DirectoryProtocol`, and the Table 1
    helpers are evaluated here — once per edge, never per access.
    """
    rows = table.rows
    key = node[-1]
    proc = sym >> 1
    shift2 = 2 * table.num_procs
    lines = key & ((1 << shift2) - 1)
    ds = (key >> shift2) & 7
    streak = (key >> (shift2 + 3)) & 127
    li = key >> (shift2 + 10)  # last_invalidator + 1; 0 means None
    pf = (lines >> (2 * proc)) & 3
    d = [0] * _VEC
    inv_size = 0
    new_lines = lines
    nds, nstreak, nli = ds, streak, li
    if not sym & 1:
        if pf:
            d[0] = 1  # read hit: touch only, no protocol involvement
        else:
            d[1] = 1
            members = _members(lines)
            ncopies = len(members)
            # A dirty copy only exists while the copy set is a singleton
            # (same invariant DirectoryMachine._dirty_owner relies on).
            dirty = 1 if ncopies == 1 and members[0][1] == 3 else 0
            was_migratory = ds == ONE_COPY_MIG_IDX
            nds, nstreak, promote, demote, evidence, migrate = (
                rows.read_miss[(ds, streak, dirty)]
            )
            d[13], d[14], d[15] = promote, demote, evidence
            if dirty:
                dc = sum(1 for p, _ in members if p != proc and p != home)
                short, data = read_miss_counts(proc == home, True, dc)
            else:
                short, data = read_miss_counts(proc == home, False, 0)
            d[5] = d[7] = short
            d[6] = d[8] = data
            if migrate:
                if dirty:
                    new_lines &= ~(3 << (2 * members[0][0]))
                new_lines |= 2 << (2 * proc)  # fill EXCL clean
            else:
                if dirty:
                    owner = members[0][0]  # demoted SHARED, flushed clean
                    new_lines = new_lines & ~(3 << (2 * owner)) | (1 << (2 * owner))
                elif was_migratory or ncopies == 1:
                    # Revoke any clean-exclusive holder's silent-write
                    # permission, as the replicating read miss does.
                    for p, f in members:
                        if f == 2:
                            new_lines = new_lines & ~(3 << (2 * p)) | (1 << (2 * p))
                new_lines |= 1 << (2 * proc)  # fill SHARED
    elif pf >= 2:
        d[2] = 1  # silent write on an exclusive copy
        new_lines |= 3 << (2 * proc)
    elif pf == 1:
        d[2] = d[4] = 1  # shared write hit: upgrade
        members = _members(lines)
        others = [p for p, _ in members if p != proc]
        same = 1 if li == proc + 1 else 0
        nds, nstreak, promote, demote, evidence = (
            rows.write_hit[(ds, streak, same, 0 if others else 1)]
        )
        d[13], d[14], d[15] = promote, demote, evidence
        dc = sum(1 for p in others if p != home)
        short, data = write_hit_counts(proc == home, dc)
        d[5] = d[11] = short
        d[6] = d[12] = data
        if others:
            inv_size = len(others)
            for p in others:
                new_lines &= ~(3 << (2 * p))
        new_lines |= 3 << (2 * proc)
        nli = proc + 1
    else:
        d[3] = 1  # write miss
        members = _members(lines)
        ncopies = len(members)
        dirty = 1 if ncopies == 1 and members[0][1] == 3 else 0
        same = 1 if li == proc + 1 else 0
        nds, nstreak, promote, demote, evidence = (
            rows.write_miss[(ds, streak, same, dirty)]
        )
        d[13], d[14], d[15] = promote, demote, evidence
        dc = sum(1 for p, _ in members if p != proc and p != home)
        short, data = write_miss_counts(proc == home, dirty, dc)
        d[5] = d[9] = short
        d[6] = d[10] = data
        if ncopies:
            inv_size = ncopies
        new_lines = 3 << (2 * proc)  # all other copies invalidated
        nli = proc + 1
    nkey = (new_lines | (nds << shift2) | (nstreak << (shift2 + 3))
            | (nli << (shift2 + 10)))
    # The third slot holds the lazily-computed eviction metadata
    # (miss/removal summary) the group walks need; plain walks never
    # touch it (see _edge_meta).
    edge = node[sym] = [
        table.node((home, nkey), nkey), table.intern_delta((*d, inv_size)), None,
    ]
    return edge


def _edge_meta(src_key: int, dst_key: int, sym: int, lines_mask: int):
    """``(is_miss, removed)`` summary of one edge, for set bookkeeping.

    ``is_miss`` is whether the requester filled a line (its field was 0),
    ``removed`` the processors whose copy this access destroyed (field
    nonzero -> 0: invalidations and the migratory dirty-owner removal).
    Computed once per edge on first use by a group walk and memoised in
    the edge's third slot.
    """
    proc = sym >> 1
    src = src_key & lines_mask
    dst = dst_key & lines_mask
    is_miss = not (src >> (2 * proc)) & 3
    removed = []
    p = 0
    while src:
        schunk = src & 0xFFFFFFFF
        if schunk != dst & 0xFFFFFFFF:
            tchunk = dst & 0xFFFFFFFF
            q = p
            while schunk:
                if (schunk & 3) and not tchunk & 3:
                    removed.append(q)
                schunk >>= 2
                tchunk >>= 2
                q += 1
        src >>= 32
        dst >>= 32
        p += 16
    return (is_miss, tuple(removed))


def _delta_counts(out: list[int]):
    """Occurrence counts of each delta index, via C-level byte scans."""
    distinct = set(out)
    try:
        buf = bytes(out)
    except ValueError:  # more than 256 interned deltas in this table
        return Counter(out).items()
    return [(idx, buf.count(idx)) for idx in distinct]


def _aggregate(table, out: list[int]):
    """Sum a walk's delta indices into ``(totals, inv_items)``."""
    totals = [0] * _VEC
    inv: dict[int, int] = {}
    deltas = table.deltas
    for idx, count in _delta_counts(out):
        delta = deltas[idx]
        totals = [t + count * v for t, v in zip(totals, delta)]
        if delta[_VEC]:
            inv[delta[_VEC]] = inv.get(delta[_VEC], 0) + count
    return tuple(totals), tuple(sorted(inv.items()))


def _walk(table, home: int, root: list, syms):
    """Replay one block's symbol sequence; return the walk summary.

    ``syms`` is any iterable of symbol ints — the byte string of
    :meth:`block_sequences` or a ``memoryview('H')`` over the wide form.
    """
    node = root
    out: list[int] = []
    append = out.append
    for sym in syms:
        edge = node[sym]
        if edge is None:
            edge = _expand(table, home, node, sym)
        append(edge[1])
        node = edge[0]
    totals, inv = _aggregate(table, out)
    return totals, inv, node[-1]


def _walk_dir_group(table, homes: tuple, stream, ways: int, lru: bool):
    """Replay one conflict set's interleaved access stream.

    ``stream`` entries are ``(dense_block_id << 32) | symbol``
    (:meth:`PackedTrace.set_streams`); ``homes[dense_id]`` is each
    block's home node.  The walk advances each block's DFA node exactly
    like the independent walks, and additionally mirrors the machine's
    per-set replacement state: ``resident[proc]`` is that processor's
    recency list for this set (oldest first), updated on fills,
    invalidations, and — for LRU — hits.  A fill into a full set pops
    the victim, charges the Table 1 replacement cost, clears the
    victim's field (applying the compiled ``uncached`` row when the last
    copy disappears), and re-enters the victim's walk at the
    post-eviction node: the segment restart.

    Returns ``(totals, inv_items, final_keys, recency, evictions)``
    where ``final_keys[dense_id]`` is each block's final packed state,
    ``recency`` is ``((proc, dense_ids...), ...)`` oldest-first per
    processor, and ``evictions`` is ``(short, data, dirty, clean,
    forget)``.
    """
    rows = table.rows
    shift2 = 2 * table.num_procs
    lines_mask = (1 << shift2) - 1
    root_key = rows.initial_state << shift2
    node_of = table.node
    uncached = rows.uncached
    nodes = [node_of((home, root_key), root_key) for home in homes]
    resident: dict[int, list[int]] = {}
    out: list[int] = []
    append = out.append
    ev_short = ev_data = ev_dirty = ev_clean = forget = 0
    for entry in stream:
        dense = entry >> 32
        sym = entry & 0xFFFFFFFF
        node = nodes[dense]
        edge = node[sym]
        if edge is None:
            edge = _expand(table, homes[dense], node, sym)
        meta = edge[2]
        if meta is None:
            meta = edge[2] = _edge_meta(node[-1], edge[0][-1], sym, lines_mask)
        append(edge[1])
        nodes[dense] = edge[0]
        proc = sym >> 1
        if meta[1]:
            for q in meta[1]:
                resident[q].remove(dense)
        rp = resident.get(proc)
        if rp is None:
            rp = resident[proc] = []
        if meta[0]:
            # A fill; evict the oldest line first when the set is full,
            # exactly as SetAssociativeCache.insert does.
            if len(rp) >= ways:
                victim = rp.pop(0)
                vnode = nodes[victim]
                vkey = vnode[-1]
                vshift = 2 * proc
                dirty = (vkey >> vshift) & 3 == 3
                if dirty:
                    ev_dirty += 1
                else:
                    ev_clean += 1
                vs, vd = _EVICT_COUNTS[(dirty, homes[victim] == proc)]
                ev_short += vs
                ev_data += vd
                nvkey = vkey & ~(3 << vshift)
                if not nvkey & lines_mask:
                    # Last copy gone: the directory notes the block
                    # uncached (note_uncached), via the compiled row.
                    ds = (nvkey >> shift2) & 7
                    nds, reset, fg = uncached[ds]
                    forget += fg
                    if reset:
                        nvkey = nds << shift2
                    else:
                        nvkey = nvkey & ~(7 << shift2) | (nds << shift2)
                nodes[victim] = node_of((homes[victim], nvkey), nvkey)
            rp.append(dense)
        elif lru:
            rp.remove(dense)
            rp.append(dense)
    totals, inv = _aggregate(table, out)
    finals = tuple(node[-1] for node in nodes)
    recency = tuple(
        (proc, tuple(ids))
        for proc, ids in sorted(resident.items()) if ids
    )
    return (totals, inv, finals, recency,
            (ev_short, ev_data, ev_dirty, ev_clean, forget))


def try_replay(machine, packed):
    """Replay ``packed`` on the kernel, or return ``None`` untouched.

    The envelope (each gate falls back to the packed loop, which is
    always correct): kernels enabled; exact production component types
    (subclassed machines/placements/representations may observe steps
    the kernel elides); no per-block message tracking; processor ids
    packable (<= 1024); and a fresh machine.  Finite geometries replay
    eviction-aware: sets that can never evict take the independent
    per-block walks, conflict sets take the grouped recency walks.  The
    genuinely unsupported leftovers fall back honestly by reason:
    random replacement (its RNG draws are unobservable from here) and
    silent clean evictions (``eviction_notification=False`` leaves the
    directory's copy set stale, outside the packed-state encoding).
    """
    if not registry.kernels_enabled():
        return _fallback("disabled")
    config = machine.config
    num_procs = config.num_procs
    if num_procs > _MAX_PROCS:
        return _fallback("num-procs")
    if machine.block_messages is not None:
        return _fallback("block-messages")
    placement = machine.placement
    first_touch = type(placement) is FirstTouchPlacement
    if not first_touch and type(placement) not in _PLACEMENT_TYPES:
        return _fallback("placement")
    if type(machine.representation) is not FullMapDirectory:
        return _fallback("representation")
    protocol = machine.protocol
    if type(protocol) is not DirectoryProtocol:
        return _fallback("protocol-type")
    if packed.num_procs > num_procs:
        return _fallback("trace-procs")
    if (machine.stats != MessageStats()
            or machine.cache_stats != CacheStats()
            or protocol._entries or protocol.transitions
            or machine.invalidation_sizes
            or any(len(cache) for cache in machine.caches)):
        return _fallback("not-fresh")
    first = machine.caches[0] if machine.caches else None
    finite = type(first) is SetAssociativeCache
    if not finite and type(first) is not InfiniteCache:
        return _fallback("cache-type")
    wide = packed.num_procs > 128
    try:
        if wide:
            seqs = packed.block_sequences_wide(machine._block_shift)
        else:
            seqs = packed.block_sequences(machine._block_shift)
    except (ValueError, OverflowError):  # a processor id out of range
        return _fallback("symbol-range")
    conflicts: dict = {}
    lru = False
    ways = 0
    if finite:
        ways = config.cache.associativity
        conflicts = packed.set_streams(
            machine._block_shift, config.cache.num_sets, ways
        )
        if conflicts:
            replacement = config.cache.replacement
            if replacement == "random":
                # The per-cache replacement RNG is unobservable here.
                return _fallback("replacement-random")
            if not config.eviction_notification:
                # Silent clean evictions leave stale copy-set members the
                # packed single-bitmask state cannot represent.
                return _fallback("eviction-silent")
            lru = replacement == "lru"
    try:
        table = registry.dir_table(machine.policy, num_procs)
    except KernelUnsupported:
        return _fallback("table-unsupported")
    home_shift = machine._home_shift
    new_homes: dict[int, int] = {}
    if first_touch:
        # A fresh machine's first access to a page is always a miss, so
        # the page's home is the first symbol's processor.  Pages the
        # (possibly pre-seeded) placement already knows keep their homes.
        homes_map = dict(placement._homes)
        for block, seq in seqs.items():
            page = block >> home_shift
            if page not in homes_map:
                sym0 = (seq[0] | seq[1] << 8) if wide else seq[0]
                new_homes[page] = homes_map[page] = sym0 >> 1
        home_of = homes_map.__getitem__
    else:
        home_of = None
    conflict_blocks: set[int] = set()
    for blocks, _stream in conflicts.values():
        conflict_blocks.update(blocks)
    seq_results = table.seq_results
    root_key = table.rows.initial_state << (2 * num_procs)
    totals = [0] * _VEC
    inv_sizes: dict[int, int] = {}
    finals: list[tuple[int, int]] = []
    groups: list[tuple] = []
    ev_totals = (0, 0, 0, 0, 0)
    try:
        for block, seq in seqs.items():
            if block in conflict_blocks:
                continue
            page = block >> home_shift
            home = home_of(page) if first_touch else placement.home(page, 0)
            seq_key = (home, seq, 1) if wide else (home, seq)
            result = seq_results.get(seq_key)
            if result is None:
                root = table.node((home, root_key), root_key)
                syms = memoryview(seq).cast("H") if wide else seq
                result = _walk(table, home, root, syms)
                table.cache_seq_result(seq_key, result)
            vec, inv, final_key = result
            totals = [a + b for a, b in zip(totals, vec)]
            for size, count in inv:
                inv_sizes[size] = inv_sizes.get(size, 0) + count
            finals.append((block, final_key))
        for blocks, stream in conflicts.values():
            ghomes = tuple(
                home_of(b >> home_shift) if first_touch
                else placement.home(b >> home_shift, 0)
                for b in blocks
            )
            group_key = (ways, lru, ghomes, stream.tobytes())
            result = table.group_results.get(group_key)
            if result is None:
                result = _walk_dir_group(table, ghomes, stream, ways, lru)
                table.cache_group_result(group_key, result)
            vec, inv, gfinals, recency, gev = result
            totals = [a + b for a, b in zip(totals, vec)]
            for size, count in inv:
                inv_sizes[size] = inv_sizes.get(size, 0) + count
            ev_totals = tuple(a + b for a, b in zip(ev_totals, gev))
            groups.append((blocks, gfinals, recency))
    except (KernelUnsupported, KeyError):
        # DFA capacity, or a combination outside the probed rows: the
        # machine is untouched (mutation happens only below), so the
        # packed loop can still run the replay.
        return _fallback("walk-abort")
    _apply(machine, totals, inv_sizes, finals)
    if groups:
        _apply_groups(machine, groups)
    if any(ev_totals):
        _apply_evictions(machine, ev_totals)
    if new_homes:
        placement._homes.update(new_homes)
    registry.engagements["directory"] += 1
    if machine.step_hook is not None:
        raise ProtocolError(
            "step_hook installed mid-replay on the table-driven kernel "
            "path: the hook missed every earlier step, so its "
            "observations are unreliable; install it before run() to "
            "take the generic per-access path"
        )
    return machine.stats


def _final_entry(machine, block: int, final_key: int, shift2: int) -> set[int]:
    """Record ``block``'s directory entry from its final packed key;
    returns the decoded copy set."""
    lines = final_key & ((1 << shift2) - 1)
    ds = (final_key >> shift2) & 7
    streak = (final_key >> (shift2 + 3)) & 127
    li = final_key >> (shift2 + 10)
    copyset = {p for p, _ in _members(lines)}
    machine.protocol._entries[block] = DirectoryEntry(
        state=DIR_STATES[ds], copyset=copyset,
        last_invalidator=li - 1 if li else None, streak=streak,
    )
    return copyset


def _apply(machine, totals, inv_sizes, finals) -> None:
    """Write the walk totals and final per-block state into the machine.

    Counter keys are only created for nonzero totals, matching the
    object engine's lazy ``by_cause``/``transitions`` population.  Cache
    lines are re-inserted in first-touch block order; these blocks'
    sets never evicted, so the recency order is unobservable and this
    canonical order is as good as the historical one.
    """
    cache_stats = machine.cache_stats
    cache_stats.read_hits += totals[0]
    cache_stats.read_misses += totals[1]
    cache_stats.write_hits += totals[2]
    cache_stats.write_misses += totals[3]
    cache_stats.upgrades += totals[4]
    stats = machine.stats
    stats.short += totals[5]
    stats.data += totals[6]
    for cause, si, di in (("read_miss", 7, 8), ("write_miss", 9, 10),
                          ("write_hit", 11, 12)):
        if totals[si]:
            stats.by_cause_short[cause] += totals[si]
        if totals[di]:
            stats.by_cause_data[cause] += totals[di]
    transitions = machine.protocol.transitions
    for name, i in (("promote", 13), ("demote", 14), ("evidence", 15)):
        if totals[i]:
            transitions[name] += totals[i]
    if inv_sizes:
        machine.invalidation_sizes.update(inv_sizes)
    from repro.system.machine import CState

    shared, excl = CState.SHARED, CState.EXCL
    caches = machine.caches
    shift2 = 2 * machine.config.num_procs
    for block, final_key in finals:
        copyset = _final_entry(machine, block, final_key, shift2)
        for p in copyset:
            f = (final_key >> (2 * p)) & 3
            caches[p].insert(block, shared if f == 1 else excl, f == 3)


def _apply_groups(machine, groups) -> None:
    """Write the conflict-set walk results into the machine.

    Each processor's lines are re-inserted in the walk's final recency
    order (oldest first), so the machine's per-set ordering — observable
    by any further accesses after the replay — matches the packed loop's
    exactly.
    """
    from repro.system.machine import CState

    shared, excl = CState.SHARED, CState.EXCL
    caches = machine.caches
    shift2 = 2 * machine.config.num_procs
    for blocks, gfinals, recency in groups:
        for block, final_key in zip(blocks, gfinals):
            _final_entry(machine, block, final_key, shift2)
        for proc, order in recency:
            cache = caches[proc]
            for dense in order:
                f = (gfinals[dense] >> (2 * proc)) & 3
                cache.insert(blocks[dense], shared if f == 1 else excl, f == 3)


def _apply_evictions(machine, ev_totals) -> None:
    """Charge the group walks' replacement traffic into the machine."""
    short, data, dirty, clean, forget = ev_totals
    stats = machine.stats
    stats.short += short
    stats.data += data
    if short:
        stats.by_cause_short["eviction"] += short
    if data:
        stats.by_cause_data["eviction"] += data
    machine.cache_stats.evictions_dirty += dirty
    machine.cache_stats.evictions_clean += clean
    if forget:
        machine.protocol.transitions["forget"] += forget
