"""Process-wide registry of compiled kernels, plus the kill switches.

Compiled tables and their lazily-grown DFAs are shared by every machine
in the process: the first replay of a workload pays for edge expansion,
subsequent replays (other policies' tables are separate) walk hot edges
and hit the per-sequence result cache.  Tables only ever *accumulate*
reusable facts — node transitions and per-sequence walk results — so
sharing them across replays, threads (the stats accumulation is
per-replay, guarded by the GIL), and result-cache workers is safe.

Two switches force the legacy packed loop without touching call sites:

* the ``REPRO_NO_KERNEL`` environment variable (checked per replay, so
  benchmark subprocesses and tests can toggle it);
* :func:`disabled`, a re-entrant context manager used by the
  conformance oracle to pin one replay to the packed path while the
  kernel stage exercises the other.
"""

from __future__ import annotations

import logging
import os
from collections import Counter
from contextlib import contextmanager

from repro.kernels import tables

#: Replays completed by each kernel (keys ``"directory"`` / ``"bus"``).
#: Tests and the conformance oracle use this to prove engagement; the
#: machines themselves have ``__slots__`` and carry no kernel marker.
engagements: Counter = Counter()

#: Replays that fell back from a kernel to the legacy packed loop,
#: keyed ``(engine, reason)``.  The telemetry mirror (when a session is
#: active) is :data:`FALLBACK_METRIC`, so kernel-envelope gaps are
#: measurable in production traffic instead of silent.
fallbacks: Counter = Counter()

#: Telemetry counter mirroring :data:`fallbacks`, labelled by
#: ``engine`` and ``reason``.
FALLBACK_METRIC = "repro_kernel_fallback_total"

_log = logging.getLogger("repro.kernels")


def record_fallback(engine: str, reason: str) -> None:
    """Count one kernel-to-packed-loop fallback (and return ``None``,
    so gate sites read ``return record_fallback(...)``).

    Every ``try_replay`` gate routes through here: the module counter
    feeds tests and ``counts()``-style introspection, the ambient
    telemetry counter feeds ``/metrics`` on a serving shard, and the
    debug log line names the reason for operators chasing a throughput
    regression back to an envelope gap.
    """
    fallbacks[(engine, reason)] += 1
    # Imported lazily: telemetry observes the kernels, the kernels must
    # not depend on it at import time.
    from repro.telemetry import runtime as telemetry

    telemetry.count(FALLBACK_METRIC,
                    "kernel-ineligible replays by engine and reason",
                    engine=engine, reason=reason)
    if _log.isEnabledFor(logging.DEBUG):
        _log.debug("kernel fallback: engine=%s reason=%s", engine, reason)

#: Safety valve: a DFA that outgrows this stops expanding and the replay
#: falls back to the packed loop (the machine is only mutated after a
#: complete walk, so a mid-walk bailout is free).
NODE_LIMIT = 1 << 17

#: Per-sequence walk-result caches are cleared past this many entries.
SEQ_RESULT_LIMIT = 1 << 16

#: Conflict-set group-walk result caches are cleared past this many
#: entries (group keys embed whole interleaved streams, so the cap is
#: lower than the per-sequence one).
GROUP_RESULT_LIMIT = 1 << 12

_disable_depth = 0


@contextmanager
def disabled():
    """Force the packed loops for the duration of the ``with`` block."""
    global _disable_depth
    _disable_depth += 1
    try:
        yield
    finally:
        _disable_depth -= 1


def kernels_enabled() -> bool:
    """Whether kernel dispatch is currently allowed."""
    return not _disable_depth and not os.environ.get("REPRO_NO_KERNEL")


class _KernelTable:
    """A compiled row set plus its DFA, for one processor count.

    Nodes are lists of ``2 * num_procs`` edge slots (indexed by the
    symbol ``proc * 2 + is_write``) with the node's packed machine-state
    key in the final slot; edges are ``(next_node, delta_index)`` pairs.
    ``deltas`` interns the per-edge statistics tuples so a walk records
    one small integer per access and aggregates at C speed afterwards.
    """

    __slots__ = ("rows", "num_procs", "field_bits", "nodes", "deltas",
                 "delta_index", "seq_results", "group_results",
                 "node_limit")

    def __init__(self, rows, num_procs: int, field_bits: int):
        self.rows = rows
        self.num_procs = num_procs
        #: Width of one per-processor field in a node's packed state key
        #: (2 for the directory's line states; 3 + counter bits for the
        #: bus's snoop states).
        self.field_bits = field_bits
        self.nodes: dict = {}
        self.deltas: list = []
        self.delta_index: dict = {}
        self.seq_results: dict = {}
        #: Conflict-set group-walk results, keyed on the set's geometry +
        #: interleaved stream (see the eviction-aware walks in
        #: kernels.directory / kernels.snooping).
        self.group_results: dict = {}
        # Wide-processor nodes are proportionally larger (2n+1 slots), so
        # scale the DFA cap down past the classic 128-proc point to keep
        # the worst-case table footprint roughly constant.
        if num_procs <= 128:
            self.node_limit = NODE_LIMIT
        else:
            self.node_limit = max(4096, (NODE_LIMIT * 257) // (2 * num_procs + 1))

    def intern_delta(self, delta: tuple) -> int:
        idx = self.delta_index.get(delta)
        if idx is None:
            idx = self.delta_index[delta] = len(self.deltas)
            self.deltas.append(delta)
        return idx

    def node(self, map_key, state_key) -> list:
        """The node for ``map_key``, created holding ``state_key``.

        The directory kernel maps ``(home, packed_state)`` while the
        node itself carries only the packed machine state; the bus
        kernel uses the packed state for both.
        """
        node = self.nodes.get(map_key)
        if node is None:
            if len(self.nodes) > self.node_limit:
                raise tables.KernelUnsupported("kernel DFA node limit hit")
            node = self.nodes[map_key] = (
                [None] * (2 * self.num_procs) + [state_key]
            )
        return node

    def cache_seq_result(self, seq_key, result):
        if len(self.seq_results) > SEQ_RESULT_LIMIT:
            self.seq_results.clear()
        self.seq_results[seq_key] = result

    def cache_group_result(self, group_key, result):
        if len(self.group_results) > GROUP_RESULT_LIMIT:
            self.group_results.clear()
        self.group_results[group_key] = result


_dir_tables: dict = {}
_bus_tables: dict = {}


def dir_table(policy, num_procs: int) -> _KernelTable:
    """The directory kernel table for ``(policy, num_procs)``."""
    key = tables._policy_key(policy) + (num_procs,)
    table = _dir_tables.get(key)
    if table is None:
        rows = tables.compile_dir_rows(policy)
        table = _dir_tables.setdefault(key, _KernelTable(rows, num_procs, 2))
    return table


def bus_table(protocol, num_procs: int) -> _KernelTable:
    """The snooping kernel table for ``(protocol, num_procs)``."""
    key = (type(protocol).__qualname__, protocol.name, num_procs)
    table = _bus_tables.get(key)
    if table is None:
        rows = tables.compile_snoop_rows(protocol)
        table = _bus_tables.setdefault(
            key,
            _KernelTable(
                rows, num_procs, 3 + rows.counter_threshold.bit_length()
            ),
        )
    return table


def clear() -> None:
    """Drop every compiled DFA (tests use this to measure cold growth)."""
    _dir_tables.clear()
    _bus_tables.clear()
    engagements.clear()
    fallbacks.clear()
