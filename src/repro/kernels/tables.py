"""The kernel compiler: protocol objects -> dense integer rows.

Rather than re-implementing any protocol, the compiler *probes* the
shipped implementations — the same derive-by-observation technique
:mod:`repro.experiments.fig2` uses to regenerate Figure 2's transition
table — and records each outcome as a tuple of small integers:

* :func:`compile_dir_rows` drives :class:`DirectoryProtocol` over every
  (event, directory state, evidence streak, invalidator, dirty/sole)
  combination reachable under a policy and captures the resulting state,
  streak, and classification transitions.  The streak axis is closed by
  fixpoint, so hysteresis depths other than the shipped policies' work
  too.
* :func:`compile_snoop_rows` plants cache lines in every snoop state
  (and, for the competitive-update family, every staleness counter
  value) around each bus request and captures the holder reactions and
  requester fills.  Combinations a protocol rejects (states it can never
  snoop) are recorded as absent; the interpreter treats hitting one as
  "outside the kernel envelope" and falls back.

Rows are plain integer tuples in deterministic dict order, so
:func:`dir_table_digest` / :func:`snoop_table_digest` can hash them into
the result-cache behavioral digests: recompiling identical protocol code
yields identical digests in any process, while any change to the
compiled behavior changes the keys.

Multi-holder bus requests are composed from single-holder probes by
taking the highest-ranked requester fill (``RANK``); exclusivity
invariants (a Dirty/Exclusive/Migratory holder is alone; S2 implies at
most two copies) mean at most one rank class is ever present, and the
interpreter verifies ties are identical before trusting a combination.
"""

from __future__ import annotations

import hashlib

from repro.cache.core import CacheLine, InfiniteCache
from repro.common.errors import ProtocolError
from repro.directory.entry import DirState
from repro.directory.policy import AdaptivePolicy
from repro.directory.protocol import DirectoryProtocol
from repro.snooping.protocols import SnoopingProtocol
from repro.snooping.states import SnoopState as St

# ---------------------------------------------------------------------------
# Shared encodings
# ---------------------------------------------------------------------------

#: Directory states in kernel index order (3 bits).
DIR_STATES: tuple[DirState, ...] = (
    DirState.UNCACHED,
    DirState.UNCACHED_MIG,
    DirState.ONE_COPY,
    DirState.ONE_COPY_MIG,
    DirState.TWO_COPIES,
    DirState.THREE_PLUS,
)
DIR_INDEX = {state: i for i, state in enumerate(DIR_STATES)}
ONE_COPY_MIG_IDX = DIR_INDEX[DirState.ONE_COPY_MIG]

#: Snoop states in kernel index order; index 0 means "not resident".
SNOOP_STATES: tuple[St | None, ...] = (None, St.E, St.D, St.S2, St.S, St.MC, St.MD)
SNOOP_INDEX = {state: i for i, state in enumerate(SNOOP_STATES) if state}

#: States whose holder is dirty.  Every shipped protocol folds dirtiness
#: into the state this way; the compiler asserts it while probing.
DIRTY_SNOOP = frozenset((SNOOP_INDEX[St.D], SNOOP_INDEX[St.MD]))

#: Priority used to combine per-holder probe outcomes for multi-holder
#: requests: migratory assertions dominate shared replies, which dominate
#: the no-assertion defaults.  Indexed by snoop state index.
RANK = (0, 0, 0, 1, 1, 2, 2)

#: Streak values beyond this cannot be packed into a DFA node key.
MAX_STREAK = 64
#: Competitive-update staleness thresholds beyond this are not compiled.
MAX_COUNTER_THRESHOLD = 8

_DIGEST_PREFIX = b"RPRO-KERNEL-TABLE-2|"


def _digest(tag: str, parts: list) -> str:
    h = hashlib.sha256()
    h.update(_DIGEST_PREFIX)
    h.update(tag.encode())
    h.update(repr(parts).encode())
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Directory policy rows
# ---------------------------------------------------------------------------


class DirRows:
    """Dense transition rows for one directory policy.

    ``read_miss[(state, streak, dirty)]`` ->
        ``(new_state, new_streak, promote, demote, evidence, migrate)``
    ``write_miss[(state, streak, same_invalidator, dirty)]`` and
    ``write_hit[(state, streak, same_invalidator, sole_copy)]`` ->
        ``(new_state, new_streak, promote, demote, evidence)``
    ``uncached[state]`` -> ``(new_state, reset, forget)``

    ``same_invalidator`` is 1 when the entry's ``last_invalidator`` is the
    acting processor (``None`` behaves as "different", exactly as the
    protocol's ``!=`` comparisons do).  Write events additionally set the
    invalidator to the actor — unconditional in the protocol, so it is
    not part of the rows.

    ``uncached`` is the ``note_uncached`` transition an eviction of the
    last cached copy triggers.  ``reset`` is 1 when the policy forgets
    everything (streak and last invalidator cleared, as under
    ``remember_uncached=False``); ``forget`` is the transitions counter
    delta the reset records when it flips the migratory bit.
    """

    __slots__ = ("policy", "initial_state", "max_streak",
                 "read_miss", "write_miss", "write_hit", "uncached",
                 "digest")

    def __init__(self, policy: AdaptivePolicy):
        self.policy = policy
        self.initial_state = DIR_INDEX[
            DirState.UNCACHED_MIG if policy.initial_migratory else DirState.UNCACHED
        ]
        self.read_miss: dict = {}
        self.write_miss: dict = {}
        self.write_hit: dict = {}
        self.uncached: dict = {}
        self.max_streak = _probe_dir_rows(policy, self)
        self.digest = _digest("dir", [
            self.initial_state,
            sorted(self.read_miss.items()),
            sorted(self.write_miss.items()),
            sorted(self.write_hit.items()),
            sorted(self.uncached.items()),
        ])


def _probe_dir_event(policy, event, state_idx, streak, same, flag):
    """Run one protocol event against a planted entry; return the row."""
    protocol = DirectoryProtocol(policy)
    ent = protocol.entry(0)
    ent.state = DIR_STATES[state_idx]
    ent.streak = streak
    # Actor is processor 1; "same" plants it as the last invalidator.
    ent.last_invalidator = 1 if same else 0
    migrate = 0
    if event == "read_miss":
        migrate = 1 if protocol.read_miss(0, 1, dirty=bool(flag)) else 0
    elif event == "write_miss":
        protocol.write_miss(0, 1, dirty=bool(flag))
    else:
        protocol.write_hit(0, 1, sole_copy=bool(flag))
    t = protocol.transitions
    row = (DIR_INDEX[ent.state], ent.streak,
           t["promote"], t["demote"], t["evidence"])
    return row + (migrate,) if event == "read_miss" else row


def _probe_dir_uncached(policy, state_idx):
    """Run ``note_uncached`` against a planted entry; return the row."""
    protocol = DirectoryProtocol(policy)
    ent = protocol.entry(0)
    ent.state = DIR_STATES[state_idx]
    # Plant a nonzero streak and a last invalidator so a policy-level
    # reset (remember_uncached=False replaces the whole entry) is
    # observable as ``reset``.
    ent.streak = 1
    ent.last_invalidator = 0
    protocol.note_uncached(0)
    ent = protocol.entry(0)  # the handler may have replaced the entry
    reset = 1 if ent.streak == 0 and ent.last_invalidator is None else 0
    return (DIR_INDEX[ent.state], reset, protocol.transitions["forget"])


def _probe_dir_rows(policy: AdaptivePolicy, rows: DirRows) -> int:
    """Fill ``rows`` for every reachable ``(state, streak)`` pair.

    Streaks are explored by breadth-first closure from the initial
    state rather than densely: the protocol never resets the streak on
    promotion, so unreachable pairs like ``(ONE_COPY, streak >=
    threshold)`` would re-promote and push the axis out indefinitely.
    Kernel walks start every block at ``(initial_state, 0)``, and the
    eviction-aware walks additionally apply the ``uncached`` rows, so
    the closure covers both the event successors and each pair's
    post-``note_uncached`` image.
    """
    seen = {(rows.initial_state, 0)}
    frontier = [(rows.initial_state, 0)]
    max_streak = 0
    while frontier:
        state_idx, streak = frontier.pop()
        nexts = []
        for flag in (0, 1):
            row = _probe_dir_event(
                policy, "read_miss", state_idx, streak, 0, flag)
            rows.read_miss[(state_idx, streak, flag)] = row
            nexts.append(row[:2])
            for same in (0, 1):
                wkey = (state_idx, streak, same, flag)
                for event, table in (("write_miss", rows.write_miss),
                                     ("write_hit", rows.write_hit)):
                    row = _probe_dir_event(
                        policy, event, state_idx, streak, same, flag)
                    table[wkey] = row
                    nexts.append(row[:2])
        urow = rows.uncached.get(state_idx)
        if urow is None:
            urow = rows.uncached[state_idx] = _probe_dir_uncached(
                policy, state_idx)
        nexts.append((urow[0], 0 if urow[1] else streak))
        for pair in nexts:
            if pair not in seen:
                if pair[1] > MAX_STREAK:
                    raise KernelUnsupported(
                        f"streak axis did not close under {MAX_STREAK}"
                    )
                seen.add(pair)
                frontier.append(pair)
                max_streak = max(max_streak, pair[1])
    return max_streak


class KernelUnsupported(Exception):
    """The protocol/policy lies outside what the compiler can lower."""


_DIR_ROWS_CACHE: dict = {}


def _policy_key(policy: AdaptivePolicy) -> tuple:
    return (policy.migratory_threshold, policy.initial_migratory,
            policy.remember_uncached, policy.demote_on_migratory_write_miss)


def compile_dir_rows(policy: AdaptivePolicy) -> DirRows:
    """Compile (with caching) the dense rows for ``policy``.

    Raises:
        KernelUnsupported: the policy's hysteresis depth cannot be packed.
    """
    threshold = policy.migratory_threshold
    if threshold is not None and threshold > MAX_STREAK:
        raise KernelUnsupported(f"migratory_threshold {threshold} too deep")
    key = _policy_key(policy)
    rows = _DIR_ROWS_CACHE.get(key)
    if rows is None:
        rows = _DIR_ROWS_CACHE.setdefault(key, DirRows(policy))
    return rows


def dir_table_digest(policy: AdaptivePolicy) -> str:
    """Digest of the compiled rows (``"uncompiled"`` when unsupported)."""
    try:
        return compile_dir_rows(policy).digest
    except (KernelUnsupported, ProtocolError):
        return "uncompiled"


# ---------------------------------------------------------------------------
# Snooping protocol rows
# ---------------------------------------------------------------------------

#: Protocol types the kernel may replay.  Exact types only: subclasses
#: (e.g. the fault-injection variants in repro.conformance.bugs) take the
#: object paths, whose behavior they were written against.
SNOOP_KERNEL_TYPES: tuple[type, ...] = ()


def _snoop_kernel_types() -> tuple[type, ...]:
    global SNOOP_KERNEL_TYPES
    if not SNOOP_KERNEL_TYPES:
        from repro.snooping.protocols import (
            AdaptiveSnoopingProtocol,
            AlwaysMigrateProtocol,
            MesiProtocol,
        )
        from repro.snooping.update_protocols import (
            CompetitiveUpdateProtocol,
            WriteUpdateProtocol,
        )
        from repro.protocols.selfinval import SelfInvalidationProtocol
        SNOOP_KERNEL_TYPES = (
            MesiProtocol, AdaptiveSnoopingProtocol, AlwaysMigrateProtocol,
            WriteUpdateProtocol, CompetitiveUpdateProtocol,
            SelfInvalidationProtocol,
        )
    return SNOOP_KERNEL_TYPES


class SnoopRows:
    """Dense reaction rows for one snooping protocol.

    All states are kernel indices (``SNOOP_STATES``); counters are the
    competitive-update staleness values (always 0 for other protocols).

    * ``read_cold`` / ``write_cold`` — requester fill ``(state, dirty)``
      when no cache holds the block.
    * ``read_react[(s, c)]`` / ``write_react[(s, c)]`` — one holder's
      reaction to a miss: ``(new_state, new_counter, fill_state,
      fill_dirty)`` where fill is the requester fill this holder alone
      would produce (state 0 = the holder invalidated itself).
    * ``needs_bus[s]`` — whether a write hit in state ``s`` takes the bus.
    * ``silent[s]`` — bus-silent write hit: ``(new_state, new_dirty)``.
    * ``wh_kind`` — the transaction kind bus write hits record.
    * ``wh_remote[(s, c)]`` — a holder's reaction to that transaction.
    * ``wh_local[(l, s, c)]`` / ``wh_local_cold[l]`` — the writer's own
      line ``(state, dirty, counter)`` after upgrading from state ``l``
      against one holder (or none).
    * ``read_hit[(s, c)]`` — local read-hit hook effect (identity for
      protocols that define none).
    """

    __slots__ = ("name", "counter_threshold", "updates_remote_copies",
                 "read_cold", "write_cold", "read_react", "write_react",
                 "needs_bus", "silent", "wh_kind", "wh_remote",
                 "wh_local", "wh_local_cold", "read_hit", "digest")

    def __init__(self, protocol: SnoopingProtocol):
        self.name = protocol.name
        self.counter_threshold = getattr(protocol, "threshold", 0)
        if self.counter_threshold > MAX_COUNTER_THRESHOLD:
            raise KernelUnsupported(
                f"staleness threshold {self.counter_threshold} too deep"
            )
        self.updates_remote_copies = protocol.updates_remote_copies
        self.read_react: dict = {}
        self.write_react: dict = {}
        self.wh_remote: dict = {}
        self.wh_local: dict = {}
        self.wh_local_cold: dict = {}
        self.silent: dict = {}
        self.read_hit: dict = {}
        self.wh_kind = ""
        _probe_snoop_rows(protocol, self)
        self.digest = _digest("snoop", [
            self.name, self.counter_threshold,
            self.read_cold, self.write_cold,
            sorted(self.read_react.items()),
            sorted(self.write_react.items()),
            self.needs_bus,
            sorted(self.silent.items()),
            self.wh_kind,
            sorted(self.wh_remote.items()),
            sorted(self.wh_local.items()),
            sorted(self.wh_local_cold.items()),
            sorted(self.read_hit.items()),
        ])


_PROBE_BLOCK = 0


def _planted(entries):
    """Infinite caches with ``entries`` = [(cache_idx, state_idx, counter)]."""
    caches = [InfiniteCache(), InfiniteCache()]
    for idx, state_idx, counter in entries:
        state = SNOOP_STATES[state_idx]
        caches[idx].insert(_PROBE_BLOCK, state, state_idx in DIRTY_SNOOP)
        caches[idx].lookup(_PROBE_BLOCK).counter = counter
    return caches


def _encode_line(line: CacheLine | None) -> tuple[int, int]:
    """``(state_idx, counter)`` for a line, asserting dirty tracks state."""
    if line is None:
        return (0, 0)
    idx = SNOOP_INDEX[line.state]
    if line.dirty != (idx in DIRTY_SNOOP):
        raise KernelUnsupported(
            f"dirty bit diverges from state {line.state} under probe"
        )
    return (idx, line.counter)


def _fill_idx(fill) -> tuple[int, int]:
    state, dirty = fill
    idx = SNOOP_INDEX[state]
    if bool(dirty) != (idx in DIRTY_SNOOP):
        raise KernelUnsupported(f"fill dirty bit diverges for state {state}")
    return idx, 1 if dirty else 0


def _probe_snoop_rows(protocol: SnoopingProtocol, rows: SnoopRows) -> None:
    cap = rows.counter_threshold
    state_range = range(1, len(SNOOP_STATES))

    # Cold fills.
    rows.read_cold = _fill_idx(
        protocol.read_miss_fill(_planted([]), 0, _PROBE_BLOCK))
    rows.write_cold = _fill_idx(
        protocol.write_miss_fill(_planted([]), 0, _PROBE_BLOCK))

    # Per-holder miss reactions.
    for s in state_range:
        for c in range(cap + 1):
            for attr, handler in (("read_react", protocol.read_miss_fill),
                                  ("write_react", protocol.write_miss_fill)):
                caches = _planted([(1, s, c)])
                try:
                    fill = _fill_idx(handler(caches, 0, _PROBE_BLOCK))
                except ProtocolError:
                    continue  # state this protocol can never snoop
                after = _encode_line(caches[1].lookup(_PROBE_BLOCK))
                getattr(rows, attr)[(s, c)] = after + fill

    # Write-hit classification of each state, and the silent transitions.
    needs_bus = [False] * len(SNOOP_STATES)
    for s in state_range:
        probe = CacheLine(_PROBE_BLOCK, SNOOP_STATES[s], s in DIRTY_SNOOP)
        needs_bus[s] = bool(protocol.write_hit_needs_bus(probe))
        if not needs_bus[s]:
            try:
                protocol.write_hit_silent(probe)
            except ProtocolError:
                continue
            rows.silent[s] = _encode_line(probe)[0]
    rows.needs_bus = tuple(needs_bus)

    # Bus write hits: writer in state l, at most one holder (s, c).
    for l in state_range:
        if not needs_bus[l]:
            continue
        caches = _planted([(0, l, 0)])
        line = caches[0].lookup(_PROBE_BLOCK)
        rows.wh_kind = protocol.write_hit_bus(caches, 0, _PROBE_BLOCK, line)
        rows.wh_local_cold[l] = _encode_line(line)
        for s in state_range:
            for c in range(cap + 1):
                caches = _planted([(0, l, 0), (1, s, c)])
                line = caches[0].lookup(_PROBE_BLOCK)
                try:
                    kind = protocol.write_hit_bus(
                        caches, 0, _PROBE_BLOCK, line)
                except ProtocolError:
                    continue
                if kind != rows.wh_kind:
                    raise KernelUnsupported("write-hit kind varies by holder")
                rows.wh_remote[(s, c)] = _encode_line(
                    caches[1].lookup(_PROBE_BLOCK))
                rows.wh_local[(l, s, c)] = _encode_line(line)

    # Read-hit hook (counter bookkeeping for the competitive family).
    for s in state_range:
        for c in range(cap + 1):
            probe = CacheLine(_PROBE_BLOCK, SNOOP_STATES[s], s in DIRTY_SNOOP)
            probe.counter = c
            protocol.read_hit(probe)
            rows.read_hit[(s, c)] = _encode_line(probe)


_SNOOP_ROWS_CACHE: dict = {}


def compile_snoop_rows(protocol: SnoopingProtocol) -> SnoopRows:
    """Compile (with caching) the dense rows for ``protocol``.

    Only the exact shipped protocol types are compiled; probing would
    silently mis-model arbitrary subclasses.

    Raises:
        KernelUnsupported: unknown type or unpackable parameters.
    """
    if type(protocol) not in _snoop_kernel_types():
        raise KernelUnsupported(f"no kernel for {type(protocol).__qualname__}")
    key = (type(protocol).__qualname__, protocol.name)
    rows = _SNOOP_ROWS_CACHE.get(key)
    if rows is None:
        rows = _SNOOP_ROWS_CACHE.setdefault(key, SnoopRows(protocol))
    return rows


def snoop_table_digest(protocol: SnoopingProtocol) -> str:
    """Digest of the compiled rows (``"uncompiled"`` when unsupported)."""
    try:
        return compile_snoop_rows(protocol).digest
    except (KernelUnsupported, ProtocolError):
        return "uncompiled"
