"""Streaming interpreter over the compiled replay tables.

The batch kernels (:mod:`repro.kernels.directory` / ``snooping``) need
the whole trace resident to split it into per-block symbol sequences.
That caps trace size at available RAM — a billion-access trace is tens
of gigabytes of columns before the walk even starts.  This module runs
the *same* compiled rows as a streaming interpreter: the caller feeds
:class:`~repro.trace.packed.PackedTrace` segments one at a time
(:meth:`PackedTrace.segments`, a synthesis generator, or chunks attached
from a shared-memory arena via :func:`repro.trace.shm.attach_packed`),
and the replay keeps only

* one DFA node reference per *block seen so far* — the block's current
  machine state, exactly what the machine itself must hold — and
* O(chunk) transient state per fed segment (that segment's per-block
  symbol runs and delta lists).

Statistics merge deterministically: every per-segment walk yields
integer delta totals, and integer addition is order-independent, so a
replay fed in 1-access segments produces byte-identical stats and final
machine state to the batch kernel and to the packed loop.

Blocks making their first appearance start at the DFA root and reuse
the batch kernels' per-sequence result caches; continuation walks (a
block spanning segments) resume from the stored node.  ``finish()``
writes the accumulated totals and final per-block states through the
batch kernels' own ``_apply`` helpers, so the two backends cannot
drift.

The streaming envelope is the batch envelope minus finite caches:
replacement needs the set's *global* conflict structure, which a
segment-local view cannot establish (a set that never conflicts within
any one segment may still conflict across them).  Ineligible machines
raise :class:`~repro.kernels.tables.KernelUnsupported` from the
constructor; :func:`replay_stream` converts that into an honest counted
fallback onto ``machine.run``.
"""

from __future__ import annotations

from repro.cache.core import InfiniteCache
from repro.common.errors import ProtocolError
from repro.common.stats import BusStats, CacheStats, MessageStats
from repro.directory.protocol import DirectoryProtocol
from repro.directory.representation import FullMapDirectory
from repro.kernels import registry, snooping
from repro.kernels import directory as dkernel
from repro.kernels.tables import KernelUnsupported
from repro.system.placement import FirstTouchPlacement


def _unsupported(engine: str, reason: str):
    """Raise the constructor-contract error for an ineligible machine."""
    raise KernelUnsupported(f"{engine}: {reason}")


class DirectoryStreamReplay:
    """Incremental table-driven replay for a ``DirectoryMachine``.

    Usage::

        replay = DirectoryStreamReplay(machine)
        for segment in packed.segments(1 << 20):
            replay.feed(segment)
        stats = replay.finish()

    The machine is untouched until :meth:`finish`; a
    :class:`KernelUnsupported` raised by the constructor or mid-feed
    leaves it fresh, so the caller can still run any other backend.
    """

    #: Engagement / fallback engine label.
    ENGINE = "directory-stream"

    def __init__(self, machine):
        config = machine.config
        if not registry.kernels_enabled():
            _unsupported(self.ENGINE, "disabled")
        if config.num_procs > dkernel._MAX_PROCS:
            _unsupported(self.ENGINE, "num-procs")
        if machine.block_messages is not None:
            _unsupported(self.ENGINE, "block-messages")
        if machine.step_hook is not None:
            _unsupported(self.ENGINE, "step-hook")
        from repro.system.machine import DirectoryMachine

        if type(machine) is not DirectoryMachine:
            # Family machines override the charging paths the compiled
            # rows encode; their class names the honest reason.
            _unsupported(
                self.ENGINE,
                getattr(machine, "kernel_fallback_reason", "machine-subclass"),
            )
        placement = machine.placement
        self._first_touch = type(placement) is FirstTouchPlacement
        if (not self._first_touch
                and type(placement) not in dkernel._PLACEMENT_TYPES):
            _unsupported(self.ENGINE, "placement")
        if type(machine.representation) is not FullMapDirectory:
            _unsupported(self.ENGINE, "representation")
        if type(machine.protocol) is not DirectoryProtocol:
            _unsupported(self.ENGINE, "protocol-type")
        if (machine.stats != MessageStats()
                or machine.cache_stats != CacheStats()
                or machine.protocol._entries or machine.protocol.transitions
                or machine.invalidation_sizes
                or any(len(cache) for cache in machine.caches)):
            _unsupported(self.ENGINE, "not-fresh")
        first = machine.caches[0] if machine.caches else None
        if type(first) is not InfiniteCache:
            # Replacement needs the set's global conflict structure,
            # which a segment-local view cannot establish.
            _unsupported(self.ENGINE, "finite-cache")
        try:
            self._table = registry.dir_table(machine.policy, config.num_procs)
        except KernelUnsupported:
            _unsupported(self.ENGINE, "table-unsupported")
        self.machine = machine
        self._wide = config.num_procs > 128
        self._root_key = self._table.rows.initial_state << (2 * config.num_procs)
        #: block -> (home, current DFA node) for every block seen so far.
        self._nodes: dict[int, tuple[int, list]] = {}
        if self._first_touch:
            self._homes = dict(placement._homes)
            self._new_homes: dict[int, int] = {}
        self._totals = [0] * dkernel._VEC
        self._inv_sizes: dict[int, int] = {}
        self._finished = False

    def feed(self, packed) -> None:
        """Replay one trace segment's accesses (no machine mutation)."""
        if self._finished:
            raise ProtocolError("feed() after finish() on a stream replay")
        machine = self.machine
        if packed.num_procs > machine.config.num_procs:
            _unsupported(self.ENGINE, "trace-procs")
        wide = self._wide
        try:
            if wide:
                seqs = packed.block_sequences_wide(machine._block_shift)
            else:
                seqs = packed.block_sequences(machine._block_shift)
        except (ValueError, OverflowError):
            _unsupported(self.ENGINE, "symbol-range")
        table = self._table
        node_of = table.node
        home_shift = machine._home_shift
        placement = machine.placement
        root_key = self._root_key
        nodes = self._nodes
        totals = self._totals
        inv_sizes = self._inv_sizes
        for block, seq in seqs.items():
            known = nodes.get(block)
            if known is None:
                page = block >> home_shift
                if self._first_touch:
                    home = self._homes.get(page)
                    if home is None:
                        # First access to the page: a fresh machine's
                        # first access is always a miss, so the home is
                        # the first symbol's processor.
                        sym0 = (seq[0] | seq[1] << 8) if wide else seq[0]
                        home = sym0 >> 1
                        self._homes[page] = self._new_homes[page] = home
                else:
                    home = placement.home(page, 0)
                # A root-start walk is exactly a batch per-block walk,
                # so it shares the batch per-sequence result cache.
                seq_key = (home, seq, 1) if wide else (home, seq)
                result = table.seq_results.get(seq_key)
                if result is None:
                    root = node_of((home, root_key), root_key)
                    syms = memoryview(seq).cast("H") if wide else seq
                    result = dkernel._walk(table, home, root, syms)
                    table.cache_seq_result(seq_key, result)
            else:
                home, node = known
                syms = memoryview(seq).cast("H") if wide else seq
                result = dkernel._walk(table, home, node, syms)
            vec, inv, final_key = result
            for i, v in enumerate(vec):
                totals[i] += v
            for size, count in inv:
                inv_sizes[size] = inv_sizes.get(size, 0) + count
            nodes[block] = (home, node_of((home, final_key), final_key))

    def finish(self):
        """Write the accumulated replay into the machine; return stats."""
        if self._finished:
            raise ProtocolError("finish() called twice on a stream replay")
        self._finished = True
        machine = self.machine
        if machine.step_hook is not None:
            raise ProtocolError(
                "step_hook installed mid-replay on the streaming kernel "
                "path: the hook missed every earlier step, so its "
                "observations are unreliable; install it before feeding "
                "to take the generic per-access path"
            )
        finals = [(block, hn[1][-1]) for block, hn in self._nodes.items()]
        dkernel._apply(machine, self._totals, self._inv_sizes, finals)
        if self._first_touch and self._new_homes:
            machine.placement._homes.update(self._new_homes)
        registry.engagements[self.ENGINE] += 1
        return machine.stats


class BusStreamReplay:
    """Incremental table-driven replay for a ``BusMachine``.

    Same shape as :class:`DirectoryStreamReplay`; bus charges carry no
    home node or invalidation sizes, so the per-block state is just the
    current DFA node.
    """

    ENGINE = "bus-stream"

    def __init__(self, machine):
        config = machine.config
        if not registry.kernels_enabled():
            _unsupported(self.ENGINE, "disabled")
        if config.num_procs > snooping._MAX_PROCS:
            _unsupported(self.ENGINE, "num-procs")
        if machine.step_hook is not None:
            _unsupported(self.ENGINE, "step-hook")
        from repro.snooping.machine import BusMachine

        if type(machine) is not BusMachine:
            _unsupported(
                self.ENGINE,
                getattr(machine, "kernel_fallback_reason", "machine-subclass"),
            )
        if (machine.bus_stats != BusStats()
                or machine.cache_stats != CacheStats()
                or any(len(cache) for cache in machine.caches)):
            _unsupported(self.ENGINE, "not-fresh")
        first = machine.caches[0] if machine.caches else None
        if type(first) is not InfiniteCache:
            _unsupported(self.ENGINE, "finite-cache")
        family_reason = getattr(
            machine.protocol, "kernel_fallback_reason", None
        )
        if family_reason is not None:
            _unsupported(self.ENGINE, family_reason)
        try:
            self._table = registry.bus_table(machine.protocol, config.num_procs)
        except (KernelUnsupported, ProtocolError):
            _unsupported(self.ENGINE, "table-unsupported")
        self.machine = machine
        self._wide = config.num_procs > 128
        #: block -> current DFA node for every block seen so far.
        self._nodes: dict[int, list] = {}
        self._totals = [0] * snooping._VEC
        self._finished = False

    def feed(self, packed) -> None:
        """Replay one trace segment's accesses (no machine mutation)."""
        if self._finished:
            raise ProtocolError("feed() after finish() on a stream replay")
        machine = self.machine
        if packed.num_procs > machine.config.num_procs:
            _unsupported(self.ENGINE, "trace-procs")
        wide = self._wide
        try:
            if wide:
                seqs = packed.block_sequences_wide(machine._block_shift)
            else:
                seqs = packed.block_sequences(machine._block_shift)
        except (ValueError, OverflowError):
            _unsupported(self.ENGINE, "symbol-range")
        table = self._table
        node_of = table.node
        nodes = self._nodes
        totals = self._totals
        for block, seq in seqs.items():
            node = nodes.get(block)
            if node is None:
                seq_key = (seq, 1) if wide else seq
                result = table.seq_results.get(seq_key)
                if result is None:
                    root = node_of(0, 0)
                    syms = memoryview(seq).cast("H") if wide else seq
                    result = snooping._walk(table, root, syms)
                    table.cache_seq_result(seq_key, result)
            else:
                syms = memoryview(seq).cast("H") if wide else seq
                result = snooping._walk(table, node, syms)
            vec, final_key = result
            for i, v in enumerate(vec):
                totals[i] += v
            nodes[block] = node_of(final_key, final_key)

    def finish(self):
        """Write the accumulated replay into the machine; return stats."""
        if self._finished:
            raise ProtocolError("finish() called twice on a stream replay")
        self._finished = True
        machine = self.machine
        if machine.step_hook is not None:
            raise ProtocolError(
                "step_hook installed mid-replay on the streaming kernel "
                "path: the hook missed every earlier step, so its "
                "observations are unreliable; install it before feeding "
                "to take the generic per-access path"
            )
        finals = [(block, node[-1]) for block, node in self._nodes.items()]
        snooping._apply(machine, self._table, self._totals, finals)
        registry.engagements[self.ENGINE] += 1
        return machine.bus_stats


def stream_replay_for(machine):
    """The stream-replay class matching ``machine``'s engine.

    Dispatches on duck type (directory machines track per-block
    messages and a placement; bus machines a bus), so callers need not
    import the machine classes.
    """
    if hasattr(machine, "placement"):
        return DirectoryStreamReplay(machine)
    return BusStreamReplay(machine)


def replay_stream(machine, packed, chunk: int = 1 << 20):
    """Replay ``packed`` on ``machine`` in O(chunk) resident memory.

    Feeds :meth:`PackedTrace.segments` chunks through the matching
    stream-replay; when the machine falls outside the streaming
    envelope the fallback is counted under the stream engine's label
    and the replay runs through ``machine.run`` (which may still engage
    the batch kernel) — behavior is identical either way.
    """
    try:
        replay = stream_replay_for(machine)
        for segment in packed.segments(chunk):
            replay.feed(segment)
        return replay.finish()
    except KernelUnsupported as exc:
        engine, _, reason = str(exc).partition(": ")
        registry.record_fallback(engine, reason or "unsupported")
        return machine.run(packed)
