"""repro — reproduction of Cox & Fowler's adaptive migratory-detection
cache coherence protocols (ISCA 1993).

Public API highlights:

* :class:`repro.common.MachineConfig` / :class:`repro.common.CacheConfig`
  — machine parameters.
* :data:`repro.directory.PAPER_POLICIES` — the conventional, conservative,
  basic and aggressive protocol policy points.
* :class:`repro.system.DirectoryMachine` — the trace-driven CC-NUMA model
  with Table 1 message accounting.
* :class:`repro.snooping.BusMachine` — the bus-based snooping model with
  MESI, adaptive-MESI, and always-migrate protocols.
* :mod:`repro.trace.synth` — canonical sharing-pattern generators.
* :mod:`repro.workloads` — the mini execution engine and the five SPLASH
  application analogues.
* :mod:`repro.experiments` — one entry point per paper table/figure.
* :mod:`repro.parallel` — deterministic process fan-out for the sweeps.
"""

from repro.common import Access, CacheConfig, MachineConfig, Op, read, write
from repro.directory import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    PAPER_POLICIES,
    AdaptivePolicy,
)
from repro.snooping import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    BusMachine,
    MesiProtocol,
)
from repro.parallel import parallel_map, resolve_jobs
from repro.system import DirectoryMachine, make_placement
from repro.trace import PackedTrace, Trace

__version__ = "1.0.0"

__all__ = [
    "AGGRESSIVE",
    "Access",
    "AdaptivePolicy",
    "AdaptiveSnoopingProtocol",
    "AlwaysMigrateProtocol",
    "BASIC",
    "BusMachine",
    "CONSERVATIVE",
    "CONVENTIONAL",
    "CacheConfig",
    "DirectoryMachine",
    "MachineConfig",
    "MesiProtocol",
    "Op",
    "PAPER_POLICIES",
    "PackedTrace",
    "Trace",
    "__version__",
    "make_placement",
    "parallel_map",
    "read",
    "resolve_jobs",
    "write",
]
