"""The ``repro-verify`` console entry point.

Usage::

    repro-verify [--procs N] [--blocks N] [--no-evictions]
                 [--engine bus|directory|all] [--protocol NAME]
                 [--inject NAME] [--jobs N] [--max-states N]
                 [--certificate PATH] [--artifacts DIR] [--verbose]

Model-checks every shipped snooping protocol and directory policy (or a
``--engine``/``--protocol`` slice) to closure under the requested
bounds, prints one verdict line per combo, and writes a JSON
*certificate* recording the config, per-combo kernel table digests,
reachable-state and transition counts, and per-property verdicts.

Stdout and the certificate are byte-deterministic for a fixed request,
whatever ``--jobs`` says: BFS frontiers shard into contiguous chunks
whose results merge in submission order, and all timing goes to stderr.
The exit status is 0 when every combo verifies and 1 otherwise, so the
command slots directly into CI.

On a property violation the shortest counterexample path is printed and
(when it contains no eviction actions) written as a
:mod:`repro.conformance.artifacts` reproducer under ``--artifacts``,
ready for ``repro-fuzz``-style replay and the regression corpus.

``--inject`` swaps a deliberately broken engine variant in (see
:mod:`repro.conformance.bugs`) — the self-test proving the checker
actually finds bugs and shrinks them to paths.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.version import add_version_argument
from repro.parallel import resolve_jobs
from repro.verification import checker
from repro.verification.model import (
    DIRECTORY_POLICIES,
    MODEL_CHECKABLE_INJECTIONS,
    SNOOP_PROTOCOLS,
    VerificationError,
)

#: Default certificate output path.
DEFAULT_CERTIFICATE = Path("repro-verify-certificate.json")

#: Default directory for counterexample reproducers.
DEFAULT_ARTIFACT_DIR = Path("repro-verify-artifacts")


def _format_path(path) -> str:
    return " ".join(f"{proc}:{op}:b{block}" for proc, op, block in path)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Bounded model checking of the coherence protocols: "
        "exhaustive reachable-state exploration, invariant + SC "
        "properties, counterexample paths, machine-checked "
        "certificates.",
    )
    add_version_argument(parser)
    parser.add_argument("--procs", type=int, default=2,
                        help="processors in the model (default 2)")
    parser.add_argument("--blocks", type=int, default=1,
                        help="blocks in the model (default 1)")
    parser.add_argument("--no-evictions", action="store_true",
                        help="drop replacement actions from the model "
                        "(infinite-cache transition relation only)")
    parser.add_argument("--engine", choices=["bus", "directory", "all"],
                        default="all",
                        help="engine family to check (default: both)")
    parser.add_argument("--protocol", default=None,
                        help="check a single protocol/policy by name")
    parser.add_argument("--inject",
                        choices=sorted(MODEL_CHECKABLE_INJECTIONS),
                        default="none",
                        help="swap in a deliberately broken engine "
                        "variant (checker self-test)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                        "serial; 0 = all CPUs); the certificate is "
                        "byte-identical for any job count")
    parser.add_argument("--max-states", type=int,
                        default=checker.MAX_STATES,
                        help="safety ceiling on the reachable set "
                        f"(default {checker.MAX_STATES})")
    parser.add_argument("--certificate", type=Path,
                        default=DEFAULT_CERTIFICATE,
                        help="certificate output path (default "
                        f"{DEFAULT_CERTIFICATE}); '-' to skip")
    parser.add_argument("--artifacts", type=Path,
                        default=DEFAULT_ARTIFACT_DIR,
                        help="directory for counterexample reproducers "
                        f"(default {DEFAULT_ARTIFACT_DIR})")
    parser.add_argument("--verbose", action="store_true",
                        help="print per-property verdicts for every "
                        "combo, not just violations")
    parser.add_argument("--expect-registry", action="store_true",
                        help="fail unless the sweep certified every "
                        "registered protocol family (all snooping "
                        "protocols and directory policies) — the CI "
                        "guard that a newly registered family cannot "
                        "ship un-model-checked")
    args = parser.parse_args(argv)

    known = sorted(SNOOP_PROTOCOLS) + sorted(DIRECTORY_POLICIES)
    if args.protocol is not None and args.protocol not in known:
        parser.error(
            f"unknown protocol {args.protocol!r}; expected one of {known}"
        )
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    print(
        f"repro-verify: procs={args.procs} blocks={args.blocks} "
        f"evictions={not args.no_evictions} inject={args.inject}"
    )
    started = time.time()
    try:
        result = checker.sweep(
            engine=args.engine,
            protocol=args.protocol,
            num_procs=args.procs,
            num_blocks=args.blocks,
            evictions=not args.no_evictions,
            inject=args.inject,
            jobs=args.jobs,
            max_states=args.max_states,
        )
    except VerificationError as exc:
        parser.error(str(exc))
    print(f"[checked {args.engine} combos in {time.time() - started:.1f}s]",
          file=sys.stderr)

    for combo in result.results:
        violations = sum(combo.property_counts.values())
        if violations == 0:
            print(
                f"{combo.config.label}: {combo.num_states} states, "
                f"{combo.num_transitions} transitions, all properties ok"
            )
        else:
            violated = sorted(
                name for name, count in combo.property_counts.items()
                if count
            )
            print(
                f"{combo.config.label}: {combo.num_states} states, "
                f"{combo.num_transitions} transitions, "
                f"{violations} violation(s) [{', '.join(violated)}]"
            )
            example = combo.violations[0]
            print(f"  shortest counterexample "
                  f"({len(example.path)} actions): "
                  f"{_format_path(example.path)}")
            print(f"  {example.property}: {example.message}")
        if args.verbose:
            for name in checker.PROPERTIES:
                count = combo.property_counts[name]
                verdict = "ok" if count == 0 else f"{count} violation(s)"
                print(f"  {name}: {verdict}")

    if not result.ok:
        for path in result.write_reproducers(args.artifacts):
            print(f"counterexample reproducer -> {path}")

    if str(args.certificate) != "-":
        args.certificate.parent.mkdir(parents=True, exist_ok=True)
        args.certificate.write_text(
            json.dumps(result.certificate(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"certificate -> {args.certificate}")

    registry_ok = True
    if args.expect_registry:
        # Coverage is registry-driven: the expectation set is computed
        # from the live SNOOP_PROTOCOLS / DIRECTORY_POLICIES maps, so a
        # newly registered family widens it automatically and an
        # un-swept family fails the run even with zero violations.
        expected = ({f"bus/{name}" for name in SNOOP_PROTOCOLS}
                    | {f"directory/{name}" for name in DIRECTORY_POLICIES})
        certified = {combo.config.label for combo in result.results
                     if combo.config.inject == "none"
                     and not sum(combo.property_counts.values())}
        missing = sorted(expected - certified)
        if missing:
            registry_ok = False
            print(
                "repro-verify: --expect-registry: "
                f"{len(missing)} registered famil"
                f"{'y' if len(missing) == 1 else 'ies'} not certified "
                f"by this sweep: {', '.join(missing)}"
            )
        else:
            print(
                f"repro-verify: --expect-registry: all {len(expected)} "
                "registered families certified"
            )

    totals = result.certificate()["totals"]
    print(
        f"repro-verify: {totals['combos']} combo(s), "
        f"{totals['states']} states, {totals['transitions']} "
        f"transitions, {totals['violations']} violation(s)"
    )
    return 0 if result.ok and registry_ok else 1


if __name__ == "__main__":
    sys.exit(main())
