"""Exhaustive state-space exploration of the coherence protocols.

For a single block and a small processor count, the global coherence
state of either machine is finite: each cache holds the block in one of
a handful of states (or not at all), and the directory adds a bounded
classification record.  That makes the protocols *model-checkable*: this
module enumerates every reachable global state under every possible
read/write action by every processor (breadth-first, to closure) and
checks the safety invariants in every state:

* at most one exclusive copy, and never alongside other copies;
* at most one dirty copy;
* at most one ``S2`` copy, and at most two copies total while it exists;
* the directory's copy set equals the true holder set.

Beyond safety, the explorer reports the *reachable state set*, which
turns the paper's structural remarks into theorems over the model, e.g.
"if migrate-on-read-miss is the initial policy, the Exclusive state has
no in-transitions and could be eliminated as a dead state" — the
explorer verifies ``E`` is reachable under the default protocol and
unreachable under the initial-migratory variant.

Evictions are excluded (caches are infinite here); they only remove
copies, and removal paths are covered by the invalidation actions and
separately by the randomized property tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cache.core import InfiniteCache
from repro.common.config import CacheConfig, MachineConfig
from repro.conformance.invariants import (
    directory_copy_violations,
    snooping_copy_violations,
)
from repro.directory.entry import DirectoryEntry, DirState
from repro.directory.policy import AdaptivePolicy
from repro.snooping.machine import BusMachine
from repro.snooping.states import SnoopState
from repro.system.machine import CState, DirectoryMachine

BLOCK = 0
ADDR = 0

#: ``(per-proc lines, pstate)`` where each line is None or
#: ``(state_name, dirty, counter)`` and ``pstate`` is the protocol's
#: own per-block record (``SnoopingProtocol.block_state`` — None for
#: the stateless protocols).  Carrying it in the global state keeps the
#: exploration sound for history-sensitive protocols like the hybrid
#: update/invalidate family: a fresh machine is built per expansion, so
#: any protocol-side state not installed here would silently reset.
SnoopGlobal = tuple
#: (dir state name, last_invalidator, streak, frozenset(copyset),
#:  extra, per-proc lines) with lines as ``(state_name, dirty)`` or
#: None and ``extra`` the machine's per-block record
#: (``DirectoryMachine.block_extra`` — None for the stock machine).
DirGlobal = tuple


@dataclass
class ExplorationResult:
    """Outcome of exploring one protocol's state space."""

    states: set = field(default_factory=set)
    transitions: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def line_states_seen(self) -> set[str]:
        """Every per-cache line state name that occurs anywhere."""
        seen = set()
        for state in self.states:
            # Directory globals lead with the DirState name and end with
            # the lines; snooping globals lead with the lines.
            lines = state[-1] if isinstance(state[0], str) else state[0]
            for line in lines:
                if line is not None:
                    seen.add(line[0])
        return seen


# ----------------------------------------------------------------------
# Snooping machine
# ----------------------------------------------------------------------

def _snoop_config(num_procs: int) -> MachineConfig:
    return MachineConfig(
        num_procs=num_procs, cache=CacheConfig(size_bytes=None, block_size=16)
    )


def _snoop_extract(machine: BusMachine) -> SnoopGlobal:
    lines = []
    for cache in machine.caches:
        line = cache.lookup(BLOCK)
        if line is None:
            lines.append(None)
        else:
            lines.append((line.state.name, line.dirty, line.counter))
    return tuple(lines), machine.protocol.block_state(BLOCK)


def _snoop_install(machine: BusMachine, state: SnoopGlobal) -> None:
    lines, pstate = state
    for cache, line in zip(machine.caches, lines):
        if line is not None:
            name, dirty, counter = line
            cache.insert(BLOCK, SnoopState[name], dirty)
            cache.lookup(BLOCK).counter = counter
        else:
            cache.remove(BLOCK)
    machine.protocol.set_block_state(BLOCK, pstate)


def _check_snoop_invariants(state: SnoopGlobal) -> list[str]:
    lines = [
        (SnoopState[line[0]], line[1])
        for line in state[0] if line is not None
    ]
    return [
        f"{problem}: {state}"
        for problem in snooping_copy_violations(lines, BLOCK)
    ]


def explore_snooping(
    protocol_factory, num_procs: int = 3, with_evictions: bool = False
) -> ExplorationResult:
    """Explore a snooping protocol's full reachable state space.

    Args:
        with_evictions: add per-processor replacement actions (silent
            clean drop / dirty writeback), which a bus protocol performs
            without informing anyone.
    """
    result = ExplorationResult()
    initial: SnoopGlobal = (tuple([None] * num_procs), None)
    frontier = deque([initial])
    result.states.add(initial)
    actions: list[tuple] = [
        (proc, action)
        for proc in range(num_procs)
        for action in (
            ("read", "write", "evict") if with_evictions
            else ("read", "write")
        )
    ]
    while frontier:
        state = frontier.popleft()
        for proc, action in actions:
            machine = BusMachine(_snoop_config(num_procs), protocol_factory())
            _snoop_install(machine, state)
            if action == "evict":
                if machine.caches[proc].remove(BLOCK) is None:
                    continue  # nothing resident: no transition
            else:
                machine.access(proc, action == "write", ADDR)
            successor = _snoop_extract(machine)
            result.transitions[(state, proc, action)] = successor
            if successor not in result.states:
                result.states.add(successor)
                result.violations.extend(_check_snoop_invariants(successor))
                frontier.append(successor)
    return result


# ----------------------------------------------------------------------
# Directory machine
# ----------------------------------------------------------------------

def _dir_extract(machine: DirectoryMachine) -> DirGlobal:
    ent = machine.protocol.entry(BLOCK)
    lines = []
    for cache in machine.caches:
        line = cache.lookup(BLOCK)
        if line is None:
            lines.append(None)
        else:
            lines.append((line.state.name, line.dirty))
    return (
        ent.state.name,
        ent.last_invalidator,
        ent.streak,
        frozenset(ent.copyset),
        machine.block_extra(BLOCK),
        tuple(lines),
    )


def _dir_install(machine: DirectoryMachine, state: DirGlobal) -> None:
    dir_state, last_inv, streak, copyset, extra, lines = state
    ent = machine.protocol.entry(BLOCK)
    ent.state = DirState[dir_state]
    ent.last_invalidator = last_inv
    ent.streak = streak
    ent.copyset = set(copyset)
    for cache, line in zip(machine.caches, lines):
        if line is not None:
            name, dirty = line
            cache.insert(BLOCK, CState[name], dirty)
        else:
            cache.remove(BLOCK)
    machine.set_block_extra(BLOCK, extra)


def _check_dir_invariants(state: DirGlobal) -> list[str]:
    _dir_state, _last_inv, _streak, copyset, _extra, lines = state
    per_node = {
        node: line for node, line in enumerate(lines) if line is not None
    }
    return [
        f"{problem}: {state}"
        for problem in directory_copy_violations(copyset, per_node, BLOCK)
    ]


def explore_directory(
    policy: AdaptivePolicy,
    num_procs: int = 3,
    with_evictions: bool = False,
    machine_cls: type[DirectoryMachine] = DirectoryMachine,
) -> ExplorationResult:
    """Explore the directory protocol's full reachable state space.

    Args:
        with_evictions: add per-processor eviction actions (replacement
            notification / writeback paths), covering the
            classification-across-uncached-intervals machinery.
        machine_cls: the machine realization to explore — protocol
            families that ship their own directory machine (see
            :mod:`repro.protocols.registry`) pass it here so the
            explored transition relation is theirs, with any per-block
            machine state carried via ``block_extra``.
    """
    result = ExplorationResult()
    config = _snoop_config(num_procs)
    base = machine_cls(config, policy)
    initial = _dir_extract(base)
    frontier = deque([initial])
    result.states.add(initial)
    actions: list[tuple] = [
        (proc, action)
        for proc in range(num_procs)
        for action in (
            ("read", "write", "evict") if with_evictions
            else ("read", "write")
        )
    ]
    while frontier:
        state = frontier.popleft()
        for proc, action in actions:
            machine = machine_cls(config, policy)
            _dir_install(machine, state)
            if action == "evict":
                line = machine.caches[proc].remove(BLOCK)
                if line is None:
                    continue  # nothing to evict: no transition
                machine._evict(proc, line)  # noqa: SLF001 - test hook
            else:
                machine.access(proc, action == "write", ADDR)
            successor = _dir_extract(machine)
            result.transitions[(state, proc, action)] = successor
            if successor not in result.states:
                result.states.add(successor)
                result.violations.extend(_check_dir_invariants(successor))
                frontier.append(successor)
    return result


def directory_states_seen(result: ExplorationResult) -> set[str]:
    """The directory (Figure 3) states reachable in an exploration."""
    return {state[0] for state in result.states}
