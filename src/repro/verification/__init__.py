"""Exhaustive (finite-state) verification of the coherence protocols.

Two layers live here:

* :mod:`repro.verification.space` — the original single-block BFS
  explorer, kept as a lightweight structural-theorem tool.
* :mod:`repro.verification.model` / :mod:`repro.verification.checker` —
  the bounded model checker behind ``repro-verify`` and the service
  ``verify`` endpoint: multi-block configs, eviction actions,
  counterexample paths, and machine-checked certificates.
"""

from repro.verification.checker import (
    ComboResult,
    SweepResult,
    Violation,
    check_config,
    counterexample_case,
    sweep,
)
from repro.verification.model import (
    DIRECTORY_POLICIES,
    MODEL_CHECKABLE_INJECTIONS,
    SNOOP_PROTOCOLS,
    VerificationError,
    VerifyConfig,
    build_model,
    verify_combos,
)
from repro.verification.space import (
    ExplorationResult,
    directory_states_seen,
    explore_directory,
    explore_snooping,
)

__all__ = [
    "ComboResult",
    "DIRECTORY_POLICIES",
    "ExplorationResult",
    "MODEL_CHECKABLE_INJECTIONS",
    "SNOOP_PROTOCOLS",
    "SweepResult",
    "VerificationError",
    "VerifyConfig",
    "Violation",
    "build_model",
    "check_config",
    "counterexample_case",
    "directory_states_seen",
    "explore_directory",
    "explore_snooping",
    "sweep",
    "verify_combos",
]
