"""Exhaustive (finite-state) verification of the coherence protocols."""

from repro.verification.space import (
    ExplorationResult,
    directory_states_seen,
    explore_directory,
    explore_snooping,
)

__all__ = [
    "ExplorationResult",
    "directory_states_seen",
    "explore_directory",
    "explore_snooping",
]
