"""Bounded model checking with counterexample paths and certificates.

The checker drives a :mod:`repro.verification.model` model breadth-first
to closure and checks four properties:

* ``copy-invariants`` — the shared structural invariants from
  :mod:`repro.conformance.invariants` (exclusive copies are alone, the
  directory copy set matches the true holder set, ...), both as a check
  over every reachable state and via the machines' own ``check=True``
  per-step assertions.
* ``single-writer`` — at most one dirty copy of a block anywhere.
* ``sc-read-latest`` — every read returns the latest write: the
  machines' versioned stale-read detector, made decidable by the
  freshness abstraction.
* ``dirty-implies-fresh`` — a dirty copy always holds the latest
  version (a stale dirty copy would write back lost data).

**Counterexample paths.**  Every discovered state records its BFS
predecessor and the action that produced it, so a violated property
yields a *minimal* action trace from the cold-start state (BFS finds
shortest paths, so counterexamples arrive pre-shrunk).  Paths without
eviction actions convert into ordinary access traces and are written as
:mod:`repro.conformance.artifacts` reproducers — the differential
oracle, the shrinker, and the regression corpus consume them with no
new machinery.

**Parallel exploration.**  Each BFS level's frontier is sharded into
contiguous chunks and expanded on the persistent session pool via
:func:`repro.parallel.parallel_map`, which returns results in
submission order; the merged expansion order is therefore identical to
a serial run's for *any* job count, so certificates are byte-identical
whatever ``--jobs`` says.

**Certificates.**  A sweep produces a JSON-serialisable certificate
recording the config, each combo's kernel table digest (from
:mod:`repro.kernels.tables` — the certificate provably describes the
same transition tables the replay kernels execute), reachable-state and
transition counts, and per-property verdicts with recorded
counterexamples.  Certificates contain no timestamps or timings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ProtocolError
from repro.common.types import read, write
from repro.common.version import package_version
from repro.conformance.artifacts import save_reproducer
from repro.conformance.fuzzer import FuzzCase
from repro.conformance.oracle import CaseFailure
from repro.parallel import effective_workers, parallel_map
from repro.trace.core import Trace
from repro.verification.model import (
    BLOCK_SIZE,
    VerificationError,
    VerifyConfig,
    build_model,
    verify_combos,
)

#: The checked properties, in certificate order.
PROPERTIES = (
    "copy-invariants", "single-writer", "sc-read-latest",
    "dirty-implies-fresh",
)

#: Safety ceiling on the reachable set; exceeded means the abstraction
#: leaked an unbounded component, which is itself a finding.
MAX_STATES = 500_000

#: Counterexamples recorded per combo (all violations are *counted*).
MAX_RECORDED_VIOLATIONS = 20

#: Certificate schema version.
CERTIFICATE_SCHEMA = 1

#: ``kind`` marker identifying certificate payloads.
CERTIFICATE_KIND = "repro-verify-certificate"


@dataclass(frozen=True, slots=True)
class Violation:
    """One property violation with its minimal action path."""

    property: str
    message: str
    #: Actions ``(proc, op, block)`` from the cold-start state to the
    #: violation; the last action is the violating one for action-level
    #: properties.
    path: tuple[tuple[int, str, int], ...]

    @property
    def trace_expressible(self) -> bool:
        """Whether the path maps onto an ordinary access trace."""
        return all(op != "evict" for _proc, op, _block in self.path)

    def to_payload(self) -> dict:
        return {
            "property": self.property,
            "message": self.message,
            "path": [list(action) for action in self.path],
            "trace_expressible": self.trace_expressible,
        }


@dataclass(frozen=True, slots=True)
class ComboResult:
    """The verdict for one engine/protocol combo."""

    config: VerifyConfig
    table_digest: str
    num_states: int
    num_transitions: int
    line_states: tuple[str, ...]
    dir_states: tuple[str, ...]
    property_counts: dict[str, int]
    violations: tuple[Violation, ...]
    #: The reachable global-state set itself — for structural theorems
    #: and abstraction cross-checks; not part of the certificate.
    reachable: frozenset = frozenset()

    @property
    def ok(self) -> bool:
        return not any(self.property_counts.values())

    def to_payload(self) -> dict:
        return {
            "engine": self.config.engine,
            "protocol": self.config.protocol,
            "label": self.config.label,
            "inject": self.config.inject,
            "table_digest": self.table_digest,
            "states": self.num_states,
            "transitions": self.num_transitions,
            "line_states": list(self.line_states),
            "dir_states": list(self.dir_states),
            "properties": {
                name: {
                    "verdict": "ok" if count == 0 else "violated",
                    "violations": count,
                }
                for name, count in self.property_counts.items()
            },
            "violations": [v.to_payload() for v in self.violations],
            "ok": self.ok,
        }

    def counterexample(self) -> tuple[FuzzCase, CaseFailure] | None:
        """The first recorded violation as an oracle-replayable case.

        Returns ``None`` when the combo is clean or no recorded path is
        trace-expressible (contains an eviction action, which ordinary
        traces cannot trigger on infinite caches).
        """
        for violation in self.violations:
            if not violation.trace_expressible or not violation.path:
                continue
            case = counterexample_case(self.config, violation)
            failure = CaseFailure(
                stage=violation.property,
                engine=self.config.label,
                detail=violation.message,
            )
            return case, failure
        return None


def counterexample_case(config: VerifyConfig,
                        violation: Violation) -> FuzzCase:
    """Convert a trace-expressible violation path into a fuzz case.

    The case replays the exact action sequence on the concrete machine
    geometry the model abstracts (infinite caches, 16-byte blocks), so
    the differential oracle reproduces the violation for real.
    """
    if not violation.trace_expressible:
        raise VerificationError(
            "counterexample path contains eviction actions and has no "
            "trace form"
        )
    accesses = [
        write(proc, block * BLOCK_SIZE) if op == "write"
        else read(proc, block * BLOCK_SIZE)
        for proc, op, block in violation.path
    ]
    profile = f"verify-{config.engine}-{config.protocol}"
    if config.inject != "none":
        profile += f"-{config.inject}"
    return FuzzCase(
        seed=0,
        profile=profile,
        num_procs=config.num_procs,
        block_size=BLOCK_SIZE,
        cache_size=None,
        associativity=4,
        replacement="lru",
        trace=Trace(accesses, name=profile),
    )


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------

def _expand_states(model, states):
    """Expand each state under every action; order is deterministic.

    Returns one list per state of ``(action, successor, error)`` where
    exactly one of ``successor``/``error`` is set; disabled actions
    (evicting a non-resident block) contribute nothing.
    """
    out = []
    for state in states:
        per_state = []
        for action in model.actions:
            model.install(state)
            try:
                skipped = model.apply(action) is model.SKIP
            except ProtocolError as exc:
                # The machine's own check tripped mid-action; the
                # machine is left partially mutated, but the next
                # install overwrites its complete state.
                per_state.append((action, None, str(exc)))
                continue
            if not skipped:
                per_state.append((action, model.extract(), None))
        out.append(per_state)
    return out


def _expand_chunk(task):
    """Worker body: expand one frontier shard (picklable in and out)."""
    config, states = task
    return _expand_states(build_model(config), states)


def _expand_frontier(model, frontier, jobs):
    """Expand a whole BFS level, sharded across the session pool.

    Shards are contiguous and results merge in shard order, so the
    concatenation equals the serial expansion order for any worker
    count — the determinism the byte-identical-certificate contract
    rests on.
    """
    workers = effective_workers(jobs, len(frontier))
    if workers <= 1:
        return _expand_states(model, frontier)
    size = -(-len(frontier) // workers)
    shards = [
        frontier[i:i + size] for i in range(0, len(frontier), size)
    ]
    results = parallel_map(
        _expand_chunk, [(model.config, shard) for shard in shards],
        jobs=jobs,
    )
    return [per_state for shard in results for per_state in shard]


def _path_to(parents, state):
    """Reconstruct the action path from the initial state via BFS links."""
    path = []
    while True:
        link = parents[state]
        if link is None:
            return tuple(reversed(path))
        state, action = link
        path.append(action)


def check_config(config: VerifyConfig, jobs: int | None = None,
                 max_states: int = MAX_STATES) -> ComboResult:
    """Model-check one combo to closure.  The pytest-facing entry point.

    Args:
        config: the engine/protocol pair and bounds to explore.
        jobs: worker processes per BFS level (``None``: serial or
            ``REPRO_JOBS``; ``0``: all CPUs).  The result is identical
            for any value.
        max_states: safety ceiling on the reachable set.
    """
    model = build_model(config)
    initial = model.initial_state()
    parents = {initial: None}
    property_counts = {name: 0 for name in PROPERTIES}
    recorded: list[Violation] = []
    transitions = 0

    def record(prop: str, message: str, state, action=None) -> None:
        property_counts[prop] += 1
        if len(recorded) < MAX_RECORDED_VIOLATIONS:
            path = _path_to(parents, state)
            if action is not None:
                path += (action,)
            recorded.append(Violation(prop, message, path))

    for prop, message in model.state_violations(initial):
        record(prop, message, initial)
    frontier = [initial]
    while frontier:
        expansions = _expand_frontier(model, frontier, jobs)
        next_frontier = []
        for state, per_state in zip(frontier, expansions):
            for action, successor, error in per_state:
                if error is not None:
                    prop = (
                        "sc-read-latest" if "stale read" in error
                        else "copy-invariants"
                    )
                    record(prop, error, state, action)
                    continue
                transitions += 1
                if successor in parents:
                    continue
                parents[successor] = (state, action)
                if len(parents) > max_states:
                    raise VerificationError(
                        f"{config.label}: reachable set exceeds "
                        f"{max_states} states; the abstraction leaked "
                        f"an unbounded component"
                    )
                for prop, message in model.state_violations(successor):
                    record(prop, message, successor)
                next_frontier.append(successor)
        frontier = next_frontier

    states = parents.keys()
    return ComboResult(
        config=config,
        table_digest=config.table_digest(),
        num_states=len(parents),
        num_transitions=transitions,
        line_states=tuple(sorted(model.line_states_seen(states))),
        dir_states=tuple(sorted(model.dir_states_seen(states))),
        property_counts=property_counts,
        violations=tuple(recorded),
        reachable=frozenset(states),
    )


# ----------------------------------------------------------------------
# Sweeps and certificates
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SweepResult:
    """All combo results for one sweep, plus certificate rendering."""

    num_procs: int
    num_blocks: int
    evictions: bool
    inject: str
    results: tuple[ComboResult, ...]

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def certificate(self) -> dict:
        """The machine-checked certificate as a JSON-serialisable dict.

        Deliberately free of timestamps, timings, host names and job
        counts: two runs of the same sweep on the same checkout render
        byte-identical certificates.
        """
        total_violations = sum(
            count
            for result in self.results
            for count in result.property_counts.values()
        )
        return {
            "schema_version": CERTIFICATE_SCHEMA,
            "kind": CERTIFICATE_KIND,
            "package_version": package_version(),
            "config": {
                "num_procs": self.num_procs,
                "num_blocks": self.num_blocks,
                "evictions": self.evictions,
                "inject": self.inject,
                "block_size": BLOCK_SIZE,
            },
            "combos": [result.to_payload() for result in self.results],
            "totals": {
                "combos": len(self.results),
                "states": sum(r.num_states for r in self.results),
                "transitions": sum(
                    r.num_transitions for r in self.results
                ),
                "violations": total_violations,
            },
            "ok": self.ok,
        }

    def write_reproducers(self, root) -> list:
        """Write one conformance reproducer per violated combo.

        Each violated combo contributes its first trace-expressible
        counterexample as a ``repro.conformance.artifacts`` reproducer
        under ``root``; returns the written paths.
        """
        paths = []
        for result in self.results:
            example = result.counterexample()
            if example is None:
                continue
            case, failure = example
            paths.append(save_reproducer(
                root, case, failure,
                notes=(
                    f"model-checking counterexample for "
                    f"{result.config.label}: shortest path, "
                    f"{len(case.trace)} actions"
                ),
            ))
        return paths


def sweep(
    engine: str = "all",
    protocol: str | None = None,
    num_procs: int = 2,
    num_blocks: int = 1,
    evictions: bool = True,
    inject: str = "none",
    jobs: int | None = None,
    max_states: int = MAX_STATES,
) -> SweepResult:
    """Model-check a family of combos and collect their verdicts.

    The default sweep covers every shipped snooping protocol and
    directory policy; ``engine``/``protocol`` narrow it, ``inject``
    swaps in a deliberately broken variant (self-test).
    """
    combos = verify_combos(
        engine, protocol, num_procs, num_blocks, evictions, inject
    )
    results = tuple(
        check_config(config, jobs=jobs, max_states=max_states)
        for config in combos
    )
    return SweepResult(
        num_procs=num_procs,
        num_blocks=num_blocks,
        evictions=evictions,
        inject=inject,
        results=results,
    )
