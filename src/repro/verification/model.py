"""Finite-state models of both engines for bounded model checking.

:mod:`repro.verification.space` explores a single block with plain
read/write actions and no data-value tracking.  This module generalises
that abstraction into a *model* object the checker in
:mod:`repro.verification.checker` can drive:

* **multi-block configs** — 1-2 blocks, 2-3 processors.  Blocks are
  independent under infinite caches, so the product space factorises;
  exploring it anyway validates exactly that (the checker's structural
  tests assert ``|states(2 blocks)| == |states(1 block)|**2``).
* **eviction actions** — silent clean drop / dirty writeback on the bus,
  replacement notification through :meth:`DirectoryMachine._evict` on
  the directory machine, so finite-cache replacement paths are part of
  the transition relation rather than an untested footnote.
* **freshness abstraction** — the machines' ``check=True`` version
  machinery assigns every write a globally unique integer, which would
  make the state space infinite.  The model projects it to two bits per
  block/line: *written* (``latest > 0``) and *fresh* (``line.version ==
  latest``).  The projection commutes with every machine operation:
  ``_bump_version`` mints a counter larger than anything installed (so
  every other copy becomes stale exactly as the bits predict),
  ``_sync_versions`` makes all copies fresh, ``_fill`` installs the
  latest version, and ``_check_read`` raises precisely when the read
  copy is stale.  That turns the machines' own sequential-consistency
  check into a decidable model property (``sc-read-latest``).

The global state is a tuple with one entry per block; entries are
hashable and comparable for equality but deliberately never sorted
(absent lines are ``None``) — determinism everywhere comes from BFS
discovery order, not from ordering states.

Fault injection from :mod:`repro.conformance.bugs` plugs in here too, so
the checker can prove it *finds* the bugs it exists to find: the two
snooping protocol bugs and the directory invalidation-dropping machine
are model-checkable; the stats-only ``packed-skew`` injection is not and
is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ReproError
from repro.conformance import bugs
from repro.conformance.invariants import (
    directory_copy_violations,
    snooping_copy_violations,
)
from repro.directory.entry import DirState
from repro.directory.policy import AdaptivePolicy
from repro.kernels.tables import dir_table_digest, snoop_table_digest
from repro.protocols import registry as families
from repro.snooping.machine import BusMachine
from repro.snooping.states import SnoopState
from repro.system.machine import CState

#: Coherence granularity used by every model; action addresses are
#: ``block * BLOCK_SIZE``.
BLOCK_SIZE = 16


class VerificationError(ReproError):
    """A model-checking run could not be carried out as requested."""


#: Snooping protocol factories by family name, in certificate order
#: (which is :mod:`repro.protocols.registry` registration order — a new
#: family registered there enters the verify sweep with no edit here).
SNOOP_PROTOCOLS = {
    fam.name: fam.factory for fam in families.bus_families()
}

#: Directory policies by family name, in certificate order.
DIRECTORY_POLICIES: dict[str, AdaptivePolicy] = {
    fam.name: fam.policy for fam in families.directory_families()
}

#: Injections from :mod:`repro.conformance.bugs` the models can check,
#: mapped to the engine they apply to.
MODEL_CHECKABLE_INJECTIONS = {
    "none": ("bus", "directory"),
    "drop-invalidation": ("directory",),
    "snoop-drop-invalidation": ("bus",),
    "snoop-stale-fill": ("bus",),
}

#: The snooping bug classes subclass MesiProtocol, so they are only
#: meaningful swapped in for this registry entry.
_SNOOP_INJECT_BASE = "mesi"


@dataclass(frozen=True, slots=True)
class VerifyConfig:
    """One model-checking problem: an engine/protocol pair plus bounds.

    Frozen, slotted and built from primitives only, so instances pickle
    across the worker pool unchanged.
    """

    engine: str
    protocol: str
    num_procs: int = 2
    num_blocks: int = 1
    evictions: bool = True
    inject: str = "none"

    def __post_init__(self) -> None:
        if self.engine not in ("bus", "directory"):
            raise VerificationError(f"unknown engine {self.engine!r}")
        registry = (
            SNOOP_PROTOCOLS if self.engine == "bus" else DIRECTORY_POLICIES
        )
        if self.protocol not in registry:
            raise VerificationError(
                f"unknown {self.engine} protocol {self.protocol!r}; "
                f"expected one of {sorted(registry)}"
            )
        if not 1 <= self.num_procs <= 8:
            raise VerificationError(
                f"num_procs must be in 1..8: {self.num_procs}"
            )
        if not 1 <= self.num_blocks <= 4:
            raise VerificationError(
                f"num_blocks must be in 1..4: {self.num_blocks}"
            )
        if self.inject not in MODEL_CHECKABLE_INJECTIONS:
            checkable = sorted(MODEL_CHECKABLE_INJECTIONS)
            if self.inject in bugs.INJECTIONS:
                raise VerificationError(
                    f"injection {self.inject!r} is not model-checkable "
                    f"(stats-only); expected one of {checkable}"
                )
            raise VerificationError(
                f"unknown injection {self.inject!r}; "
                f"expected one of {checkable}"
            )
        if self.engine not in MODEL_CHECKABLE_INJECTIONS[self.inject]:
            raise VerificationError(
                f"injection {self.inject!r} does not apply to the "
                f"{self.engine} engine"
            )
        if (
            self.engine == "bus"
            and self.inject != "none"
            and self.protocol != _SNOOP_INJECT_BASE
        ):
            raise VerificationError(
                f"injection {self.inject!r} replaces the MESI protocol; "
                f"run it with protocol={_SNOOP_INJECT_BASE!r}"
            )
        if self.engine == "directory" and self.inject != "none":
            fam = families.family("directory", self.protocol)
            if not fam.injectable:
                raise VerificationError(
                    f"injection {self.inject!r} replaces the stock "
                    f"directory machine; family {self.protocol!r} ships "
                    f"its own machine and is not injectable"
                )

    @property
    def label(self) -> str:
        """Short human-readable combo name, e.g. ``bus/mesi``."""
        suffix = "" if self.inject == "none" else f"+{self.inject}"
        return f"{self.engine}/{self.protocol}{suffix}"

    def table_digest(self) -> str:
        """The kernel transition-table digest of the checked protocol.

        Certificates embed this so a certificate provably describes the
        same tables the replay kernels execute — if a protocol changes,
        both the digest and the certificate change together.  Families
        outside the kernel envelope (no table exists, or the family
        ships its own machine the table would misrepresent) embed the
        registry's behavioral digest instead.
        """
        if self.inject != "none":
            return "injected"
        fam = families.family(self.engine, self.protocol)
        if not fam.kernelable:
            return f"family:{fam.behavior_digest()}"
        if self.engine == "bus":
            return snoop_table_digest(SNOOP_PROTOCOLS[self.protocol]())
        return dir_table_digest(DIRECTORY_POLICIES[self.protocol])


def verify_combos(
    engine: str = "all",
    protocol: str | None = None,
    num_procs: int = 2,
    num_blocks: int = 1,
    evictions: bool = True,
    inject: str = "none",
) -> list[VerifyConfig]:
    """The deterministic sweep order: bus combos, then directory combos.

    With an injection selected, the sweep narrows to the combos the
    injection applies to (the broken variants of the other combos do
    not exist).
    """
    if engine not in ("bus", "directory", "all"):
        raise VerificationError(f"unknown engine {engine!r}")
    combos = []
    for eng, registry in (
        ("bus", SNOOP_PROTOCOLS), ("directory", DIRECTORY_POLICIES),
    ):
        if engine not in (eng, "all"):
            continue
        if inject != "none":
            if eng not in MODEL_CHECKABLE_INJECTIONS.get(inject, ()):
                continue
            if eng == "bus":
                names = [_SNOOP_INJECT_BASE]
            else:
                names = [
                    fam.name for fam in families.directory_families()
                    if fam.injectable
                ]
        else:
            names = list(registry)
        for name in names:
            if protocol is not None and name != protocol:
                continue
            combos.append(VerifyConfig(
                engine=eng, protocol=name, num_procs=num_procs,
                num_blocks=num_blocks, evictions=evictions, inject=inject,
            ))
    if not combos:
        raise VerificationError(
            f"no combos match engine={engine!r} protocol={protocol!r} "
            f"inject={inject!r}"
        )
    return combos


def combo_digests(engine: str = "all",
                  protocol: str | None = None) -> tuple[str, ...]:
    """Per-combo table digests, for result-cache keys."""
    return tuple(
        f"{config.engine}/{config.protocol}/{config.table_digest()}"
        for config in verify_combos(engine, protocol)
    )


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------

def _machine_config(num_procs: int) -> MachineConfig:
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=None, block_size=BLOCK_SIZE),
    )


class _Model:
    """Shared shape of the two engine models.

    One concrete machine instance (``check=True``) is reused for every
    expansion: ``install`` overwrites its complete coherence state, so a
    partially-mutated machine left behind by a raising action is fully
    repaired before the next action runs.
    """

    #: Sentinel returned by :meth:`apply` when an action is disabled in
    #: the given state (evicting a non-resident block): no transition.
    SKIP = object()

    def __init__(self, config: VerifyConfig):
        self.config = config
        self.num_procs = config.num_procs
        self.num_blocks = config.num_blocks
        ops = ("read", "write", "evict") if config.evictions \
            else ("read", "write")
        self.actions: tuple[tuple[int, str, int], ...] = tuple(
            (proc, op, block)
            for proc in range(config.num_procs)
            for block in range(config.num_blocks)
            for op in ops
        )
        self.machine = self._build_machine()

    def _build_machine(self):
        raise NotImplementedError

    # -- state transfer -------------------------------------------------

    def _reset_versions(self, written_blocks) -> None:
        """Normalise the version machinery to the freshness abstraction.

        Written block ``b`` gets the canonical latest version ``b + 1``;
        fresh copies carry it, stale copies carry ``0``.  The counter
        starts past every canonical version so the next ``_bump`` mints
        a version distinct from all installed ones — exactly the
        behaviour of an organically-reached machine state.
        """
        machine = self.machine
        machine._latest.clear()
        machine._version_counter = self.num_blocks
        for block in written_blocks:
            machine._latest[block] = block + 1

    def _clear_caches(self) -> None:
        for cache in self.machine.caches:
            for block in list(cache.resident_blocks()):
                cache.remove(block)

    def initial_state(self):
        """The cold-start global state (no copies, nothing written)."""
        self.install(self._initial())
        return self.extract()

    def _initial(self):
        raise NotImplementedError

    def install(self, state) -> None:
        raise NotImplementedError

    def extract(self, machine=None):
        """Project a machine onto the model's canonical global state.

        Defaults to the model's own machine; passing an organically
        driven machine of the same geometry projects *its* state, which
        is what the abstraction-drift cross-check tests use.
        """
        raise NotImplementedError

    # -- dynamics -------------------------------------------------------

    def apply(self, action):
        """Run one action on the installed state.

        Returns ``None`` on success (successor available via
        :meth:`extract`), :data:`SKIP` when the action is disabled, and
        lets :class:`ProtocolError` propagate for property violations.
        """
        proc, op, block = action
        if op == "evict":
            return self._evict(proc, block)
        self.machine.access(proc, op == "write", block * BLOCK_SIZE)
        return None

    def _evict(self, proc: int, block: int):
        raise NotImplementedError

    # -- properties -----------------------------------------------------

    def state_violations(self, state) -> list[tuple[str, str]]:
        """``(property, message)`` pairs violated by a global state."""
        raise NotImplementedError

    def _writer_violations(self, block, lines, dirty_index,
                           fresh_index) -> list[tuple[str, str]]:
        out = []
        writers = [
            proc for proc, line in enumerate(lines)
            if line is not None and line[dirty_index]
        ]
        if len(writers) > 1:
            out.append((
                "single-writer",
                f"block {block} has {len(writers)} dirty copies "
                f"(procs {writers})",
            ))
        for proc, line in enumerate(lines):
            if line is not None and line[dirty_index] \
                    and not line[fresh_index]:
                out.append((
                    "dirty-implies-fresh",
                    f"block {block} proc {proc} holds a dirty copy of a "
                    f"stale version",
                ))
        return out

    # -- reporting ------------------------------------------------------

    def line_states_seen(self, states) -> set[str]:
        raise NotImplementedError

    def dir_states_seen(self, states) -> set[str]:
        return set()


class SnoopModel(_Model):
    """Bus/snooping machine model.

    Global state: one ``(written, lines, pstate)`` triple per block,
    where ``lines`` holds per processor either ``None`` or
    ``(state_name, dirty, counter, fresh)`` and ``pstate`` is the
    protocol's own per-block record (:meth:`SnoopingProtocol.block_state`
    — ``None`` for the stateless protocols, the write-run mode tuple for
    the hybrid family).  Folding ``pstate`` into the explored state is
    what makes checking history-sensitive protocols sound: two states
    that differ only in protocol-side history are distinct model states.
    """

    def _build_machine(self) -> BusMachine:
        config = self.config
        if config.inject == "none":
            factory = SNOOP_PROTOCOLS[config.protocol]
        elif config.inject == "snoop-drop-invalidation":
            factory = bugs.ForgetsToInvalidate
        else:  # snoop-stale-fill, enforced by VerifyConfig
            factory = bugs.FillsStaleExclusive
        return BusMachine(
            _machine_config(config.num_procs), factory(), check=True
        )

    def _initial(self):
        return tuple(
            (False, (None,) * self.num_procs, None)
            for _ in range(self.num_blocks)
        )

    def install(self, state) -> None:
        machine = self.machine
        self._clear_caches()
        self._reset_versions(
            block for block, (written, _, _) in enumerate(state) if written
        )
        for block, (written, lines, pstate) in enumerate(state):
            latest = machine._latest.get(block, 0)
            for cache, line in zip(machine.caches, lines):
                if line is None:
                    continue
                name, dirty, counter, fresh = line
                cache.insert(block, SnoopState[name], dirty)
                installed = cache.lookup(block)
                installed.counter = counter
                installed.version = latest if fresh else 0
            machine.protocol.set_block_state(block, pstate)

    def extract(self, machine: BusMachine | None = None):
        machine = machine or self.machine
        state = []
        for block in range(self.num_blocks):
            latest = machine._latest.get(block, 0)
            lines = []
            for cache in machine.caches:
                line = cache.lookup(block)
                if line is None:
                    lines.append(None)
                else:
                    lines.append((
                        line.state.name, line.dirty, line.counter,
                        line.version == latest,
                    ))
            state.append((
                latest > 0, tuple(lines),
                machine.protocol.block_state(block),
            ))
        return tuple(state)

    def _evict(self, proc: int, block: int):
        # Bus replacement is silent: drop the line (clean or dirty —
        # memory is implicitly written back) without telling anyone.
        if self.machine.caches[proc].remove(block) is None:
            return self.SKIP
        return None

    def state_violations(self, state) -> list[tuple[str, str]]:
        out = []
        for block, (written, lines, _pstate) in enumerate(state):
            present = [
                (SnoopState[line[0]], line[1])
                for line in lines if line is not None
            ]
            out.extend(
                ("copy-invariants", problem)
                for problem in snooping_copy_violations(present, block)
            )
            out.extend(
                self._writer_violations(block, lines, 1, 3)
            )
            if not written:
                for proc, line in enumerate(lines):
                    if line is not None and not line[3]:
                        out.append((
                            "dirty-implies-fresh",
                            f"block {block} proc {proc} holds a stale "
                            f"copy of a never-written block",
                        ))
        return out

    def line_states_seen(self, states) -> set[str]:
        return {
            line[0]
            for state in states
            for _written, lines, _pstate in state
            for line in lines
            if line is not None
        }


class DirectoryModel(_Model):
    """Directory machine model.

    Global state: one ``(dir_state_name, last_invalidator, streak,
    copyset, written, lines, extra)`` tuple per block, where ``copyset``
    is a sorted node tuple, ``lines`` holds per node either ``None`` or
    ``(state_name, dirty, fresh)``, and ``extra`` is the machine's own
    per-block record (:meth:`DirectoryMachine.block_extra` — ``None``
    for the stock machine, the write-run mode tuple for the hybrid
    family's machine).
    """

    def _build_machine(self):
        config = self.config
        if config.inject == "drop-invalidation":
            machine_cls = bugs.DropsInvalidationsDirectory
        else:
            machine_cls = families.family(
                "directory", config.protocol
            ).machine_class()
        return machine_cls(
            _machine_config(config.num_procs), self.policy, check=True
        )

    @property
    def policy(self) -> AdaptivePolicy:
        return DIRECTORY_POLICIES[self.config.protocol]

    def _initial(self):
        initial_dir = (
            DirState.UNCACHED_MIG if self.policy.initial_migratory
            else DirState.UNCACHED
        )
        return tuple(
            (initial_dir.name, None, 0, (), False,
             (None,) * self.num_procs, None)
            for _ in range(self.num_blocks)
        )

    def install(self, state) -> None:
        machine = self.machine
        # A fresh protocol instance per install: entries carry no state
        # beyond what the global tuple encodes, and the transition
        # counters never leak between explored states.  The machine's
        # own protocol class is preserved (family machines install a
        # subclass whose extra bookkeeping must survive the swap).
        machine.protocol = type(machine.protocol)(self.policy)
        self._clear_caches()
        self._reset_versions(
            block for block, entry in enumerate(state) if entry[4]
        )
        for block, entry in enumerate(state):
            dir_state, last_inv, streak, copyset, _written, lines, extra \
                = entry
            ent = machine.protocol.entry(block)
            ent.state = DirState[dir_state]
            ent.last_invalidator = last_inv
            ent.streak = streak
            ent.copyset = set(copyset)
            latest = machine._latest.get(block, 0)
            for cache, line in zip(machine.caches, lines):
                if line is None:
                    continue
                name, dirty, fresh = line
                cache.insert(block, CState[name], dirty)
                cache.lookup(block).version = latest if fresh else 0
            machine.set_block_extra(block, extra)

    def extract(self, machine=None):
        machine = machine or self.machine
        state = []
        for block in range(self.num_blocks):
            ent = machine.protocol.entry(block)
            latest = machine._latest.get(block, 0)
            lines = []
            for cache in machine.caches:
                line = cache.lookup(block)
                if line is None:
                    lines.append(None)
                else:
                    lines.append((
                        line.state.name, line.dirty,
                        line.version == latest,
                    ))
            state.append((
                ent.state.name, ent.last_invalidator, ent.streak,
                tuple(sorted(ent.copyset)), latest > 0, tuple(lines),
                machine.block_extra(block),
            ))
        return tuple(state)

    def _evict(self, proc: int, block: int):
        line = self.machine.caches[proc].remove(block)
        if line is None:
            return self.SKIP
        self.machine._evict(proc, line)  # noqa: SLF001 - model hook
        return None

    def state_violations(self, state) -> list[tuple[str, str]]:
        out = []
        for block, entry in enumerate(state):
            _dir, _inv, _streak, copyset, _written, lines, _extra = entry
            per_node = {
                node: (line[0], line[1])
                for node, line in enumerate(lines) if line is not None
            }
            out.extend(
                ("copy-invariants", problem)
                for problem in directory_copy_violations(
                    set(copyset), per_node, block
                )
            )
            out.extend(self._writer_violations(block, lines, 1, 2))
        return out

    def line_states_seen(self, states) -> set[str]:
        return {
            line[0]
            for state in states
            for entry in state
            for line in entry[5]
            if line is not None
        }

    def dir_states_seen(self, states) -> set[str]:
        return {entry[0] for state in states for entry in state}


def build_model(config: VerifyConfig) -> _Model:
    """Instantiate the model for a verify config."""
    if config.engine == "bus":
        return SnoopModel(config)
    return DirectoryModel(config)
