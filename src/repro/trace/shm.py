"""Zero-copy publication of packed traces via shared memory.

A ``--jobs N`` sweep replays the *same* handful of traces in every
worker.  Before this module each worker re-loaded (or, cache-off,
re-synthesised) its traces from the ``(app, num_procs, seed, scale)``
key; here the parent publishes each :class:`~repro.trace.packed.
PackedTrace`'s columns into one :class:`multiprocessing.shared_memory.
SharedMemory` segment, and workers attach **zero-copy** — their column
objects are ``memoryview`` casts straight over the shared buffer, so a
trace costs a worker one ``shm_open`` instead of a rebuild, however many
cells it runs.

Segment layout (``n`` = access count)::

    [0,        8n)   procs  as int64    (memoryview cast 'q')
    [8n,      16n)   addrs  as int64    (memoryview cast 'q')
    [16n,     17n)   ops    as int8     (memoryview cast 'b')

Lifecycle: the parent-side :class:`TraceArena` owns every segment it
publishes and guarantees ``close``+``unlink`` — it is a context manager
*and* registers an ``atexit`` hook, so segments disappear even when a
worker crashes mid-sweep or the parent exits on an exception.  Workers
only ever attach (``create=False``) and never unlink; attached segments
are cached per process so repeated cells reuse one mapping.

Publication is best-effort: on platforms where shared memory is
unavailable (or the segment cannot be created), :meth:`TraceArena.
publish` returns ``None`` and the harness falls back to the per-worker
disk-cache path — behaviour, and output bytes, are identical either way.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

from repro.trace.packed import PackedTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.core import Trace


@dataclass(frozen=True, slots=True)
class TraceHandle:
    """A picklable reference to one published trace.

    Attributes:
        segment: shared-memory segment name to attach to.
        length: number of accesses (fixes the column layout).
        name: the trace's display name.
    """

    segment: str
    length: int
    name: str


class SharedPackedTrace(PackedTrace):
    """A :class:`PackedTrace` whose columns view a shared segment.

    Keeps the :class:`SharedMemory` object alive for as long as the
    trace is — the column memoryviews would otherwise dangle.
    """

    __slots__ = ("_shm",)

    def __init__(self, shm, length: int, name: str):
        procs, ops, addrs = _column_views(shm.buf, length)
        super().__init__(procs, ops, addrs, name=name)
        self._shm = shm

    def __del__(self):
        # Release the column views *before* the SharedMemory object is
        # torn down: slot clearing drops ``_shm`` first, and its close()
        # raises BufferError while the buffer is still exported.
        for view in ("procs", "ops", "addrs"):
            try:
                getattr(self, view).release()
            except (AttributeError, BufferError):
                pass


def _column_views(buf, length: int):
    """The three typed column views over one segment buffer."""
    view = memoryview(buf)
    procs = view[0:8 * length].cast("q")
    addrs = view[8 * length:16 * length].cast("q")
    ops = view[16 * length:17 * length].cast("b")
    return procs, ops, addrs


def _segment_size(length: int) -> int:
    # Zero-length segments are rejected by the OS; keep a 1-byte floor.
    return max(1, 17 * length)


class TraceArena:
    """Parent-side owner of published trace segments.

    Guarantees every published segment is closed *and unlinked* exactly
    once, via :meth:`close` — called explicitly, by ``with``-exit, or by
    the ``atexit`` hook :func:`default_arena` registers.  Worker death
    cannot leak a segment: workers never own one.
    """

    def __init__(self):
        self._segments: dict[tuple, tuple] = {}

    def publish(self, key: tuple, packed: PackedTrace) -> TraceHandle | None:
        """Publish one packed trace; returns its handle, or ``None``.

        Idempotent per ``key``: repeated publication of the same trace
        returns the existing handle.  Any OS-level failure (no shared
        memory, exhausted space) is swallowed — callers treat ``None``
        as "workers load their own copies".
        """
        existing = self._segments.get(key)
        if existing is not None:
            return existing[1]
        length = len(packed)
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=_segment_size(length)
            )
            procs, ops, addrs = _column_views(shm.buf, length)
            procs[:] = packed.procs
            ops[:] = packed.ops
            addrs[:] = packed.addrs
        except (OSError, ValueError):
            return None
        handle = TraceHandle(shm.name, length, packed.name)
        self._segments[key] = (shm, handle)
        return handle

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, {}
        for shm, _handle in segments.values():
            try:
                shm.close()
            except (OSError, BufferError):
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass

    def __len__(self) -> int:
        return len(self._segments)

    def __enter__(self) -> "TraceArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_DEFAULT_ARENA: TraceArena | None = None

#: Per-process cache of attached traces, keyed by segment name — one
#: mapping per worker however many cells replay the trace.
_attached: dict[str, "Trace"] = {}


def default_arena() -> TraceArena:
    """The session-scoped arena (created lazily, unlinked at exit)."""
    global _DEFAULT_ARENA
    if _DEFAULT_ARENA is None:
        _DEFAULT_ARENA = TraceArena()
        atexit.register(_DEFAULT_ARENA.close)
    return _DEFAULT_ARENA


def attach(handle: TraceHandle) -> "Trace":
    """Attach to a published trace, zero-copy.

    Returns a :class:`repro.trace.core.Trace` wrapping a
    :class:`SharedPackedTrace` whose columns are memoryviews over the
    segment.  Raises ``OSError``/``ValueError`` when the segment is gone
    or malformed — callers fall back to their own trace source.
    """
    from repro.trace.core import Trace

    cached = _attached.get(handle.segment)
    if cached is not None:
        return cached
    shm = shared_memory.SharedMemory(name=handle.segment, create=False)
    if shm.size < _segment_size(handle.length):
        shm.close()
        raise ValueError(
            f"segment {handle.segment} too small for {handle.length} accesses"
        )
    trace = Trace.from_packed(
        SharedPackedTrace(shm, handle.length, handle.name)
    )
    _attached[handle.segment] = trace
    return trace


def attach_packed(handle: TraceHandle) -> PackedTrace:
    """Attach to a published trace and return the packed form directly.

    The streaming kernel backend (:mod:`repro.kernels.streaming`) slices
    its feed via :meth:`PackedTrace.segments`; on a shared-memory
    attached trace those slices are zero-copy memoryview windows, so a
    worker streams an arena-published trace without ever materialising
    the columns.  Shares :func:`attach`'s per-process cache and error
    contract.
    """
    return attach(handle).pack()


def _reset_for_tests() -> None:
    """Drop the process-level arena and attach caches (tests only)."""
    global _DEFAULT_ARENA
    if _DEFAULT_ARENA is not None:
        _DEFAULT_ARENA.close()
        _DEFAULT_ARENA = None
    _attached.clear()
