"""Synthetic generators for the canonical data-sharing patterns.

Parallel programs exhibit a small number of distinct sharing patterns
(Weber & Gupta; Bennett, Carter & Zwaenepoel); these generators produce
each in isolation so protocols can be studied against pure inputs:

* :func:`migratory` — objects read-then-written by one processor at a
  time, visiting different processors in turn (lock-protected records,
  task queues).  The adaptive protocols halve coherence traffic here.
* :func:`read_shared` — written once, then read by many processors.
  Replicate-on-read-miss is optimal; migrate-on-read-miss ping-pongs.
* :func:`producer_consumer` — one fixed writer, one or more fixed readers
  alternating.
* :func:`false_sharing` — disjoint words in one block written by
  different processors; looks migratory at block granularity even though
  no word is shared (the effect that erodes adaptive savings at large
  block sizes, Table 3).
* :func:`private` — touched by a single processor only.

All generators are deterministic given ``seed``.  Addresses are laid out
from ``base`` with objects padded to ``stride`` bytes so patterns do (or
deliberately do not) share cache blocks.
"""

from __future__ import annotations

import random

from repro.common.types import WORD_SIZE, Access, read, write
from repro.trace.core import Trace


def _visit_order(
    rng: random.Random, num_procs: int, visits: int, start: int | None = None
) -> list[int]:
    """A sequence of ``visits`` processor ids with no immediate repeats."""
    order: list[int] = []
    current = start if start is not None else rng.randrange(num_procs)
    for _ in range(visits):
        order.append(current)
        if num_procs > 1:
            nxt = rng.randrange(num_procs - 1)
            if nxt >= current:
                nxt += 1
            current = nxt
    return order


def migratory(
    num_procs: int = 16,
    num_objects: int = 8,
    words_per_object: int = 4,
    visits: int = 32,
    reads_per_visit: int = 2,
    writes_per_visit: int = 2,
    base: int = 0,
    stride: int | None = None,
    seed: int = 0,
) -> Trace:
    """Objects that migrate between processors, read then written each visit."""
    rng = random.Random(seed)
    stride = stride or max(words_per_object * WORD_SIZE, 64)
    trace = Trace(name="migratory")
    schedules = [
        _visit_order(rng, num_procs, visits) for _ in range(num_objects)
    ]
    for turn in range(visits):
        for obj in range(num_objects):
            proc = schedules[obj][turn]
            addr0 = base + obj * stride
            for r in range(reads_per_visit):
                trace.append(read(proc, addr0 + (r % words_per_object) * WORD_SIZE))
            for w in range(writes_per_visit):
                trace.append(write(proc, addr0 + (w % words_per_object) * WORD_SIZE))
    return trace


def read_shared(
    num_procs: int = 16,
    num_objects: int = 8,
    words_per_object: int = 4,
    rounds: int = 32,
    reads_per_round: int = 2,
    base: int = 0,
    stride: int | None = None,
    seed: int = 0,
    writer: int = 0,
) -> Trace:
    """Objects initialised by one writer then read repeatedly by everyone."""
    rng = random.Random(seed)
    stride = stride or max(words_per_object * WORD_SIZE, 64)
    trace = Trace(name="read_shared")
    for obj in range(num_objects):
        addr0 = base + obj * stride
        for w in range(words_per_object):
            trace.append(write(writer, addr0 + w * WORD_SIZE))
    for _ in range(rounds):
        for proc in range(num_procs):
            for obj in range(num_objects):
                addr0 = base + obj * stride
                for r in range(reads_per_round):
                    word = rng.randrange(words_per_object)
                    trace.append(read(proc, addr0 + word * WORD_SIZE))
    return trace


def producer_consumer(
    num_procs: int = 16,
    num_objects: int = 4,
    words_per_object: int = 4,
    rounds: int = 32,
    consumers: int = 1,
    base: int = 0,
    stride: int | None = None,
    seed: int = 0,
) -> Trace:
    """A fixed producer writes; fixed consumers read, each round."""
    rng = random.Random(seed)
    stride = stride or max(words_per_object * WORD_SIZE, 64)
    trace = Trace(name="producer_consumer")
    for obj in range(num_objects):
        producer = obj % num_procs
        group = [p for p in range(num_procs) if p != producer]
        rng.shuffle(group)
        readers = group[: max(1, min(consumers, len(group)))]
        addr0 = base + obj * stride
        for _ in range(rounds):
            for w in range(words_per_object):
                trace.append(write(producer, addr0 + w * WORD_SIZE))
            for consumer in readers:
                for w in range(words_per_object):
                    trace.append(read(consumer, addr0 + w * WORD_SIZE))
    return trace


def false_sharing(
    num_procs: int = 16,
    num_blocks: int = 4,
    block_size: int = 64,
    rounds: int = 32,
    writers_per_block: int | None = None,
    base: int = 0,
    seed: int = 0,
) -> Trace:
    """Distinct words of one block read/written by different processors."""
    rng = random.Random(seed)
    trace = Trace(name="false_sharing")
    words_per_block = block_size // WORD_SIZE
    writers_per_block = writers_per_block or min(num_procs, words_per_block)
    for _ in range(rounds):
        for blk in range(num_blocks):
            addr0 = base + blk * block_size
            writers = rng.sample(range(num_procs), writers_per_block)
            for slot, proc in enumerate(writers):
                addr = addr0 + (slot % words_per_block) * WORD_SIZE
                trace.append(read(proc, addr))
                trace.append(write(proc, addr))
    return trace


def private(
    num_procs: int = 16,
    words_per_proc: int = 64,
    accesses_per_proc: int = 256,
    write_fraction: float = 0.3,
    base: int = 0,
    seed: int = 0,
) -> Trace:
    """Per-processor data never shared (placed in disjoint regions)."""
    rng = random.Random(seed)
    trace = Trace(name="private")
    region = words_per_proc * WORD_SIZE
    for proc in range(num_procs):
        addr0 = base + proc * max(region, 4096)
        for _ in range(accesses_per_proc):
            addr = addr0 + rng.randrange(words_per_proc) * WORD_SIZE
            if rng.random() < write_fraction:
                trace.append(write(proc, addr))
            else:
                trace.append(read(proc, addr))
    return trace


def interleave(traces: list[Trace], chunk: int = 8, seed: int = 0, name: str = "mixed") -> Trace:
    """Merge traces by round-robin chunks, preserving per-trace order.

    Per-processor program order within each component trace is preserved,
    which is the property the coherence simulators rely on.
    """
    rng = random.Random(seed)
    iters = [iter(t) for t in traces]
    live = list(range(len(iters)))
    out = Trace(name=name)
    while live:
        idx = rng.choice(live)
        taken = 0
        for acc in iters[idx]:
            out.append(acc)
            taken += 1
            if taken >= chunk:
                break
        if taken < chunk:
            live.remove(idx)
    return out
