"""Trace containers and text-format I/O.

A trace is an ordered sequence of :class:`repro.common.types.Access`
records for *ordinary shared data* — following the paper, synchronization
variables, private data and instructions are excluded by the producers.

A :class:`Trace` keeps the accesses in one (or both) of two forms: the
boxed ``Access`` list, and the packed columnar form of
:class:`repro.trace.packed.PackedTrace`.  Conversions happen lazily and
are cached — a trace loaded from the binary disk cache never materialises
``Access`` objects unless some consumer actually iterates them, and a
trace built access-by-access packs itself only when a machine replays it.
Mutation (``append``/``extend``) invalidates the packed form.

The text format is one record per line: ``<proc> <R|W> <hex addr>``, with
``#``-prefixed comment lines; it round-trips exactly.  Paths ending in
``.gz`` are transparently gzip-compressed (multi-million-access traces
compress roughly 10x).  For the fast binary format see
:meth:`repro.trace.packed.PackedTrace.save`.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.errors import TraceError
from repro.common.types import Access, Op
from repro.trace.packed import PackedTrace


class Trace:
    """An in-memory access trace with simple summary helpers."""

    __slots__ = ("name", "_accesses", "_packed", "__weakref__")

    def __init__(self, accesses: Iterable[Access] = (), name: str = "trace"):
        self.name = name
        self._accesses: list[Access] | None = list(accesses)
        self._packed: PackedTrace | None = None

    @classmethod
    def from_packed(cls, packed: PackedTrace, name: str | None = None) -> "Trace":
        """Wrap a packed trace without materialising ``Access`` objects."""
        trace = cls.__new__(cls)
        trace.name = name or packed.name
        trace._accesses = None
        trace._packed = packed
        return trace

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------

    def _materialize(self) -> list[Access]:
        """The boxed ``Access`` list, building it from columns if needed."""
        accesses = self._accesses
        if accesses is None:
            accesses = self._packed.to_accesses()
            self._accesses = accesses
        return accesses

    def pack(self) -> PackedTrace:
        """The packed columnar form (built once, cached).

        The result shares the trace's identity: replaying it on a machine
        is bit-identical to replaying the trace itself, only faster.
        """
        packed = self._packed
        if packed is None:
            packed = PackedTrace.from_accesses(self._accesses, name=self.name)
            self._packed = packed
        return packed

    def iter_packed(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(proc, is_write, addr)`` int triples (hot-loop form)."""
        return self.pack().iter_packed()

    def append(self, access: Access) -> None:
        """Add one access to the end of the trace."""
        self._materialize().append(access)
        self._packed = None

    def extend(self, accesses: Iterable[Access]) -> None:
        """Add many accesses to the end of the trace."""
        self._materialize().extend(accesses)
        self._packed = None

    def __iter__(self) -> Iterator[Access]:
        return iter(self._materialize())

    def __len__(self) -> int:
        if self._accesses is not None:
            return self._accesses.__len__()
        return self._packed.__len__()

    def __getitem__(self, index):
        return self._materialize()[index]

    @property
    def num_procs(self) -> int:
        """One more than the largest processor id appearing in the trace."""
        if self._accesses is None:
            return self._packed.num_procs
        return max((a.proc for a in self._accesses), default=-1) + 1

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes."""
        if not len(self):
            return 0.0
        if self._accesses is None:
            writes = sum(self._packed.ops)
        else:
            writes = sum(1 for a in self._accesses if a.op is Op.WRITE)
        return writes / len(self)

    def footprint_bytes(self, granularity: int = 4) -> int:
        """Bytes touched, rounded to ``granularity``-byte units."""
        if self._accesses is None:
            units = {a // granularity for a in self._packed.addrs}
        else:
            units = {a.addr // granularity for a in self._accesses}
        return len(units) * granularity

    def blocks(self, block_size: int) -> set[int]:
        """The set of block numbers the trace touches."""
        if self._accesses is None:
            return {a // block_size for a in self._packed.addrs}
        return {a.addr // block_size for a in self._accesses}

    # ------------------------------------------------------------------
    # Text format
    # ------------------------------------------------------------------

    @staticmethod
    def _open(path: str | Path, mode: str):
        if str(path).endswith(".gz"):
            return gzip.open(path, mode + "t", encoding="ascii")
        return open(path, mode, encoding="ascii")

    def save(self, path: str | Path) -> None:
        """Write the trace in the one-record-per-line text format.

        Paths ending in ``.gz`` are gzip-compressed.
        """
        with self._open(path, "w") as fh:
            fh.write(f"# trace {self.name}: {len(self)} accesses\n")
            for proc, is_write, addr in self.iter_packed():
                fh.write(f"{proc} {'W' if is_write else 'R'} {addr:x}\n")

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a trace written by :meth:`save` (plain or ``.gz``)."""
        accesses = []
        with cls._open(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise TraceError(f"{path}:{lineno}: malformed record {line!r}")
                try:
                    proc = int(parts[0])
                    op = Op(parts[1])
                    addr = int(parts[2], 16)
                except ValueError as exc:
                    raise TraceError(f"{path}:{lineno}: {exc}") from exc
                accesses.append(Access(proc, op, addr))
        return cls(accesses, name=name or Path(path).stem)
