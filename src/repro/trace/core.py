"""Trace containers and text-format I/O.

A trace is an ordered sequence of :class:`repro.common.types.Access`
records for *ordinary shared data* — following the paper, synchronization
variables, private data and instructions are excluded by the producers.

The text format is one record per line: ``<proc> <R|W> <hex addr>``, with
``#``-prefixed comment lines; it round-trips exactly.  Paths ending in
``.gz`` are transparently gzip-compressed (multi-million-access traces
compress roughly 10x).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.errors import TraceError
from repro.common.types import Access, Op


class Trace:
    """An in-memory access trace with simple summary helpers."""

    def __init__(self, accesses: Iterable[Access] = (), name: str = "trace"):
        self.name = name
        self._accesses: list[Access] = list(accesses)

    def append(self, access: Access) -> None:
        """Add one access to the end of the trace."""
        self._accesses.append(access)

    def extend(self, accesses: Iterable[Access]) -> None:
        """Add many accesses to the end of the trace."""
        self._accesses.extend(accesses)

    def __iter__(self) -> Iterator[Access]:
        return iter(self._accesses)

    def __len__(self) -> int:
        return self._accesses.__len__()

    def __getitem__(self, index):
        return self._accesses[index]

    @property
    def num_procs(self) -> int:
        """One more than the largest processor id appearing in the trace."""
        return max((a.proc for a in self._accesses), default=-1) + 1

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes."""
        if not self._accesses:
            return 0.0
        writes = sum(1 for a in self._accesses if a.op is Op.WRITE)
        return writes / len(self._accesses)

    def footprint_bytes(self, granularity: int = 4) -> int:
        """Bytes touched, rounded to ``granularity``-byte units."""
        units = {a.addr // granularity for a in self._accesses}
        return len(units) * granularity

    def blocks(self, block_size: int) -> set[int]:
        """The set of block numbers the trace touches."""
        return {a.addr // block_size for a in self._accesses}

    # ------------------------------------------------------------------
    # Text format
    # ------------------------------------------------------------------

    @staticmethod
    def _open(path: str | Path, mode: str):
        if str(path).endswith(".gz"):
            return gzip.open(path, mode + "t", encoding="ascii")
        return open(path, mode, encoding="ascii")

    def save(self, path: str | Path) -> None:
        """Write the trace in the one-record-per-line text format.

        Paths ending in ``.gz`` are gzip-compressed.
        """
        with self._open(path, "w") as fh:
            fh.write(f"# trace {self.name}: {len(self)} accesses\n")
            for acc in self._accesses:
                fh.write(f"{acc.proc} {acc.op.value} {acc.addr:x}\n")

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "Trace":
        """Read a trace written by :meth:`save` (plain or ``.gz``)."""
        accesses = []
        with cls._open(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise TraceError(f"{path}:{lineno}: malformed record {line!r}")
                try:
                    proc = int(parts[0])
                    op = Op(parts[1])
                    addr = int(parts[2], 16)
                except ValueError as exc:
                    raise TraceError(f"{path}:{lineno}: {exc}") from exc
                accesses.append(Access(proc, op, addr))
        return cls(accesses, name=name or Path(path).stem)
