"""Packed columnar trace representation.

:class:`PackedTrace` stores an access trace as three parallel ``array``
columns — processor ids (``'q'``), a write flag (``'b'``), and byte
addresses (``'q'``) — instead of a list of boxed
:class:`repro.common.types.Access` objects.  The machines' replay loops
consume the columns directly via :meth:`iter_packed`, which eliminates
per-access dataclass attribute loads and ``Op`` enum comparisons from the
hot path; a multi-million-access replay runs several times faster.

The representation also derives and memoises the per-``block_shift``
block-number column the machines actually index caches with
(:meth:`blocks_column`), so a sweep that replays the same trace under many
policies at one block size shifts each address exactly once.

A compact binary file format (:meth:`save` / :meth:`load`) backs the
on-disk trace cache (:mod:`repro.trace.diskcache`); it round-trips
exactly and loads an order of magnitude faster than the text format.
"""

from __future__ import annotations

import hashlib
import json
from array import array
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.common.errors import TraceError
from repro.common.types import Access, Op

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.core import Trace

#: Magic prefix identifying the binary packed-trace format (version 1).
MAGIC = b"RPRO-PTRACE-1\n"


class PackedTrace:
    """An access trace as three parallel columns.

    Attributes:
        name: trace label (same role as :attr:`Trace.name`).
        procs: ``array('q')`` of issuing processor ids.
        ops: ``array('b')`` of write flags (1 = write, 0 = read).
        addrs: ``array('q')`` of byte addresses.
    """

    __slots__ = ("name", "procs", "ops", "addrs", "_blocks_shift",
                 "_blocks", "_seqs_shift", "_seqs", "_wide_shift",
                 "_wide_seqs", "_streams_key", "_streams", "_num_procs",
                 "_digest")

    def __init__(
        self,
        procs: array,
        ops: array,
        addrs: array,
        name: str = "trace",
    ):
        if not (len(procs) == len(ops) == len(addrs)):
            raise TraceError("packed trace columns must have equal length")
        self.name = name
        self.procs = procs
        self.ops = ops
        self.addrs = addrs
        # One-entry memo for the derived block column (see blocks_column).
        self._blocks_shift: int | None = None
        self._blocks: array | None = None
        # One-entry memo for the per-block symbol split (block_sequences).
        self._seqs_shift: int | None = None
        self._seqs: dict[int, bytes] | None = None
        # One-entry memo for the wide (uint16 symbol) split.
        self._wide_shift: int | None = None
        self._wide_seqs: dict[int, bytes] | None = None
        # One-entry memo for the conflict-set streams (set_streams).
        self._streams_key: tuple[int, int, int] | None = None
        self._streams: dict[int, tuple[tuple[int, ...], array]] | None = None
        self._num_procs: int | None = None
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_accesses(
        cls, accesses: Iterable[Access], name: str = "trace"
    ) -> "PackedTrace":
        """Pack an iterable of :class:`Access` records into columns."""
        procs = array("q")
        ops = array("b")
        addrs = array("q")
        write = Op.WRITE
        for acc in accesses:
            procs.append(acc.proc)
            ops.append(1 if acc.op is write else 0)
            addrs.append(acc.addr)
        return cls(procs, ops, addrs, name=name)

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------

    def pack(self) -> "PackedTrace":
        """Return self (so machines accept ``Trace`` and ``PackedTrace``
        interchangeably)."""
        return self

    def iter_packed(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(proc, is_write, addr)`` int triples — the hot-loop
        form consumed by the machines' replay loops."""
        return zip(self.procs, self.ops, self.addrs)

    def blocks_column(self, block_shift: int) -> array:
        """The per-access block-number column for one block size.

        Memoised for the most recent ``block_shift`` — protocol sweeps
        replay one trace many times at a fixed block size, so the shift
        work is paid once per (trace, block size) rather than per replay.
        """
        if self._blocks_shift != block_shift:
            self._blocks = array("q", (a >> block_shift for a in self.addrs))
            self._blocks_shift = block_shift
        return self._blocks

    def block_sequences(self, block_shift: int) -> dict[int, bytes]:
        """Per-block ``proc * 2 + is_write`` symbol strings, in first-touch
        block order.

        This is the table-driven kernels' input form
        (:mod:`repro.kernels`): with no evictions, blocks evolve
        independently, so each block's accesses replay as one walk over
        a per-block byte string.  Requires every processor id to fit the
        symbol byte (``proc < 128``); memoised for the most recent
        ``block_shift`` like :meth:`blocks_column`.
        """
        if self._seqs_shift != block_shift:
            seqs: dict[int, list[int]] = {}
            get = seqs.get
            for proc, is_write, block in zip(
                self.procs, self.ops, self.blocks_column(block_shift)
            ):
                syms = get(block)
                if syms is None:
                    syms = seqs[block] = []
                syms.append(proc * 2 + is_write)
            self._seqs = {block: bytes(syms) for block, syms in seqs.items()}
            self._seqs_shift = block_shift
        return self._seqs

    def block_sequences_wide(self, block_shift: int) -> dict[int, bytes]:
        """Like :meth:`block_sequences`, but with 16-bit symbols.

        Each per-block value is the little-endian ``uint16`` encoding of
        the ``proc * 2 + is_write`` symbol run, so traces with up to 1024
        processors split the same way (walkers view the bytes through
        ``memoryview(seq).cast('H')``).  Keys and values stay hashable
        ``bytes`` so walk-result caches can use them directly.  Memoised
        for the most recent ``block_shift``.
        """
        if self._wide_shift != block_shift:
            seqs: dict[int, array] = {}
            get = seqs.get
            for proc, is_write, block in zip(
                self.procs, self.ops, self.blocks_column(block_shift)
            ):
                syms = get(block)
                if syms is None:
                    syms = seqs[block] = array("H")
                syms.append(proc * 2 + is_write)
            self._wide_seqs = {
                block: syms.tobytes() for block, syms in seqs.items()
            }
            self._wide_shift = block_shift
        return self._wide_seqs

    def set_streams(
        self, block_shift: int, num_sets: int, ways: int
    ) -> dict[int, tuple[tuple[int, ...], array]]:
        """Interleaved access streams for the cache sets that can evict.

        Groups accesses by cache set (``block % num_sets``).  A set whose
        distinct-block count is at most ``ways`` can never evict — every
        processor's per-set occupancy is bounded by the set's distinct
        blocks — so those blocks stay on the independent per-block walk.
        For each remaining *conflict* set the result maps ``set_index ->
        (blocks, stream)`` where ``blocks`` is the set's block numbers in
        first-touch order and ``stream`` is an ``array('q')`` of
        ``(dense_block_id << 32) | (proc * 2 + is_write)`` entries
        preserving the set's program order (``dense_block_id`` indexes
        ``blocks``).  Eviction-aware kernel walks consume these streams
        directly; memoised for the most recent geometry triple.
        """
        key = (block_shift, num_sets, ways)
        if self._streams_key != key:
            dense_ids: dict[int, dict[int, int]] = {}
            streams: dict[int, array] = {}
            for proc, is_write, block in zip(
                self.procs, self.ops, self.blocks_column(block_shift)
            ):
                set_idx = block % num_sets
                ids = dense_ids.get(set_idx)
                if ids is None:
                    ids = dense_ids[set_idx] = {}
                    streams[set_idx] = array("q")
                dense = ids.get(block)
                if dense is None:
                    dense = ids[block] = len(ids)
                streams[set_idx].append((dense << 32) | (proc * 2 + is_write))
            self._streams = {
                set_idx: (tuple(ids), streams[set_idx])
                for set_idx, ids in dense_ids.items()
                if len(ids) > ways
            }
            self._streams_key = key
        return self._streams

    def segments(self, chunk: int) -> Iterator["PackedTrace"]:
        """Yield the trace as column-sliced chunks of ``chunk`` accesses.

        Each segment is an independent :class:`PackedTrace` over slices of
        the parent columns (``array`` slices copy; shared-memory
        memoryview columns slice zero-copy).  The streaming kernel
        backend (:mod:`repro.kernels.streaming`) feeds these one at a
        time so resident memory stays O(chunk) for traces that never fit
        in RAM.
        """
        if chunk <= 0:
            raise TraceError("segment size must be positive")
        total = len(self)
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            yield PackedTrace(
                self.procs[start:stop],
                self.ops[start:stop],
                self.addrs[start:stop],
                name=f"{self.name}[{start}:{stop}]",
            )

    def __len__(self) -> int:
        return len(self.procs)

    def __iter__(self) -> Iterator[Access]:
        """Iterate boxed :class:`Access` records (slow path; prefer
        :meth:`iter_packed` in performance-sensitive code)."""
        read, write = Op.READ, Op.WRITE
        for proc, is_write, addr in zip(self.procs, self.ops, self.addrs):
            yield Access(proc, write if is_write else read, addr)

    @property
    def num_procs(self) -> int:
        """One more than the largest processor id appearing in the trace."""
        if self._num_procs is None:
            self._num_procs = max(self.procs, default=-1) + 1
        return self._num_procs

    def digest(self) -> str:
        """Content digest of the trace bytes (hex, cached).

        Covers the raw column buffers and the trace length — not the
        name, which plays no role in replay results.  The result cache
        (:mod:`repro.experiments.resultcache`) uses this as the trace
        component of its keys.
        """
        if self._digest is None:
            h = hashlib.sha256()
            h.update(b"RPRO-PTRACE-DIGEST-1|")
            h.update(len(self).to_bytes(8, "little"))
            for column in (self.procs, self.ops, self.addrs):
                # Columns are array('q'/'b') or shared-memory memoryview
                # casts; both expose the buffer protocol directly.
                h.update(column)
            self._digest = h.hexdigest()
        return self._digest

    def to_accesses(self) -> list[Access]:
        """Materialise the boxed :class:`Access` list."""
        return list(self)

    def to_trace(self) -> "Trace":
        """Wrap in a :class:`repro.trace.core.Trace` (no copy; the trace
        materialises Access objects lazily)."""
        from repro.trace.core import Trace

        return Trace.from_packed(self)

    # ------------------------------------------------------------------
    # Binary format
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the columns in the binary packed format.

        The file holds a magic line, a JSON header (name, length, and the
        machine byte order), then the three raw column buffers.  Files are
        written in native byte order; :meth:`load` rejects files written
        on a machine with the opposite endianness.
        """
        import sys

        header = {
            "name": self.name,
            "length": len(self),
            "byteorder": sys.byteorder,
        }
        payload = json.dumps(header).encode("ascii") + b"\n"
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(payload)
            # ``tobytes`` (rather than ``array.tofile``) also accepts the
            # memoryview columns of shared-memory attached traces.
            fh.write(self.procs.tobytes())
            fh.write(self.ops.tobytes())
            fh.write(self.addrs.tobytes())

    @classmethod
    def load(cls, path: str | Path, name: str | None = None) -> "PackedTrace":
        """Read a trace written by :meth:`save`."""
        import sys

        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise TraceError(f"{path}: not a packed trace file")
            try:
                header = json.loads(fh.readline().decode("ascii"))
                length = int(header["length"])
            except (ValueError, KeyError) as exc:
                raise TraceError(f"{path}: malformed header: {exc}") from exc
            if header.get("byteorder", sys.byteorder) != sys.byteorder:
                raise TraceError(
                    f"{path}: written on a {header['byteorder']}-endian "
                    f"machine; this machine is {sys.byteorder}-endian"
                )
            procs = array("q")
            ops = array("b")
            addrs = array("q")
            try:
                procs.fromfile(fh, length)
                ops.fromfile(fh, length)
                addrs.fromfile(fh, length)
            except EOFError as exc:
                raise TraceError(f"{path}: truncated packed trace") from exc
        return cls(procs, ops, addrs, name=name or str(header.get("name", Path(path).stem)))
