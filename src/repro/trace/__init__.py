"""Traces of shared-data references and synthetic pattern generators."""

from repro.trace import synth
from repro.trace.core import Trace

__all__ = ["Trace", "synth"]
