"""Traces of shared-data references and synthetic pattern generators."""

from repro.trace import diskcache, synth
from repro.trace.core import Trace
from repro.trace.packed import PackedTrace

__all__ = ["PackedTrace", "Trace", "diskcache", "synth"]
