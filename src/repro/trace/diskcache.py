"""Content-keyed on-disk cache for workload traces.

Regenerating an application trace through the workload execution engine
costs orders of magnitude more than replaying it, and both the parallel
experiment harness (:mod:`repro.parallel`) and repeated
``repro-experiments`` invocations rebuild identical traces: every trace
is a pure function of ``(app, num_procs, seed, scale)``.  This module
caches the packed binary form of each trace on disk under a key derived
from those build parameters, so worker processes and later CLI runs load
the columns straight from disk instead of re-running the engine.

Layout and knobs:

* Cache directory: ``$REPRO_TRACE_CACHE`` if set, else
  ``$XDG_CACHE_HOME/repro/traces``, else ``~/.cache/repro/traces``.
* ``REPRO_TRACE_CACHE=off`` (or ``0``) disables the cache entirely.
* Files are named ``<app>-<sha256-prefix>.ptrace`` where the hash covers
  the build parameters plus :data:`CACHE_VERSION`; bump the version
  whenever the workload generators change behaviour to invalidate every
  stale entry at once.

Writes go through a temporary file and an atomic rename, so concurrent
worker processes racing to populate the same key are safe — the losers
simply overwrite the winner's byte-identical file.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.trace.packed import PackedTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.core import Trace

#: Bump when workload generators change so cached traces are regenerated.
CACHE_VERSION = 1

_DISABLE_VALUES = {"off", "0", "no", "false", "disable", "disabled"}


def cache_dir() -> Path | None:
    """The active cache directory, or None when the cache is disabled."""
    configured = os.environ.get("REPRO_TRACE_CACHE")
    if configured is not None:
        if configured.strip().lower() in _DISABLE_VALUES:
            return None
        return Path(configured)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "traces"


def trace_key(app: str, num_procs: int, seed: int, scale: float) -> str:
    """The content key for one trace build specification."""
    spec = f"v{CACHE_VERSION}|{app}|{num_procs}|{seed}|{scale!r}"
    return hashlib.sha256(spec.encode("ascii")).hexdigest()[:20]


def cache_path(app: str, num_procs: int, seed: int, scale: float) -> Path | None:
    """The on-disk path for one trace, or None when the cache is off."""
    directory = cache_dir()
    if directory is None:
        return None
    return directory / f"{app}-{trace_key(app, num_procs, seed, scale)}.ptrace"


def store(path: Path, packed: PackedTrace) -> None:
    """Atomically write ``packed`` to ``path`` (best effort)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    os.close(fd)
    try:
        packed.save(tmp_name)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


def load_or_build(
    app: str,
    num_procs: int,
    seed: int,
    scale: float,
    builder: Callable[..., "Trace"],
) -> "Trace":
    """Load one application trace from disk, building (and caching) on miss.

    ``builder`` is called as ``builder(app, num_procs=..., seed=...,
    scale=...)`` only when the cache is disabled or has no entry; its
    result is stored packed for the next caller.
    """
    path = cache_path(app, num_procs, seed, scale)
    if path is not None and path.exists():
        try:
            return PackedTrace.load(path).to_trace()
        except Exception:
            # A truncated or stale file: fall through and rebuild it.
            pass
    trace = builder(app, num_procs=num_procs, seed=seed, scale=scale)
    if path is not None:
        store(path, trace.pack())
    return trace


def clear() -> int:
    """Delete every cached trace file; returns the number removed."""
    directory = cache_dir()
    if directory is None or not directory.exists():
        return 0
    removed = 0
    for entry in directory.glob("*.ptrace"):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    return removed
