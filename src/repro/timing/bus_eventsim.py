"""Event-driven timing for the bus machine: one shared, serializing bus.

On a bus-based multiprocessor every coherence transaction arbitrates for
the single shared bus, so the protocol's transaction count translates
directly into *bus utilization* — and, as utilization climbs, queueing
delay.  This simulator replays a trace through a
:class:`~repro.snooping.machine.BusMachine` with processors blocking on
their own transactions and a global bus that serves one transaction at a
time.

It makes two literature observations measurable:

* Section 4.3's premise that "the cost of executing a coherency protocol
  will be proportional to the number of bus operations" — utilization
  tracks the transaction counts of the cost models;
* Thakkar's observation (quoted in Section 5) that *read cycles dominate
  bus traffic* on the Sequent under the always-migrate policy — the
  per-kind busy-cycle breakdown shows read misses' share directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.common.types import Access, Op
from repro.snooping.machine import BusMachine


@dataclass(frozen=True, slots=True)
class BusTimingParams:
    """Latency parameters for the shared-bus model (cycles)."""

    hit_cycles: int = 1
    bus_cycles: int = 24  # arbitration + address + data phases
    compute_cycles_per_ref: int = 60


@dataclass(slots=True)
class BusTimingResult:
    """Outcome of one contended bus run."""

    per_proc_cycles: list[int]
    total_references: int = 0
    bus_busy_cycles: int = 0
    queue_wait_cycles: int = 0
    transactions: int = 0
    busy_by_kind: dict = field(default_factory=dict)

    @property
    def execution_time(self) -> int:
        return max(self.per_proc_cycles, default=0)

    @property
    def utilization(self) -> float:
        """Fraction of the run the bus was busy."""
        if self.execution_time == 0:
            return 0.0
        return self.bus_busy_cycles / self.execution_time

    def kind_share(self, kind: str) -> float:
        """Share of bus busy cycles consumed by one transaction kind."""
        if self.bus_busy_cycles == 0:
            return 0.0
        return self.busy_by_kind.get(kind, 0) / self.bus_busy_cycles


class BusEventSimulator:
    """Contended replay of a trace through a snooping bus machine."""

    def __init__(
        self, machine: BusMachine, params: BusTimingParams | None = None
    ):
        self.machine = machine
        self.params = params or BusTimingParams()

    def run(self, trace: Sequence[Access]) -> BusTimingResult:
        """Simulate the trace (per-processor order preserved)."""
        import heapq

        machine = self.machine
        params = self.params
        num_procs = machine.config.num_procs
        streams: list[list[Access]] = [[] for _ in range(num_procs)]
        for acc in trace:
            streams[acc.proc].append(acc)
        cursors = [0] * num_procs
        cycles = [0] * num_procs
        result = BusTimingResult(per_proc_cycles=cycles)
        bus_free_at = 0
        ready = [(0, proc) for proc in range(num_procs) if streams[proc]]
        heapq.heapify(ready)
        stats = machine.bus_stats

        while ready:
            now, proc = heapq.heappop(ready)
            acc = streams[proc][cursors[proc]]
            cursors[proc] += 1
            before_total = stats.total
            before_by_kind = dict(stats.by_kind)
            machine.access(proc, acc.op is Op.WRITE, acc.addr)
            new_transactions = stats.total - before_total
            if new_transactions:
                start = max(now, bus_free_at)
                busy = params.bus_cycles * new_transactions
                bus_free_at = start + busy
                result.queue_wait_cycles += start - now
                result.bus_busy_cycles += busy
                result.transactions += new_transactions
                for kind, count in stats.by_kind.items():
                    delta = count - before_by_kind.get(kind, 0)
                    if delta:
                        result.busy_by_kind[kind] = (
                            result.busy_by_kind.get(kind, 0)
                            + delta * params.bus_cycles
                        )
                latency = bus_free_at - now
            else:
                latency = params.hit_cycles
            finish = now + latency + params.compute_cycles_per_ref
            cycles[proc] = finish
            result.total_references += 1
            if cursors[proc] < len(streams[proc]):
                heapq.heappush(ready, (finish, proc))
        return result
