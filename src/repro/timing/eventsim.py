"""Event-driven timing simulation with controller contention.

The closed-form model of :mod:`repro.timing.sim` charges fixed latencies
and cannot express *contention*.  Section 4.2 makes two contention
claims this simulator reproduces:

* "there was almost negligible added latency observed due to contention
  for either the interconnection network or for the local bus";
* "surprisingly, eliminating the extra invalidation operations decreases
  the average latency of primary cache read misses by 20 %.  It
  accomplishes this by nearly eliminating contention at the secondary
  cache" — fewer protocol messages mean less queueing at the
  controllers, which speeds up *other* misses.

Model: each processor replays its trace slice in order with one
outstanding reference (DASH-style blocking loads).  A miss sends a
request over the network (fixed per-message latency) to the block's
home, whose **memory controller serves one message at a time** with a
fixed occupancy per message; the entire transaction's messages are
serviced there, then the reply travels back.  Queueing delay emerges
when several processors' transactions collide at one home node.

Coherence-state changes are delegated to the atomic
:class:`~repro.system.machine.DirectoryMachine`, executed in simulated-
time order — a valid interleaving of the per-processor streams — so the
event simulator inherits the protocol correctness of the verified
machine and only adds timing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.types import Access, Op
from repro.system.machine import DirectoryMachine


@dataclass(frozen=True, slots=True)
class EventTimingParams:
    """Latency parameters for the contention model (cycles)."""

    hit_cycles: int = 1
    network_cycles: int = 30  # each direction of a transaction
    occupancy_cycles: int = 18  # controller service time per message
    compute_cycles_per_ref: int = 60


@dataclass(slots=True)
class EventTimingResult:
    """Outcome of one contended run."""

    per_proc_cycles: list[int]
    total_references: int = 0
    miss_count: int = 0
    read_miss_count: int = 0
    read_miss_cycles: int = 0
    queue_wait_cycles: int = 0
    service_cycles: int = 0

    @property
    def execution_time(self) -> int:
        """Parallel-section execution time (slowest processor)."""
        return max(self.per_proc_cycles, default=0)

    @property
    def mean_read_miss_latency(self) -> float:
        if self.read_miss_count == 0:
            return 0.0
        return self.read_miss_cycles / self.read_miss_count

    @property
    def mean_queue_wait(self) -> float:
        """Average cycles a transaction waited for a busy controller."""
        if self.miss_count == 0:
            return 0.0
        return self.queue_wait_cycles / self.miss_count

    @property
    def contention_share(self) -> float:
        """Fraction of miss service time that was queueing delay."""
        busy = self.queue_wait_cycles + self.service_cycles
        return self.queue_wait_cycles / busy if busy else 0.0


class EventDrivenSimulator:
    """Contended replay of a trace through a directory machine."""

    def __init__(
        self,
        machine: DirectoryMachine,
        params: EventTimingParams | None = None,
    ):
        self.machine = machine
        self.params = params or EventTimingParams()

    def run(self, trace: Sequence[Access]) -> EventTimingResult:
        """Simulate the trace; per-processor order is preserved."""
        machine = self.machine
        params = self.params
        num_procs = machine.config.num_procs
        streams: list[list[Access]] = [[] for _ in range(num_procs)]
        for acc in trace:
            streams[acc.proc].append(acc)
        cursors = [0] * num_procs
        cycles = [0] * num_procs
        result = EventTimingResult(per_proc_cycles=cycles)
        controller_busy = [0] * num_procs
        # (ready_time, proc) heap: when each processor may issue next.
        ready = [(0, proc) for proc in range(num_procs) if streams[proc]]
        heapq.heapify(ready)
        stats = machine.stats
        cache_stats = machine.cache_stats

        while ready:
            now, proc = heapq.heappop(ready)
            acc = streams[proc][cursors[proc]]
            cursors[proc] += 1
            before_msgs = stats.short + stats.data
            before_misses = cache_stats.misses
            before_upgrades = cache_stats.upgrades
            machine.access(proc, acc.op is Op.WRITE, acc.addr)
            msg_count = stats.short + stats.data - before_msgs
            missed = cache_stats.misses != before_misses
            upgraded = cache_stats.upgrades != before_upgrades
            if missed or upgraded:
                home = machine.placement.home(
                    acc.addr // machine.config.page_size, proc
                )
                arrive = now + params.network_cycles
                start = max(arrive, controller_busy[home])
                service = params.occupancy_cycles * max(1, msg_count)
                controller_busy[home] = start + service
                complete = start + service + params.network_cycles
                latency = complete - now
                result.miss_count += 1
                result.queue_wait_cycles += start - arrive
                result.service_cycles += service
                if missed and acc.op is Op.READ:
                    result.read_miss_count += 1
                    result.read_miss_cycles += latency
            else:
                latency = params.hit_cycles
            finish = now + latency + params.compute_cycles_per_ref
            cycles[proc] = finish
            result.total_references += 1
            if cursors[proc] < len(streams[proc]):
                heapq.heappush(ready, (finish, proc))
        return result
