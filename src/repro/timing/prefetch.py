"""Software-controlled prefetching study (related work, Section 5).

Mowry & Gupta inserted non-binding prefetch and prefetch-exclusive
requests by hand into MP3D, LU and Pthor; the paper reports that their
simulations "show the same reduction in time spent waiting for
invalidations as the adaptive protocols and they also show a substantial
reduction in time spent waiting for read misses".

We model an oracle prefetcher: a fraction ``coverage`` of misses have
been prefetched far enough ahead that the processor only pays a small
issue cost instead of the full memory latency; the coherence *messages*
still happen (prefetching tolerates latency, it does not remove
traffic).  Combining prefetch-exclusive with the read-exclusive hints of
:mod:`repro.analysis.oracle` removes the invalidation waits as well,
reproducing the comparison the paper draws.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.common.types import Access, Op
from repro.system.machine import DirectoryMachine
from repro.timing.sim import TimingParams, TimingResult


class PrefetchingTimingSimulator:
    """Timing replay where covered misses cost only the issue overhead.

    Args:
        machine: the directory machine to drive.
        params: latency parameters.
        coverage: fraction of misses whose latency the prefetcher hides
            (1.0 = the hand-tuned perfect case).
        issue_cycles: cost of executing the prefetch instruction itself.
        seed: determinism seed for sub-1.0 coverage sampling.
    """

    def __init__(
        self,
        machine: DirectoryMachine,
        params: TimingParams | None = None,
        coverage: float = 1.0,
        issue_cycles: int = 2,
        seed: int = 0,
    ):
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        self.machine = machine
        self.params = params or TimingParams()
        self.coverage = coverage
        self.issue_cycles = issue_cycles
        self._rng = random.Random(seed)

    def run(
        self,
        trace: Iterable[Access],
        exclusive_hints: Sequence[bool] | None = None,
    ) -> TimingResult:
        """Time the trace; optionally with read-exclusive hints."""
        machine = self.machine
        params = self.params
        stats = machine.stats
        cache_stats = machine.cache_stats
        cycles = [0] * machine.config.num_procs
        result = TimingResult(per_proc_cycles=cycles, total_references=0)
        for i, acc in enumerate(trace):
            hint = bool(exclusive_hints[i]) if exclusive_hints else False
            before_msgs = stats.short + stats.data
            before_misses = cache_stats.misses
            before_upgrades = cache_stats.upgrades
            machine.access(acc.proc, acc.op is Op.WRITE, acc.addr,
                           exclusive_hint=hint)
            msg_delta = stats.short + stats.data - before_msgs
            missed = cache_stats.misses != before_misses
            upgraded = cache_stats.upgrades != before_upgrades
            if missed or upgraded:
                covered = (
                    self.coverage >= 1.0
                    or self._rng.random() < self.coverage
                )
                if covered:
                    latency = params.hit_cycles + self.issue_cycles
                else:
                    latency = (
                        params.memory_cycles
                        + params.message_cycles * msg_delta
                    )
                result.miss_cycles += latency
                if missed and acc.op is Op.READ:
                    result.read_miss_count += 1
                    result.read_miss_cycles += latency
            else:
                latency = params.hit_cycles
            cycles[acc.proc] += latency + params.compute_cycles_per_ref
            result.total_references += 1
        return result
