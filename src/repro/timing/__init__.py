"""Execution-time modelling for the Section 4.2 experiments."""

from repro.timing.bus_eventsim import (
    BusEventSimulator,
    BusTimingParams,
    BusTimingResult,
)
from repro.timing.eventsim import (
    EventDrivenSimulator,
    EventTimingParams,
    EventTimingResult,
)
from repro.timing.prefetch import PrefetchingTimingSimulator
from repro.timing.sim import (
    TimingParams,
    TimingResult,
    TimingSimulator,
    percent_time_reduction,
)

__all__ = [
    "BusEventSimulator",
    "BusTimingParams",
    "BusTimingResult",
    "EventDrivenSimulator",
    "EventTimingParams",
    "EventTimingResult",
    "PrefetchingTimingSimulator",
    "TimingParams",
    "TimingResult",
    "TimingSimulator",
    "percent_time_reduction",
]
