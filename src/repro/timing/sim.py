"""Execution-time model for Section 4.2 (the dixie/DASH role).

The paper's execution-driven simulations measure how much of the message
reduction turns into parallel-section execution-time reduction.  We model
a CC-NUMA node loosely following DASH latencies: a cache hit costs one
cycle, a miss costs a memory access plus a per-message network charge for
every inter-node message the operation generates (requests, forwards,
invalidations and their acknowledgements are all on or near the critical
path of the blocking processor).  Each reference also carries a fixed
compute allowance representing the private/instruction work between
shared references.

Parallel-section execution time is the largest per-processor cycle count;
the interesting output is the *relative* time between protocols, which is
what the paper reports (19.3 % / 10.4 % / 3.5 % reductions for Cholesky,
MP3D, Water under the basic protocol).

The paper also observes a 20 % drop in primary-cache read-miss latency
caused by reduced secondary-cache contention; our model is contention-free
(the paper itself notes contention added "almost negligible" latency), so
that second-order effect is out of scope and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.types import Access, Op
from repro.system.machine import DirectoryMachine


@dataclass(frozen=True, slots=True)
class TimingParams:
    """Latency parameters in processor cycles (DASH-flavoured ratios).

    Attributes:
        hit_cycles: a cache hit (or silent write).
        memory_cycles: base latency of any miss or upgrade (directory +
            memory access at some node).
        message_cycles: added latency per inter-node message the operation
            generates.
        compute_cycles_per_ref: private work charged per shared reference.
    """

    hit_cycles: int = 1
    memory_cycles: int = 30
    message_cycles: int = 45
    compute_cycles_per_ref: int = 60


@dataclass(slots=True)
class TimingResult:
    """Outcome of one timed run."""

    per_proc_cycles: list[int]
    total_references: int
    miss_cycles: int = 0
    read_miss_count: int = 0
    read_miss_cycles: int = 0

    @property
    def execution_time(self) -> int:
        """Parallel-section execution time (slowest processor)."""
        return max(self.per_proc_cycles, default=0)

    @property
    def mean_read_miss_latency(self) -> float:
        """Average cycles per read miss (0.0 when none occurred)."""
        if self.read_miss_count == 0:
            return 0.0
        return self.read_miss_cycles / self.read_miss_count


class TimingSimulator:
    """Replays a trace through a machine, accumulating per-node cycles."""

    def __init__(self, machine: DirectoryMachine, params: TimingParams | None = None):
        self.machine = machine
        self.params = params or TimingParams()

    def run(self, trace: Iterable[Access]) -> TimingResult:
        """Time every access in ``trace``."""
        machine = self.machine
        params = self.params
        stats = machine.stats
        cache_stats = machine.cache_stats
        cycles = [0] * machine.config.num_procs
        result = TimingResult(per_proc_cycles=cycles, total_references=0)
        for acc in trace:
            before_msgs = stats.short + stats.data
            before_misses = cache_stats.misses
            before_upgrades = cache_stats.upgrades
            machine.access(acc.proc, acc.op is Op.WRITE, acc.addr)
            msg_delta = stats.short + stats.data - before_msgs
            missed = cache_stats.misses != before_misses
            upgraded = cache_stats.upgrades != before_upgrades
            if missed or upgraded:
                latency = params.memory_cycles + params.message_cycles * msg_delta
                result.miss_cycles += latency
                if missed and acc.op is Op.READ:
                    result.read_miss_count += 1
                    result.read_miss_cycles += latency
            else:
                latency = params.hit_cycles
            cycles[acc.proc] += latency + params.compute_cycles_per_ref
            result.total_references += 1
        return result


def percent_time_reduction(base: TimingResult, other: TimingResult) -> float:
    """Execution-time reduction of ``other`` relative to ``base`` (%)."""
    if base.execution_time == 0:
        return 0.0
    return 100.0 * (base.execution_time - other.execution_time) / base.execution_time
