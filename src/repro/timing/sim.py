"""Execution-time model for Section 4.2 (the dixie/DASH role).

The paper's execution-driven simulations measure how much of the message
reduction turns into parallel-section execution-time reduction.  We model
a CC-NUMA node loosely following DASH latencies: a cache hit costs one
cycle, a miss costs a memory access plus a per-message network charge for
every inter-node message the operation generates (requests, forwards,
invalidations and their acknowledgements are all on or near the critical
path of the blocking processor).  Each reference also carries a fixed
compute allowance representing the private/instruction work between
shared references.

Parallel-section execution time is the largest per-processor cycle count;
the interesting output is the *relative* time between protocols, which is
what the paper reports (19.3 % / 10.4 % / 3.5 % reductions for Cholesky,
MP3D, Water under the basic protocol).

The paper also observes a 20 % drop in primary-cache read-miss latency
caused by reduced secondary-cache contention; our model is contention-free
(the paper itself notes contention added "almost negligible" latency), so
that second-order effect is out of scope and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.types import Access, Op
from repro.system.machine import DirectoryMachine


@dataclass(frozen=True, slots=True)
class TimingParams:
    """Latency parameters in processor cycles (DASH-flavoured ratios).

    Attributes:
        hit_cycles: a cache hit (or silent write).
        memory_cycles: base latency of any miss or upgrade (directory +
            memory access at some node).
        message_cycles: added latency per inter-node message the operation
            generates.
        compute_cycles_per_ref: private work charged per shared reference.
    """

    hit_cycles: int = 1
    memory_cycles: int = 30
    message_cycles: int = 45
    compute_cycles_per_ref: int = 60


@dataclass(slots=True)
class TimingProfile:
    """The params-independent skeleton of one timed replay.

    The machine replay — the expensive part of :meth:`TimingSimulator.
    run` — does not depend on :class:`TimingParams` at all: latencies
    are a pure function of each access's ``(missed-or-upgraded, message
    count)`` outcome.  A profile records exactly those outcomes, so one
    replay prices under *any* parameter set (the topology sweep costs
    the same replay once per topology; the replay result cache shares
    profiles across experiments).

    Attributes:
        num_procs: processor count of the profiled machine.
        total_references: accesses replayed.
        refs_per_proc: references issued per processor.
        hits_per_proc: accesses that neither missed nor upgraded.
        miss_msgs_per_proc: per processor, ``{message count: events}``
            over the accesses that missed or upgraded.
        read_miss_msgs: ``{message count: events}`` over read misses.
    """

    num_procs: int
    total_references: int
    refs_per_proc: list
    hits_per_proc: list
    miss_msgs_per_proc: list
    read_miss_msgs: dict


def cost(profile: TimingProfile, params: TimingParams | None = None) -> "TimingResult":
    """Price a profile under one parameter set.

    Pure integer arithmetic over the profile's event counts; for any
    ``params``, ``cost(sim.profile(trace), params)`` equals what
    ``TimingSimulator(machine, params).run(trace)`` would have returned,
    field for field.
    """
    params = params or TimingParams()
    cycles = []
    miss_cycles = 0
    for proc in range(profile.num_procs):
        total = profile.hits_per_proc[proc] * params.hit_cycles
        for msg_count, events in profile.miss_msgs_per_proc[proc].items():
            latency = params.memory_cycles + params.message_cycles * msg_count
            total += latency * events
            miss_cycles += latency * events
        total += profile.refs_per_proc[proc] * params.compute_cycles_per_ref
        cycles.append(total)
    read_miss_cycles = sum(
        (params.memory_cycles + params.message_cycles * msg_count) * events
        for msg_count, events in profile.read_miss_msgs.items()
    )
    return TimingResult(
        per_proc_cycles=cycles,
        total_references=profile.total_references,
        miss_cycles=miss_cycles,
        read_miss_count=sum(profile.read_miss_msgs.values()),
        read_miss_cycles=read_miss_cycles,
    )


@dataclass(slots=True)
class TimingResult:
    """Outcome of one timed run."""

    per_proc_cycles: list[int]
    total_references: int
    miss_cycles: int = 0
    read_miss_count: int = 0
    read_miss_cycles: int = 0

    @property
    def execution_time(self) -> int:
        """Parallel-section execution time (slowest processor)."""
        return max(self.per_proc_cycles, default=0)

    @property
    def mean_read_miss_latency(self) -> float:
        """Average cycles per read miss (0.0 when none occurred)."""
        if self.read_miss_count == 0:
            return 0.0
        return self.read_miss_cycles / self.read_miss_count


class TimingSimulator:
    """Replays a trace through a machine, accumulating per-node cycles."""

    def __init__(self, machine: DirectoryMachine, params: TimingParams | None = None):
        self.machine = machine
        self.params = params or TimingParams()

    def run(self, trace: Iterable[Access]) -> TimingResult:
        """Time every access in ``trace``."""
        return cost(self.profile(trace), self.params)

    def profile(self, trace: Iterable[Access]) -> TimingProfile:
        """Replay the trace once, recording the priceable outcomes.

        The returned profile is independent of this simulator's
        ``params``; hand it to :func:`cost` with any parameter set.
        """
        machine = self.machine
        stats = machine.stats
        cache_stats = machine.cache_stats
        num_procs = machine.config.num_procs
        refs = [0] * num_procs
        hits = [0] * num_procs
        miss_msgs: list = [{} for _ in range(num_procs)]
        read_miss_msgs: dict = {}
        total = 0
        packer = getattr(trace, "iter_packed", None)
        if packer is not None:  # columnar traces skip Access boxing
            iterator = packer()
        else:
            iterator = (
                (acc.proc, acc.op is Op.WRITE, acc.addr) for acc in trace
            )
        for proc, is_write, addr in iterator:
            before_msgs = stats.short + stats.data
            before_misses = cache_stats.misses
            before_upgrades = cache_stats.upgrades
            machine.access(proc, bool(is_write), addr)
            missed = cache_stats.misses != before_misses
            if missed or cache_stats.upgrades != before_upgrades:
                msg_delta = stats.short + stats.data - before_msgs
                hist = miss_msgs[proc]
                hist[msg_delta] = hist.get(msg_delta, 0) + 1
                if missed and not is_write:
                    read_miss_msgs[msg_delta] = (
                        read_miss_msgs.get(msg_delta, 0) + 1
                    )
            else:
                hits[proc] += 1
            refs[proc] += 1
            total += 1
        return TimingProfile(
            num_procs=num_procs,
            total_references=total,
            refs_per_proc=refs,
            hits_per_proc=hits,
            miss_msgs_per_proc=miss_msgs,
            read_miss_msgs=read_miss_msgs,
        )


def percent_time_reduction(base: TimingResult, other: TimingResult) -> float:
    """Execution-time reduction of ``other`` relative to ``base`` (%)."""
    if base.execution_time == 0:
        return 0.0
    return 100.0 * (base.execution_time - other.execution_time) / base.execution_time
