"""The differential cross-engine oracle.

One fuzz case is replayed through every engine the repository ships and
each replay is audited four ways:

1. **Invariant-clean state at every step.**  The generic (unpacked)
   replay runs with the built-in checker enabled, which asserts the
   structural invariants of :mod:`repro.conformance.invariants` and the
   read-latest-write version property after every protocol-visible
   operation.
2. **Bit-identical packed replay.**  A second, checker-free machine
   replays the same trace through the packed-trace fast path
   (:meth:`PackedTrace.blocks_column` et al.), with the table-driven
   kernels pinned off so the *legacy* packed loop is what is measured;
   every statistic the machine produces — message/bus counters
   including the per-cause breakdowns, cache event counters,
   invalidation-size histograms — must be *exactly* equal to the
   generic replay's.  This is the contract PR 1 introduced and every
   future fast-path change must keep.
3. **Bit-identical kernel replay.**  A third machine replays with the
   table-driven kernels of :mod:`repro.kernels` eligible (they engage
   or fall back on their own gating rules); its statistics *and* its
   final microarchitectural state — every cache line's state, dirty
   bit and competitive counter, every directory entry's classification,
   copy set, invalidator and evidence streak, the transition counters —
   must be exactly equal to the packed replay's.  This stage also
   covers the update-family snooping protocols, which the invariant/SC
   stages exclude.
4. **Sequential-consistency reference model.**  An independent flat
   memory model tracks, per block, the globally latest write version;
   after the replay the machine's observed version history must agree
   with it, and every engine must agree with every other (the final
   write to each block is visible identically everywhere).

The first discrepancy is reported as a :class:`CaseFailure` naming the
stage, the engine, and the detail; ``None`` means the case is clean.
Engine factories are parameters so the fault-injection variants of
:mod:`repro.conformance.bugs` can be swapped in — that is how the
pipeline proves the oracle actually fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.errors import ReproError
from repro.common.types import Op
from repro.conformance.fuzzer import FuzzCase
from repro.directory.policy import AdaptivePolicy
from repro.kernels import registry
from repro.protocols import registry as families
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import SnoopingProtocol
from repro.system.machine import DirectoryMachine
from repro.telemetry.runtime import span

#: Directory policies replayed by default: every family in
#: :mod:`repro.protocols.registry` that runs on the stock machine
#: (registering a new policy-only family adds it here automatically).
DEFAULT_POLICIES: tuple[AdaptivePolicy, ...] = tuple(
    fam.policy for fam in families.directory_families()
    if fam.machine is None
)

#: Directory families that ship their own machine realization.  They
#: replay through all four stages against *their* machine whenever the
#: stock machine is in play (fault injection swaps the stock machine
#: for a broken subclass, which would silently displace these).
FAMILY_DIRECTORY_MACHINES = tuple(
    fam for fam in families.directory_families() if fam.machine is not None
)

#: Snooping protocol factories replayed by default — the families whose
#: verification config asks for the full four-stage audit.
DEFAULT_SNOOP_FACTORIES: tuple[Callable[[], SnoopingProtocol], ...] = tuple(
    fam.factory for fam in families.bus_families() if fam.oracle == "full"
)

#: Snooping protocol factories audited by the kernel-diff stage only.
#: The pure-update family is excluded from the invariant/SC stages
#: (remote copies stay current, so the read-latest-write property is
#: trivially a different contract), but legacy-vs-kernel equality still
#: applies.
KERNEL_ONLY_SNOOP_FACTORIES: tuple[Callable[[], SnoopingProtocol], ...] = \
    tuple(
        fam.factory for fam in families.bus_families()
        if fam.oracle == "kernel-only"
    )


@dataclass(frozen=True)
class CaseFailure:
    """One conformance discrepancy.

    Attributes:
        stage: which audit failed — ``"invariants"``, ``"packed-diff"``,
            ``"kernel-diff"`` or ``"sc-reference"``.
        engine: the engine label, e.g. ``"directory[basic]"``.
        detail: human-readable description of the discrepancy.
    """

    stage: str
    engine: str
    detail: str

    def __str__(self) -> str:
        return f"{self.stage} {self.engine}: {self.detail}"


class SCReference:
    """Flat sequentially-consistent memory: one global write order.

    Mirrors what real memory would contain if every access completed
    atomically in trace order — the ground truth the machines' version
    checkers are compared against.
    """

    __slots__ = ("latest", "writes", "_block_shift")

    def __init__(self, block_shift: int):
        self._block_shift = block_shift
        #: block -> version id of the globally latest write.
        self.latest: dict[int, int] = {}
        #: total writes observed (version ids are 1..writes).
        self.writes = 0

    def access(self, proc: int, is_write: bool, addr: int) -> None:
        if is_write:
            self.writes += 1
            self.latest[addr >> self._block_shift] = self.writes


def _replay_reference(case: FuzzCase) -> SCReference:
    ref = SCReference(case.block_size.bit_length() - 1)
    for acc in case.trace:
        ref.access(acc.proc, acc.op is Op.WRITE, acc.addr)
    return ref


def _diff_fields(
    pairs: Sequence[tuple[str, object, object]],
    labels: tuple[str, str] = ("generic", "packed"),
) -> str | None:
    """Describe the first few mismatching (name, left, right) triples."""
    left, right = labels
    diffs = [
        f"{name}: {left}={a!r} {right}={b!r}"
        for name, a, b in pairs
        if a != b
    ]
    if not diffs:
        return None
    return "; ".join(diffs[:4])


def _cache_stats_fields(stats) -> list[tuple[str, object]]:
    return [
        ("read_hits", stats.read_hits),
        ("read_misses", stats.read_misses),
        ("write_hits", stats.write_hits),
        ("write_misses", stats.write_misses),
        ("upgrades", stats.upgrades),
        ("evictions_clean", stats.evictions_clean),
        ("evictions_dirty", stats.evictions_dirty),
    ]


def _final_lines(machine) -> list[tuple]:
    """Every resident cache line as (proc, block, state, dirty, counter).

    Line versions are deliberately excluded: they belong to the checker,
    which only runs on the generic replay.
    """
    out = []
    for proc, cache in enumerate(machine.caches):
        for block in sorted(cache.resident_blocks()):
            line = cache.lookup(block)
            out.append((proc, block, line.state, line.dirty, line.counter))
    return out


def _directory_entries(machine) -> dict[int, tuple]:
    """Every directory entry's observable fields, keyed by block."""
    return {
        block: (ent.state, tuple(sorted(ent.copyset)),
                ent.last_invalidator, ent.streak)
        for block, ent in machine.protocol.entries.items()
    }


def _directory_pairs(a, b) -> list[tuple[str, object, object]]:
    """Statistic comparison triples for two directory machines."""
    return [
        ("short", a.stats.short, b.stats.short),
        ("data", a.stats.data, b.stats.data),
        ("by_cause_short", a.stats.by_cause_short, b.stats.by_cause_short),
        ("by_cause_data", a.stats.by_cause_data, b.stats.by_cause_data),
        ("invalidation_sizes", a.invalidation_sizes, b.invalidation_sizes),
    ] + [
        (name, left, right)
        for (name, left), (_, right) in zip(
            _cache_stats_fields(a.cache_stats),
            _cache_stats_fields(b.cache_stats),
        )
    ]


def _snooping_pairs(a, b) -> list[tuple[str, object, object]]:
    """Statistic comparison triples for two bus machines."""
    return [
        ("read_miss", a.bus_stats.read_miss, b.bus_stats.read_miss),
        ("write_miss", a.bus_stats.write_miss, b.bus_stats.write_miss),
        ("invalidation", a.bus_stats.invalidation, b.bus_stats.invalidation),
        ("writeback", a.bus_stats.writeback, b.bus_stats.writeback),
        ("update", a.bus_stats.update, b.bus_stats.update),
        ("by_kind", a.bus_stats.by_kind, b.bus_stats.by_kind),
    ] + [
        (name, left, right)
        for (name, left), (_, right) in zip(
            _cache_stats_fields(a.cache_stats),
            _cache_stats_fields(b.cache_stats),
        )
    ]


def _version_mismatch(label: str, ref: SCReference, machine) -> str | None:
    if machine._version_counter != ref.writes:  # noqa: SLF001 - oracle peer
        return (
            f"{label} recorded {machine._version_counter} writes, "  # noqa: SLF001
            f"reference saw {ref.writes}"
        )
    if machine._latest != ref.latest:  # noqa: SLF001 - oracle peer
        stale = {
            block: (machine._latest.get(block), version)  # noqa: SLF001
            for block, version in ref.latest.items()
            if machine._latest.get(block) != version  # noqa: SLF001
        }
        return f"{label} final write versions diverge from reference: {stale}"
    return None


# ----------------------------------------------------------------------
# Per-engine differential replays
# ----------------------------------------------------------------------

def _run_directory(
    case: FuzzCase,
    policy: AdaptivePolicy,
    machine_factory: Callable[..., DirectoryMachine],
    ref: SCReference,
) -> CaseFailure | None:
    label = f"directory[{policy.name}]"
    config = case.machine_config()
    checked = machine_factory(config, policy, check=True)
    try:
        with span("conformance.replay", engine=label, stage="checked"):
            checked.run(case.trace)
    except ReproError as exc:
        return CaseFailure("invariants", label, str(exc))
    mismatch = _version_mismatch(label, ref, checked)
    if mismatch is not None:
        return CaseFailure("sc-reference", label, mismatch)
    packed = machine_factory(config, policy, check=False)
    with registry.disabled():
        # Pin the legacy packed loop so this stage keeps auditing it
        # even on geometries where the kernel would engage.
        with span("conformance.replay", engine=label, stage="packed"):
            packed.run(case.trace)
    diff = _diff_fields(_directory_pairs(checked, packed))
    if diff is not None:
        return CaseFailure("packed-diff", label, diff)
    kernel = machine_factory(config, policy, check=False)
    with span("conformance.replay", engine=label, stage="kernel"):
        kernel.run(case.trace)
    diff = _diff_fields(
        _directory_pairs(packed, kernel)
        + [
            ("transitions", packed.protocol.transitions,
             kernel.protocol.transitions),
            ("entries", _directory_entries(packed),
             _directory_entries(kernel)),
            ("lines", _final_lines(packed), _final_lines(kernel)),
        ],
        labels=("packed", "kernel"),
    )
    if diff is not None:
        return CaseFailure("kernel-diff", f"directory-kernel[{policy.name}]",
                           diff)
    return None


def _run_snooping(
    case: FuzzCase,
    protocol_factory: Callable[[], SnoopingProtocol],
    machine_factory: Callable[..., BusMachine],
    ref: SCReference,
) -> CaseFailure | None:
    protocol = protocol_factory()
    label = f"bus[{protocol.name}]"
    config = case.machine_config()
    checked = machine_factory(config, protocol, check=True)
    try:
        with span("conformance.replay", engine=label, stage="checked"):
            checked.run(case.trace)
    except ReproError as exc:
        return CaseFailure("invariants", label, str(exc))
    mismatch = _version_mismatch(label, ref, checked)
    if mismatch is not None:
        return CaseFailure("sc-reference", label, mismatch)
    packed = machine_factory(config, protocol_factory(), check=False)
    with registry.disabled():
        # Pin the legacy packed loop so this stage keeps auditing it
        # even on geometries where the kernel would engage.
        with span("conformance.replay", engine=label, stage="packed"):
            packed.run(case.trace)
    diff = _diff_fields(_snooping_pairs(checked, packed))
    if diff is not None:
        return CaseFailure("packed-diff", label, diff)
    return _snooping_kernel_diff(case, protocol_factory, machine_factory,
                                 packed)


def _snooping_kernel_diff(
    case: FuzzCase,
    protocol_factory: Callable[[], SnoopingProtocol],
    machine_factory: Callable[..., BusMachine],
    baseline: BusMachine | None = None,
) -> CaseFailure | None:
    """Kernel-eligible replay vs the legacy engine, state and all.

    When ``baseline`` is None (the kernel-only protocols), the legacy
    reference replay is produced here under :func:`registry.disabled`.
    """
    protocol = protocol_factory()
    label = f"bus-kernel[{protocol.name}]"
    config = case.machine_config()
    if baseline is None:
        baseline = machine_factory(config, protocol_factory(), check=False)
        with registry.disabled():
            with span("conformance.replay", engine=label, stage="legacy"):
                baseline.run(case.trace)
    kernel = machine_factory(config, protocol, check=False)
    with span("conformance.replay", engine=label, stage="kernel"):
        kernel.run(case.trace)
    diff = _diff_fields(
        _snooping_pairs(baseline, kernel)
        + [("lines", _final_lines(baseline), _final_lines(kernel))],
        labels=("packed", "kernel"),
    )
    if diff is not None:
        return CaseFailure("kernel-diff", label, diff)
    return None


def run_case(
    case: FuzzCase,
    policies: Sequence[AdaptivePolicy] = DEFAULT_POLICIES,
    snoop_factories: Sequence[Callable[[], SnoopingProtocol]] =
        DEFAULT_SNOOP_FACTORIES,
    directory_machine: Callable[..., DirectoryMachine] = DirectoryMachine,
    bus_machine: Callable[..., BusMachine] = BusMachine,
    family_machines: Sequence = FAMILY_DIRECTORY_MACHINES,
) -> CaseFailure | None:
    """Replay one fuzz case through every engine; None when clean.

    Args:
        case: the fuzzed (trace, geometry) pair.
        policies: directory policies to replay.
        snoop_factories: zero-argument snooping-protocol constructors.
        directory_machine: the directory-machine class — swap in a
            :mod:`repro.conformance.bugs` variant for fault injection.
        bus_machine: the bus-machine class, likewise swappable.
        family_machines: protocol families with their own directory
            machine, audited only while the stock machine is in play
            (an injected machine replaces the stock realization, not
            the families').

    Returns:
        The first :class:`CaseFailure` discovered, or None.
    """
    ref = _replay_reference(case)
    for policy in policies:
        failure = _run_directory(case, policy, directory_machine, ref)
        if failure is not None:
            return failure
    if directory_machine is DirectoryMachine:
        for fam in family_machines:
            failure = _run_directory(
                case, fam.policy, fam.machine_class(), ref
            )
            if failure is not None:
                return failure
    for factory in snoop_factories:
        failure = _run_snooping(case, factory, bus_machine, ref)
        if failure is not None:
            return failure
    for factory in KERNEL_ONLY_SNOOP_FACTORIES:
        failure = _snooping_kernel_diff(case, factory, bus_machine)
        if failure is not None:
            return failure
    return None
