"""Fault injection: deliberately broken protocol variants.

A checker that never fires is worthless evidence, so the conformance
pipeline ships the classic coherence bugs as first-class engine
variants: forgotten invalidations, stale fills, fast-path statistics
drift.  Each is a drop-in replacement for the corresponding production
class, selected through :func:`engine_overrides` (the ``repro-fuzz
--inject`` flag) or passed directly to
:func:`repro.conformance.oracle.run_case`.  The failure-injection tests
and the shrinker's acceptance criterion both drive these.

Every bug here is a real historical failure mode — none of them crash;
they silently corrupt state or statistics, which is exactly what the
differential oracle exists to catch.
"""

from __future__ import annotations

from repro.interconnect.costs import write_hit_counts
from repro.snooping.protocols import MesiProtocol
from repro.snooping.states import SnoopState as St
from repro.system.machine import CState, DirectoryMachine


class ForgetsToInvalidate(MesiProtocol):
    """Bus bug: write hits upgrade locally but never invalidate sharers."""

    name = "buggy-no-invalidate"

    def write_hit_invalidate(self, caches, proc, block, line):
        line.state = St.D
        line.dirty = True  # other copies left alive and stale!


class FillsStaleExclusive(MesiProtocol):
    """Bus bug: write misses fill the writer but leave old copies valid."""

    name = "buggy-stale-copies"

    def write_miss_fill(self, caches, proc, block):
        return St.D, True  # skipped the snoop-invalidate loop


class DropsInvalidationsDirectory(DirectoryMachine):
    """Directory bug: upgrades drop the invalidation fan-out.

    A write hit on a shared copy charges the messages and updates the
    directory as if the sharers were destroyed, but their cache lines
    are left valid — the canonical "dropped invalidation" failure.  The
    copyset/holders mismatch is caught by the structural invariants at
    the very step it happens, and the surviving stale copies trip the
    version checker on their next read.
    """

    def _write_hit_shared(self, proc, block, line):
        home = self._home_of(block, proc)
        ent = self.protocol.entry(block)
        others = ent.copyset - {proc}
        self.protocol.write_hit(block, proc, sole_copy=not others)
        dc = self.representation.invalidation_targets(
            ent, proc, home, self.config.num_procs
        )
        short, data = write_hit_counts(home == proc, dc)
        self._charge("write_hit", block, short, data)
        if others:
            self.invalidation_sizes[len(others)] += 1
        # BUG: the remote sharers' lines are never removed.
        ent.copyset.intersection_update({proc})
        ent.copyset.add(proc)
        self.representation.on_exclusive(ent)
        line.state = CState.EXCL
        line.dirty = True
        self.caches[proc].touch(block)
        self.cache_stats.upgrades += 1
        self._bump_version(block, line)


class SkewsPackedStatsDirectory(DirectoryMachine):
    """Directory bug: the packed fast path loses half its read hits.

    Models a fast-path divergence (the class of bug the packed-vs-generic
    differential stage exists for): the columnar replay produces correct
    protocol behaviour but drifts on a statistic.
    """

    def _run_packed(self, packed):
        before = self.cache_stats.read_hits
        result = super()._run_packed(packed)
        gained = self.cache_stats.read_hits - before
        self.cache_stats.read_hits = before + gained // 2
        return result


#: ``--inject`` name -> keyword overrides for ``oracle.run_case``.
INJECTIONS = {
    "none": {},
    "drop-invalidation": {"directory_machine": DropsInvalidationsDirectory},
    "packed-skew": {"directory_machine": SkewsPackedStatsDirectory},
    "snoop-drop-invalidation": {"snoop_factories": (ForgetsToInvalidate,)},
    "snoop-stale-fill": {"snoop_factories": (FillsStaleExclusive,)},
}


def engine_overrides(inject: str) -> dict:
    """The ``run_case`` keyword overrides for one ``--inject`` name."""
    try:
        return dict(INJECTIONS[inject])
    except KeyError:
        raise ValueError(
            f"unknown injection {inject!r}; expected one of "
            f"{sorted(INJECTIONS)}"
        ) from None
