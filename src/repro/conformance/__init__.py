"""Differential conformance subsystem.

The correctness machinery that used to live only inside ``tests/`` —
coherence invariants, cross-engine differential checking, failure
injection, and trace minimisation — promoted into reusable
infrastructure that any later change can be run against:

* :mod:`repro.conformance.invariants` — the single source of truth for
  the copyset/classification safety invariants of Figure 3, shared by
  the machines' built-in checkers, the model checker in
  :mod:`repro.verification.space`, and the fuzzing oracle.
* :mod:`repro.conformance.fuzzer` — a deterministic, seed-driven trace
  fuzzer biased toward the paper's sharing patterns plus adversarial
  interleavings the synthetic generators never emit.
* :mod:`repro.conformance.oracle` — the differential oracle: replays
  each trace through the directory machine, the snooping machine, the
  packed-trace fast paths, and a sequential-consistency reference
  model, asserting bit-identical statistics and invariant-clean state.
* :mod:`repro.conformance.bugs` — deliberately broken protocol
  variants (fault injection) used to prove the oracle actually fires.
* :mod:`repro.conformance.shrink` — a greedy delta-debugging shrinker
  reducing any failing trace to a minimal reproducer.
* :mod:`repro.conformance.artifacts` — on-disk reproducer directories
  written by the ``repro-fuzz`` CLI and replayed by the regression
  suite in ``tests/reproducers/``.
* :mod:`repro.conformance.cli` — the ``repro-fuzz`` console entry
  point (``--seeds N --jobs N --profile ...``).

This package init deliberately imports only the invariants layer: the
machines import :mod:`repro.conformance.invariants` at module load, so
anything heavier here would create an import cycle.
"""

from repro.conformance.invariants import (
    check_directory_block,
    check_snooping_block,
    directory_copy_violations,
    directory_machine_violations,
    snooping_copy_violations,
    snooping_machine_violations,
)

__all__ = [
    "check_directory_block",
    "check_snooping_block",
    "directory_copy_violations",
    "directory_machine_violations",
    "snooping_copy_violations",
    "snooping_machine_violations",
]
