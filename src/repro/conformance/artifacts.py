"""Reproducer artifact directories.

A reproducer is one directory holding everything needed to replay a
fuzz case without the fuzzer: the trace in the repository's text format
(``trace.txt``) plus a JSON sidecar (``case.json``) recording the
machine geometry, the generating seed/profile, and — for failing cases
— the oracle failure it demonstrates.  ``repro-fuzz`` writes one per
shrunk failure; interesting *passing* traces are checked into
``tests/reproducers/`` and replayed by the regression suite so that
every future protocol or fast-path change is exercised against them.

The JSON schema is versioned (:data:`SCHEMA_VERSION`); loaders reject
versions they do not understand rather than mis-replaying a case.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import TraceError
from repro.conformance.fuzzer import FuzzCase
from repro.conformance.oracle import CaseFailure
from repro.trace.core import Trace

#: Bump when the sidecar layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default artifact root used by the ``repro-fuzz`` CLI.
DEFAULT_ARTIFACT_DIR = Path("repro-fuzz-artifacts")

TRACE_FILE = "trace.txt"
CASE_FILE = "case.json"


def reproducer_name(case: FuzzCase) -> str:
    """The directory name for one case: ``<profile>-seed<n>``."""
    return f"{case.profile}-seed{case.seed:05d}"


def save_reproducer(
    root: str | Path,
    case: FuzzCase,
    failure: CaseFailure | None = None,
    notes: str = "",
) -> Path:
    """Write one reproducer directory under ``root``; returns its path.

    Args:
        case: the case to serialize (its trace is written verbatim —
            pass the shrunk case, not the original, after shrinking).
        failure: the oracle failure the trace demonstrates, or None for
            a passing regression trace.
        notes: free-form description stored in the sidecar.
    """
    directory = Path(root) / reproducer_name(case)
    directory.mkdir(parents=True, exist_ok=True)
    case.trace.save(directory / TRACE_FILE)
    sidecar = {
        "schema_version": SCHEMA_VERSION,
        "seed": case.seed,
        "profile": case.profile,
        "num_procs": case.num_procs,
        "block_size": case.block_size,
        "cache_size": case.cache_size,
        "associativity": case.associativity,
        "replacement": case.replacement,
        "ops": len(case.trace),
        "failure": (
            {
                "stage": failure.stage,
                "engine": failure.engine,
                "detail": failure.detail,
            }
            if failure is not None
            else None
        ),
        "notes": notes,
    }
    (directory / CASE_FILE).write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
        encoding="ascii",
    )
    return directory


def load_reproducer(directory: str | Path) -> tuple[FuzzCase, dict]:
    """Load one reproducer directory back into a replayable case.

    Returns:
        ``(case, sidecar)`` where ``sidecar`` is the raw JSON mapping
        (including any recorded failure and notes).

    Raises:
        TraceError: on a missing file or unsupported schema version.
    """
    directory = Path(directory)
    case_path = directory / CASE_FILE
    if not case_path.exists():
        raise TraceError(f"{directory}: no {CASE_FILE} sidecar")
    sidecar = json.loads(case_path.read_text(encoding="ascii"))
    version = sidecar.get("schema_version")
    if version != SCHEMA_VERSION:
        raise TraceError(
            f"{case_path}: schema version {version!r} not supported "
            f"(expected {SCHEMA_VERSION})"
        )
    trace = Trace.load(directory / TRACE_FILE, name=directory.name)
    case = FuzzCase(
        seed=int(sidecar["seed"]),
        profile=str(sidecar["profile"]),
        num_procs=int(sidecar["num_procs"]),
        block_size=int(sidecar["block_size"]),
        cache_size=(
            None if sidecar["cache_size"] is None
            else int(sidecar["cache_size"])
        ),
        associativity=int(sidecar["associativity"]),
        replacement=str(sidecar["replacement"]),
        trace=trace,
    )
    return case, sidecar


def iter_reproducers(root: str | Path):
    """Yield ``(path, case, sidecar)`` for every reproducer under root."""
    root = Path(root)
    if not root.exists():
        return
    for case_path in sorted(root.glob(f"*/{CASE_FILE}")):
        directory = case_path.parent
        case, sidecar = load_reproducer(directory)
        yield directory, case, sidecar
