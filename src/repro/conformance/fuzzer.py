"""Deterministic, seed-driven trace fuzzer.

Every fuzz case is a pure function of ``(profile, seed)``: the same pair
always yields the same machine geometry and byte-identical trace, which
is what makes ``repro-fuzz`` runs reproducible and lets a failing seed
be named in a bug report.  Five profiles are provided:

* ``migratory`` — compositions of the synthetic sharing patterns the
  paper studies (migratory objects, lock-style read-modify-write
  hand-offs, producer/consumer, read-shared), interleaved in random
  chunk order.  This is the traffic the adaptive protocols are built
  for, so it exercises the classification machinery hardest.
* ``uniform`` — memoryless random accesses over a small block space,
  the classic coverage profile (every interleaving is equally likely).
* ``adversarial`` — interleavings the synthetic generators never emit:
  single-block write storms by all processors, two-processor
  ping-pong, false sharing inside one block, eviction sweeps sized to
  overflow tiny caches mid-pattern, and silent-upgrade probes (write
  then remote read then write again).
* ``kernel`` — migratory/uniform traffic under geometries chosen to be
  mostly *kernel-eligible* (infinite or roomy eviction-free caches, see
  :mod:`repro.kernels`), so the oracle's kernel-diff stage replays on
  the table-driven kernels rather than falling back; a slice of tiny
  geometries keeps the fallback decision itself under test.
* ``evict`` — adversarial set-conflict traffic on deliberately tiny
  finite caches (one or two sets, one or two ways, LRU or FIFO): more
  distinct blocks than ways collide in each set, so every case churns
  replacements.  This drives the kernels' eviction-aware group walks —
  segment restarts, recency bookkeeping, replacement charges, dirty
  writebacks, last-copy directory forgetting — against the packed
  reference, with stats and final cache state compared bit-for-bit.
* ``family`` — traffic shaped for the adaptive-family machinery of
  :mod:`repro.protocols`: same-writer write runs just around the hybrid
  family's ``invalid_threshold`` (so blocks flip between update and
  invalidate mode mid-trace), shared-read bursts that drive the revert
  path, and re-read cadences tuned to the self-invalidation family's
  epoch lease (copies expire mid-run).  Everything replays through the
  whole registry, so this profile stresses the mode/lease state the
  other profiles only hit by accident.

Machine geometry (processor count, block size, finite vs infinite
caches, associativity, replacement policy) is fuzzed along with the
trace so the packed-replay fast paths for every cache flavour are
covered, not just the infinite-cache one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import WORD_SIZE, Access, read, write
from repro.trace import synth
from repro.trace.core import Trace

#: The recognised fuzz profiles, in CLI order.
PROFILES = ("migratory", "uniform", "adversarial", "kernel", "evict",
            "family")

#: Hard ceiling on trace length so one case replays in milliseconds.
MAX_OPS = 512


@dataclass(frozen=True, eq=False)
class FuzzCase:
    """One fuzzed (trace, machine geometry) pair.

    Attributes:
        seed: the generating seed.
        profile: the generating profile name.
        num_procs: processor count for both machines.
        block_size: coherence granularity in bytes.
        cache_size: per-processor capacity in bytes; None = infinite.
        associativity: ways per set (finite caches only).
        replacement: ``"lru"``, ``"fifo"`` or ``"random"``.
        trace: the access trace to replay.
    """

    seed: int
    profile: str
    num_procs: int
    block_size: int
    cache_size: int | None
    associativity: int
    replacement: str
    trace: Trace

    def machine_config(self) -> MachineConfig:
        """The :class:`MachineConfig` both engines replay under."""
        return MachineConfig(
            num_procs=self.num_procs,
            cache=CacheConfig(
                size_bytes=self.cache_size,
                block_size=self.block_size,
                associativity=self.associativity,
                replacement=self.replacement,
            ),
        )

    def with_trace(self, trace: Trace) -> "FuzzCase":
        """A copy of this case replaying a different trace (shrinking)."""
        return replace(self, trace=trace)

    def describe(self) -> str:
        """One-line summary for logs and artifacts."""
        cache = (
            "inf" if self.cache_size is None
            else f"{self.cache_size}B/{self.associativity}w/{self.replacement}"
        )
        return (
            f"{self.profile} seed={self.seed} procs={self.num_procs} "
            f"block={self.block_size} cache={cache} ops={len(self.trace)}"
        )


def _rng_for(profile: str, seed: int) -> random.Random:
    # str seeds hash deterministically inside random.Random (sha512),
    # independent of PYTHONHASHSEED, so cases reproduce across runs.
    return random.Random(f"repro-fuzz:{profile}:{seed}")


def _truncate(accesses: list[Access], rng: random.Random) -> list[Access]:
    if len(accesses) > MAX_OPS:
        # Keep a contiguous window so per-processor program order (and
        # therefore the patterns' temporal structure) survives.
        start = rng.randrange(len(accesses) - MAX_OPS + 1)
        return accesses[start:start + MAX_OPS]
    return accesses


# ----------------------------------------------------------------------
# Profile generators
# ----------------------------------------------------------------------

def _migratory_trace(rng: random.Random, num_procs: int,
                     block_size: int) -> list[Access]:
    pieces = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(
            ["migratory", "migratory", "lock", "producer_consumer",
             "read_shared"]
        )
        base = rng.choice([0, 4096, 16384])
        seed = rng.randrange(2 ** 31)
        if kind == "migratory":
            piece = synth.migratory(
                num_procs=num_procs,
                num_objects=rng.randint(1, 4),
                words_per_object=rng.randint(1, 4),
                visits=rng.randint(2, 10),
                reads_per_visit=rng.randint(1, 3),
                writes_per_visit=rng.randint(1, 3),
                base=base,
                stride=rng.choice([None, block_size, 2 * block_size]),
                seed=seed,
            )
        elif kind == "lock":
            # A lock-protected record: strict read-modify-write
            # hand-offs on a single word — the purest migratory input.
            piece = synth.migratory(
                num_procs=num_procs,
                num_objects=1,
                words_per_object=1,
                visits=rng.randint(4, 16),
                reads_per_visit=1,
                writes_per_visit=1,
                base=base,
                seed=seed,
            )
        elif kind == "producer_consumer":
            piece = synth.producer_consumer(
                num_procs=num_procs,
                num_objects=rng.randint(1, 3),
                words_per_object=rng.randint(1, 4),
                rounds=rng.randint(2, 8),
                consumers=rng.randint(1, max(1, num_procs - 1)),
                base=base,
                seed=seed,
            )
        else:
            piece = synth.read_shared(
                num_procs=num_procs,
                num_objects=rng.randint(1, 3),
                words_per_object=rng.randint(1, 4),
                rounds=rng.randint(1, 4),
                base=base,
                seed=seed,
            )
        pieces.append(piece)
    mixed = synth.interleave(
        pieces, chunk=rng.randint(1, 8), seed=rng.randrange(2 ** 31)
    )
    return list(mixed)


def _uniform_trace(rng: random.Random, num_procs: int,
                   block_size: int) -> list[Access]:
    num_blocks = rng.randint(2, 10)
    words_per_block = max(1, block_size // WORD_SIZE)
    length = rng.randint(50, 300)
    out = []
    for _ in range(length):
        proc = rng.randrange(num_procs)
        addr = (
            rng.randrange(num_blocks) * block_size
            + rng.randrange(words_per_block) * WORD_SIZE
        )
        out.append(
            write(proc, addr) if rng.random() < 0.4 else read(proc, addr)
        )
    return out


def _adversarial_trace(rng: random.Random, num_procs: int,
                       block_size: int, cache_size: int | None) -> list[Access]:
    out: list[Access] = []
    words_per_block = max(1, block_size // WORD_SIZE)
    hot = rng.randrange(4) * block_size
    while len(out) < rng.randint(100, MAX_OPS):
        phase = rng.choice(
            ["write_storm", "ping_pong", "false_share", "sweep",
             "upgrade_probe", "noise"]
        )
        if phase == "write_storm":
            # Every processor writes the same block back to back — the
            # hysteresis/invalidation machinery under maximum pressure.
            for _ in range(rng.randint(1, 3)):
                for proc in range(num_procs):
                    out.append(write(proc, hot))
        elif phase == "ping_pong":
            a, b = rng.sample(range(num_procs), 2) if num_procs > 1 else (0, 0)
            for _ in range(rng.randint(2, 6)):
                out.append(read(a, hot))
                out.append(write(a, hot))
                out.append(read(b, hot))
                out.append(write(b, hot))
        elif phase == "false_share":
            for _ in range(rng.randint(2, 6)):
                proc = rng.randrange(num_procs)
                word = rng.randrange(words_per_block)
                addr = hot + word * WORD_SIZE
                out.append(read(proc, addr))
                out.append(write(proc, addr))
        elif phase == "sweep":
            # Touch more distinct blocks than a tiny cache can hold so
            # the hot block is evicted mid-pattern (dirty writebacks,
            # replacement notifications, re-classification on return).
            span = 16 if cache_size is None else (cache_size // block_size) + 4
            proc = rng.randrange(num_procs)
            for i in range(span):
                addr = (8 + i) * block_size
                if rng.random() < 0.3:
                    out.append(write(proc, addr))
                else:
                    out.append(read(proc, addr))
        elif phase == "upgrade_probe":
            # Write, let a remote reader demote the copy, write again:
            # probes the silent-upgrade / revoked-permission paths.
            a = rng.randrange(num_procs)
            b = rng.randrange(num_procs)
            out.append(write(a, hot))
            out.append(read(b, hot))
            out.append(write(a, hot))
            out.append(read(b, hot))
        else:
            for _ in range(rng.randint(1, 8)):
                proc = rng.randrange(num_procs)
                addr = rng.randrange(12) * block_size
                out.append(
                    write(proc, addr) if rng.random() < 0.5
                    else read(proc, addr)
                )
    return out


def _evict_trace(rng: random.Random, num_procs: int, block_size: int,
                 num_sets: int, ways: int) -> list[Access]:
    # Per-set conflict groups: more distinct blocks than ways, all
    # mapping to the same set (blocks stride by num_sets), so fills
    # must evict.  Phases mix plain churn with the interactions that
    # stress eviction-aware replay hardest: migratory hand-offs racing
    # replacement, dirty lines swept out, and cross-block ping-pong.
    groups = [
        [s + i * num_sets for i in range(ways + rng.randint(1, 3))]
        for s in range(num_sets)
    ]
    out: list[Access] = []
    while len(out) < rng.randint(100, MAX_OPS):
        blocks = rng.choice(groups)
        phase = rng.choice(
            ["churn", "handoff", "dirty_sweep", "ping_pong", "noise"]
        )
        if phase == "churn":
            # Round-robin over the conflict group: every revisit misses
            # once the set wraps, so replacement never stops.
            proc = rng.randrange(num_procs)
            for _ in range(rng.randint(1, 3)):
                for b in blocks:
                    addr = b * block_size
                    out.append(
                        write(proc, addr) if rng.random() < 0.4
                        else read(proc, addr)
                    )
        elif phase == "handoff":
            # Migratory hand-offs on one conflicting block: eviction
            # races the classification streak and last-invalidator.
            addr = rng.choice(blocks) * block_size
            for _ in range(rng.randint(2, 6)):
                proc = rng.randrange(num_procs)
                out.append(read(proc, addr))
                out.append(write(proc, addr))
        elif phase == "dirty_sweep":
            # Fill the set dirty, then sweep it with reads: dirty
            # writebacks, replacement notifications, last-copy
            # directory forgetting.
            proc = rng.randrange(num_procs)
            for b in blocks[:ways]:
                out.append(write(proc, b * block_size))
            for b in blocks[ways:]:
                out.append(read(proc, b * block_size))
        elif phase == "ping_pong":
            a, b = (
                rng.sample(range(num_procs), 2) if num_procs > 1 else (0, 0)
            )
            x = rng.choice(blocks) * block_size
            y = rng.choice(blocks) * block_size
            for _ in range(rng.randint(2, 5)):
                out.append(write(a, x))
                out.append(read(b, y))
        else:
            for _ in range(rng.randint(1, 6)):
                proc = rng.randrange(num_procs)
                addr = rng.choice(blocks) * block_size
                out.append(
                    write(proc, addr) if rng.random() < 0.5
                    else read(proc, addr)
                )
    return out


def _family_trace(rng: random.Random, num_procs: int,
                  block_size: int) -> list[Access]:
    # Phases aimed at the adaptive families' hidden state: write runs
    # hovering around the hybrid invalid_threshold (2 at the defaults),
    # shared-read bursts that revert invalidate mode, and read gaps
    # paced against the self-invalidation epoch (4) so leases expire
    # both mid-run and never, depending on the draw.
    out: list[Access] = []
    hot_blocks = [b * block_size for b in range(rng.randint(2, 5))]
    while len(out) < rng.randint(100, MAX_OPS):
        hot = rng.choice(hot_blocks)
        phase = rng.choice(
            ["write_run", "flip_flop", "shared_revert", "lease_age",
             "producer", "noise"]
        )
        if phase == "write_run":
            # One writer, run length 1..4: below, at, and past the
            # hybrid threshold — the mode flip lands mid-phase.
            proc = rng.randrange(num_procs)
            for _ in range(rng.randint(1, 4)):
                out.append(write(proc, hot))
        elif phase == "flip_flop":
            # Alternate writers so the same-writer run keeps resetting:
            # hybrid must *stay* in update mode through this.
            for _ in range(rng.randint(2, 6)):
                out.append(write(rng.randrange(num_procs), hot))
        elif phase == "shared_revert":
            # A read burst by many processors: breaks write runs and
            # accumulates invalidate-mode reads toward the revert.
            readers = rng.sample(
                range(num_procs), rng.randint(1, num_procs)
            )
            for _ in range(rng.randint(1, 3)):
                for proc in readers:
                    out.append(read(proc, hot))
        elif phase == "lease_age":
            # Repeated remote read misses age self-invalidation leases:
            # interleave a holder's reads with remote refills so some
            # copies expire (counter past the epoch) and some survive.
            holder = rng.randrange(num_procs)
            out.append(write(holder, hot))
            for _ in range(rng.randint(3, 7)):
                out.append(read(rng.randrange(num_procs), hot))
        elif phase == "producer":
            # Single-writer/multi-reader rounds — update mode's best
            # case and the classifier's producer-consumer signature.
            producer = rng.randrange(num_procs)
            for _ in range(rng.randint(2, 5)):
                out.append(write(producer, hot))
                for proc in range(num_procs):
                    if proc != producer:
                        out.append(read(proc, hot))
        else:
            for _ in range(rng.randint(1, 6)):
                proc = rng.randrange(num_procs)
                addr = rng.choice(hot_blocks)
                out.append(
                    write(proc, addr) if rng.random() < 0.5
                    else read(proc, addr)
                )
    return out


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------

def generate_case(seed: int, profile: str) -> FuzzCase:
    """Build the fuzz case for ``(profile, seed)`` — pure and stable."""
    if profile not in PROFILES:
        raise ValueError(
            f"unknown fuzz profile {profile!r}; expected one of {PROFILES}"
        )
    rng = _rng_for(profile, seed)
    num_procs = rng.choice([2, 3, 4, 4, 6])
    block_size = rng.choice([16, 16, 32, 64])
    if profile == "kernel":
        # Mostly kernel-eligible geometry (infinite, or finite with far
        # more sets than distinct fuzzed blocks so the eviction-free
        # precheck passes); the tail slice is deliberately tiny so the
        # kernel-vs-fallback decision is fuzzed too.
        num_procs = rng.choice([2, 4, 6, 8])
        if rng.random() < 0.6:
            cache_size, associativity, replacement = None, 4, "lru"
        elif rng.random() < 0.7:
            associativity = rng.choice([2, 4])
            cache_size = block_size * associativity * 64
            replacement = "lru"
        else:
            associativity = rng.choice([1, 2])
            cache_size = block_size * associativity * rng.choice([1, 2])
            replacement = rng.choice(["lru", "fifo", "random"])
    elif profile == "evict":
        # Deliberately tiny, always-finite geometry with deterministic
        # replacement (random replacement is outside the eviction-aware
        # kernel envelope, so it would test the fallback, not the walk).
        num_procs = rng.choice([2, 3, 4])
        associativity = rng.choice([1, 2])
        num_sets = rng.choice([1, 2])
        cache_size = block_size * associativity * num_sets
        replacement = rng.choice(["lru", "lru", "fifo"])
    elif profile == "family":
        # Mostly infinite caches: the families' mode/lease state is the
        # target, and evictions resetting residency would mask it.  A
        # small finite slice keeps the interaction with replacement
        # under test too.
        if rng.random() < 0.7:
            cache_size, associativity, replacement = None, 4, "lru"
        else:
            associativity = rng.choice([2, 4])
            cache_size = block_size * associativity * 8
            replacement = "lru"
    elif rng.random() < 0.5:
        cache_size, associativity, replacement = None, 4, "lru"
    else:
        associativity = rng.choice([1, 2, 4])
        num_sets = rng.choice([1, 2])
        cache_size = block_size * associativity * num_sets
        replacement = rng.choice(["lru", "lru", "fifo", "random"])
    if profile == "evict":
        accesses = _evict_trace(
            rng, num_procs, block_size, num_sets, associativity
        )
    elif profile == "migratory":
        accesses = _migratory_trace(rng, num_procs, block_size)
    elif profile == "uniform":
        accesses = _uniform_trace(rng, num_procs, block_size)
    elif profile == "kernel":
        if rng.random() < 0.5:
            accesses = _migratory_trace(rng, num_procs, block_size)
        else:
            accesses = _uniform_trace(rng, num_procs, block_size)
    elif profile == "family":
        accesses = _family_trace(rng, num_procs, block_size)
    else:
        accesses = _adversarial_trace(rng, num_procs, block_size, cache_size)
    accesses = _truncate(accesses, rng)
    trace = Trace(accesses, name=f"fuzz-{profile}-{seed}")
    return FuzzCase(
        seed=seed,
        profile=profile,
        num_procs=num_procs,
        block_size=block_size,
        cache_size=cache_size,
        associativity=associativity,
        replacement=replacement,
        trace=trace,
    )
