"""The coherence safety invariants, in one place.

Both machine models enforce the same structural safety properties — at
most one writable copy, at most one dirty copy, a directory copy set
that matches reality, the adaptive snooping protocol's ``S2``
at-most-two-copies guarantee — but until this module existed the checks
were written out four times: once inside each machine's ``check=True``
path and once per machine inside the model checker
(:mod:`repro.verification.space`).  Everything now funnels through the
two pure functions below, with thin adapters for live machines.

Two call shapes are provided:

* *State-level* — :func:`directory_copy_violations` and
  :func:`snooping_copy_violations` operate on plain data (copyset plus
  per-node line summaries) and return a list of human-readable problem
  strings.  The model checker and any external tool can use these
  against extracted global states.
* *Machine-level* — :func:`directory_machine_violations` /
  :func:`snooping_machine_violations` extract that data from a live
  machine, and :func:`check_directory_block` /
  :func:`check_snooping_block` raise
  :class:`repro.common.errors.ProtocolError` on the first violation.
  The machines' own checkers and the conformance oracle's step hooks
  are built from these.

The read-latest-write (version) check is *not* here: it needs the
write-version history that only an end-to-end replay accumulates, so it
stays with the machines' ``check=True`` machinery and the oracle's
sequential-consistency reference model.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.common.errors import ProtocolError
from repro.snooping.states import SnoopState

#: Line-state name identifying an exclusive (writable) directory copy.
EXCLUSIVE_STATE = "EXCL"


# ----------------------------------------------------------------------
# State-level checks (pure functions over extracted line summaries)
# ----------------------------------------------------------------------

def directory_copy_violations(
    copyset: Iterable[int],
    lines: Mapping[int, tuple[str, bool]],
    block: int = 0,
    exact_copyset: bool = True,
) -> list[str]:
    """Check one block's directory-machine invariants.

    Args:
        copyset: the nodes the directory believes hold a copy.
        lines: per-node line summary ``{node: (state_name, dirty)}`` for
            every node actually holding the block; ``state_name`` is the
            :class:`repro.system.machine.CState` member name.
        block: block number, used only in the problem messages.
        exact_copyset: require ``copyset`` to equal the true holder set.
            This only holds when replacement notifications are enabled;
            with silent clean drops the directory's set is a superset.

    Returns:
        A list of problem descriptions; empty when every invariant holds.
    """
    problems = []
    holders = set(lines)
    if exact_copyset and set(copyset) != holders:
        problems.append(
            f"copyset {sorted(copyset)} != holders {sorted(holders)} "
            f"for block {block}"
        )
    dirty_holders = sorted(node for node, (_, dirty) in lines.items() if dirty)
    if len(dirty_holders) > 1:
        problems.append(
            f"multiple dirty holders for block {block}: {dirty_holders}"
        )
    excl_holders = sorted(
        node for node, (state, _) in lines.items() if state == EXCLUSIVE_STATE
    )
    if len(excl_holders) > 1:
        problems.append(
            f"multiple exclusive holders for block {block}: {excl_holders}"
        )
    if excl_holders and len(holders) > 1:
        problems.append(
            f"exclusive copy coexists with other copies for block {block}"
        )
    return problems


def snooping_copy_violations(
    lines: Sequence[tuple[SnoopState, bool]],
    block: int = 0,
) -> list[str]:
    """Check one block's snooping-machine invariants.

    Args:
        lines: ``(state, dirty)`` for every cache holding the block.
        block: block number, used only in the problem messages.

    Returns:
        A list of problem descriptions; empty when every invariant holds.
    """
    problems = []
    exclusive = [state for state, _ in lines if state.is_exclusive]
    if exclusive and len(lines) > 1:
        problems.append(
            f"exclusive copy coexists with {len(lines) - 1} others "
            f"for block {block}"
        )
    dirty = sum(1 for _, is_dirty in lines if is_dirty)
    if dirty > 1:
        problems.append(f"multiple dirty copies of block {block}")
    s2 = sum(1 for state, _ in lines if state is SnoopState.S2)
    if s2 > 1:
        problems.append(f"multiple S2 copies of block {block}")
    if s2 and len(lines) > 2:
        problems.append(
            f"S2 copy of block {block} coexists with {len(lines)} copies"
        )
    return problems


# ----------------------------------------------------------------------
# Machine-level adapters
# ----------------------------------------------------------------------

def directory_machine_violations(machine, block: int) -> list[str]:
    """Invariant violations for ``block`` on a live DirectoryMachine.

    Works on any machine regardless of its ``check`` flag — this is the
    step-level hook the conformance oracle attaches to production
    configurations.
    """
    ent = machine.protocol.peek(block)
    copyset = ent.copyset if ent is not None else set()
    lines = {}
    for node, cache in enumerate(machine.caches):
        line = cache.lookup(block)
        if line is not None:
            lines[node] = (line.state.name, line.dirty)
    return directory_copy_violations(
        copyset, lines, block,
        exact_copyset=machine.config.eviction_notification,
    )


def snooping_machine_violations(machine, block: int) -> list[str]:
    """Invariant violations for ``block`` on a live BusMachine."""
    lines = []
    for cache in machine.caches:
        line = cache.lookup(block)
        if line is not None:
            lines.append((line.state, line.dirty))
    return snooping_copy_violations(lines, block)


def check_directory_block(machine, block: int) -> None:
    """Raise :class:`ProtocolError` if ``block`` violates any invariant."""
    problems = directory_machine_violations(machine, block)
    if problems:
        raise ProtocolError("; ".join(problems))


def check_snooping_block(machine, block: int) -> None:
    """Raise :class:`ProtocolError` if ``block`` violates any invariant."""
    problems = snooping_machine_violations(machine, block)
    if problems:
        raise ProtocolError("; ".join(problems))
