"""The ``repro-fuzz`` console entry point.

Usage::

    repro-fuzz [--seeds N] [--start-seed S] [--jobs N]
               [--profile migratory|uniform|adversarial|all]
               [--artifacts DIR] [--inject NAME] [--no-shrink]
               [--verbose]

Each seed becomes one fuzz case per selected profile; cases fan out
across worker processes via :func:`repro.parallel.parallel_map`
(``--jobs`` or ``REPRO_JOBS``, serial by default) and replay through
the differential oracle.  Failures are shrunk to minimal reproducers
with delta debugging and written to the artifact directory as
``<profile>-seed<n>/{trace.txt,case.json}``.

Output on stdout is byte-deterministic for a fixed seed range,
whatever ``--jobs`` says: results merge in submission order and all
timing goes to stderr.  The exit status is 0 when every case is clean
and 1 otherwise, so the command slots directly into CI.

``--inject`` swaps a deliberately broken engine variant in (see
:mod:`repro.conformance.bugs`) — the self-test proving the fuzzer,
oracle, shrinker, and artifact writer actually work end to end.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.conformance import artifacts, bugs
from repro.conformance.fuzzer import PROFILES, generate_case
from repro.conformance.oracle import CaseFailure, run_case
from repro.conformance.shrink import shrink_case
from repro.parallel import parallel_map, resolve_jobs


def _fuzz_worker(task: tuple[int, str, str]) -> tuple[int, str, int, tuple | None]:
    """Run one (seed, profile, inject) case; picklable in and out."""
    seed, profile, inject = task
    case = generate_case(seed, profile)
    failure = run_case(case, **bugs.engine_overrides(inject))
    packed_failure = (
        None if failure is None
        else (failure.stage, failure.engine, failure.detail)
    )
    return (seed, profile, len(case.trace), packed_failure)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential conformance fuzzing of the coherence "
        "engines: seeded traces, cross-engine oracle, delta-debugged "
        "reproducers.",
    )
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of seeds per profile (default 50)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--profile", choices=[*PROFILES, "all"],
                        default="all",
                        help="fuzz profile (default: all three)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                        "serial); output is identical for any job count")
    parser.add_argument("--artifacts", type=Path,
                        default=artifacts.DEFAULT_ARTIFACT_DIR,
                        help="directory for shrunk reproducers (default "
                        f"{artifacts.DEFAULT_ARTIFACT_DIR})")
    parser.add_argument("--inject", choices=sorted(bugs.INJECTIONS),
                        default="none",
                        help="swap in a deliberately broken engine "
                        "variant (pipeline self-test)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="save failing traces unshrunk")
    parser.add_argument("--verbose", action="store_true",
                        help="print every case, not just failures")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))

    profiles = PROFILES if args.profile == "all" else (args.profile,)
    tasks = [
        (seed, profile, args.inject)
        for seed in range(args.start_seed, args.start_seed + args.seeds)
        for profile in profiles
    ]
    print(
        f"repro-fuzz: {args.seeds} seeds x {len(profiles)} profile(s), "
        f"inject={args.inject}"
    )
    started = time.time()
    results = parallel_map(_fuzz_worker, tasks, jobs=args.jobs)
    print(f"[fuzzed {len(tasks)} cases in {time.time() - started:.1f}s]",
          file=sys.stderr)

    failures = []
    for seed, profile, ops, packed_failure in results:
        if packed_failure is None:
            if args.verbose:
                print(f"seed {seed:05d} {profile}: ok ({ops} ops)")
            continue
        failure = CaseFailure(*packed_failure)
        failures.append((seed, profile, failure))
        print(f"seed {seed:05d} {profile}: FAIL {failure}")

    overrides = bugs.engine_overrides(args.inject)
    for seed, profile, failure in failures:
        case = generate_case(seed, profile)
        if args.no_shrink:
            path = artifacts.save_reproducer(args.artifacts, case, failure)
            print(f"saved seed {seed:05d} {profile} unshrunk "
                  f"({len(case.trace)} ops) -> {path}")
            continue
        result = shrink_case(case, failure, **overrides)
        path = artifacts.save_reproducer(
            args.artifacts, result.case, result.failure,
            notes=f"shrunk from {result.original_ops} ops in "
            f"{result.tests} oracle runs",
        )
        print(
            f"shrunk seed {seed:05d} {profile} to {result.ops} ops "
            f"(from {result.original_ops}) -> {path}"
        )

    print(
        f"repro-fuzz: {len(tasks)} cases, {len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
