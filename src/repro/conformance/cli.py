"""The ``repro-fuzz`` console entry point.

Usage::

    repro-fuzz [--seeds N] [--start-seed S] [--jobs N]
               [--profile migratory|uniform|adversarial|kernel|all]
               [--artifacts DIR] [--inject NAME] [--no-shrink]
               [--verbose] [--telemetry-dir DIR]

Each seed becomes one fuzz case per selected profile; cases fan out
across worker processes via :func:`repro.parallel.parallel_map`
(``--jobs`` or ``REPRO_JOBS``, serial by default, ``0`` = all CPUs)
and replay through the differential oracle.  The campaign reuses the
session's persistent executor, so the spawn cost is paid once even when
the shrinker fans out again after failures.  Failures are shrunk to
minimal reproducers with delta debugging and written to the artifact
directory as ``<profile>-seed<n>/{trace.txt,case.json}``.

Output on stdout is byte-deterministic for a fixed seed range,
whatever ``--jobs`` says: results merge in submission order and all
timing goes to stderr.  The exit status is 0 when every case is clean
and 1 otherwise, so the command slots directly into CI.

``--inject`` swaps a deliberately broken engine variant in (see
:mod:`repro.conformance.bugs`) — the self-test proving the fuzzer,
oracle, shrinker, and artifact writer actually work end to end.

``--telemetry-dir DIR`` records the campaign: one ``progress`` event
per case plus per-profile outcome counters and a trace-size histogram
stream to ``DIR/events.jsonl`` / ``DIR/metrics.prom``.  Campaign
records are emitted in the parent from the (order-merged) results, so
the deterministic part of the log is byte-identical for any ``--jobs``;
machine instrumentation stays off so replay speed is unchanged.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.common.version import add_version_argument
from repro.conformance import artifacts, bugs
from repro.conformance.fuzzer import PROFILES, generate_case
from repro.conformance.oracle import CaseFailure, run_case
from repro.conformance.shrink import shrink_case
from repro.parallel import parallel_map, resolve_jobs
from repro.telemetry import runtime as telemetry

#: Bucket bounds for the fuzz trace-size histogram (operation counts).
_OPS_BUCKETS = (16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0)


def _fuzz_worker(task: tuple[int, str, str]) -> tuple[int, str, int, tuple | None]:
    """Run one (seed, profile, inject) case; picklable in and out."""
    seed, profile, inject = task
    case = generate_case(seed, profile)
    failure = run_case(case, **bugs.engine_overrides(inject))
    packed_failure = (
        None if failure is None
        else (failure.stage, failure.engine, failure.detail)
    )
    return (seed, profile, len(case.trace), packed_failure)


def _record_case(session, seed: int, profile: str, ops: int,
                 status: str) -> None:
    """Emit one case's campaign telemetry (parent process only).

    Results arrive merged in submission order whatever ``--jobs`` was,
    so these records land in the log in a deterministic order too.
    """
    session.registry.counter(
        "repro_fuzz_cases_total", "fuzz cases by profile and outcome"
    ).inc(profile=profile, status=status)
    session.registry.histogram(
        "repro_fuzz_trace_ops", "operations per fuzzed trace",
        buckets=_OPS_BUCKETS,
    ).observe(ops, profile=profile)
    if session.sink is not None:
        session.sink.write({
            "type": "progress", "campaign": "fuzz", "seed": seed,
            "profile": profile, "ops": ops, "status": status,
        })


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential conformance fuzzing of the coherence "
        "engines: seeded traces, cross-engine oracle, delta-debugged "
        "reproducers.",
    )
    add_version_argument(parser)
    parser.add_argument("--seeds", type=int, default=50,
                        help="number of seeds per profile (default 50)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--profile", choices=[*PROFILES, "all"],
                        default="all",
                        help="fuzz profile (default: all of them)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                        "serial; 0 = all CPUs); output is identical for "
                        "any job count")
    parser.add_argument("--artifacts", type=Path,
                        default=artifacts.DEFAULT_ARTIFACT_DIR,
                        help="directory for shrunk reproducers (default "
                        f"{artifacts.DEFAULT_ARTIFACT_DIR})")
    parser.add_argument("--inject", choices=sorted(bugs.INJECTIONS),
                        default="none",
                        help="swap in a deliberately broken engine "
                        "variant (pipeline self-test)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="save failing traces unshrunk")
    parser.add_argument("--verbose", action="store_true",
                        help="print every case, not just failures")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="record campaign telemetry (progress "
                        "events, outcome counters, stage spans) into "
                        "this directory; render with repro-stats")
    args = parser.parse_args(argv)
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")
    try:
        resolve_jobs(args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    if args.telemetry_dir is not None:
        # Campaign-level observability only: the worker replays stay on
        # their fast paths and keep their byte-determinism contract.
        telemetry.configure(telemetry.TelemetrySession(
            args.telemetry_dir, instrument_machines=False
        ))
    try:
        return _campaign(args)
    finally:
        if args.telemetry_dir is not None:
            telemetry.shutdown()


def _campaign(args) -> int:
    """Run the fuzz campaign described by the parsed ``args``."""
    profiles = PROFILES if args.profile == "all" else (args.profile,)
    tasks = [
        (seed, profile, args.inject)
        for seed in range(args.start_seed, args.start_seed + args.seeds)
        for profile in profiles
    ]
    print(
        f"repro-fuzz: {args.seeds} seeds x {len(profiles)} profile(s), "
        f"inject={args.inject}"
    )
    started = time.time()
    with telemetry.span("fuzz.campaign", cases=len(tasks),
                        inject=args.inject):
        results = parallel_map(_fuzz_worker, tasks, jobs=args.jobs)
    print(f"[fuzzed {len(tasks)} cases in {time.time() - started:.1f}s]",
          file=sys.stderr)

    session = telemetry.active()
    failures = []
    for seed, profile, ops, packed_failure in results:
        status = "ok" if packed_failure is None else "fail"
        if session is not None:
            _record_case(session, seed, profile, ops, status)
        if packed_failure is None:
            if args.verbose:
                print(f"seed {seed:05d} {profile}: ok ({ops} ops)")
            continue
        failure = CaseFailure(*packed_failure)
        failures.append((seed, profile, failure))
        print(f"seed {seed:05d} {profile}: FAIL {failure}")

    overrides = bugs.engine_overrides(args.inject)
    for seed, profile, failure in failures:
        case = generate_case(seed, profile)
        if args.no_shrink:
            path = artifacts.save_reproducer(args.artifacts, case, failure)
            print(f"saved seed {seed:05d} {profile} unshrunk "
                  f"({len(case.trace)} ops) -> {path}")
            continue
        with telemetry.span("fuzz.shrink", seed=seed, profile=profile):
            result = shrink_case(case, failure, **overrides)
        path = artifacts.save_reproducer(
            args.artifacts, result.case, result.failure,
            notes=f"shrunk from {result.original_ops} ops in "
            f"{result.tests} oracle runs",
        )
        print(
            f"shrunk seed {seed:05d} {profile} to {result.ops} ops "
            f"(from {result.original_ops}) -> {path}"
        )

    print(
        f"repro-fuzz: {len(tasks)} cases, {len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
