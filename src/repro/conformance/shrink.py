"""Greedy delta-debugging shrinker for failing traces.

Given a trace the oracle rejects, :func:`ddmin` (Zeller &
Hildebrandt's minimizing delta debugging) removes chunks of accesses —
halves first, then progressively finer granularity down to single
accesses — keeping any reduction that still fails.  The result is
1-minimal: removing any single remaining access makes the failure
disappear.  A dropped-invalidation bug, for instance, shrinks from
hundreds of operations to the three that matter (two sharers created,
one upgrade).

:func:`shrink_case` wires the oracle in as the failure predicate.  The
predicate accepts *any* oracle failure, not just a repetition of the
original one — for minimisation purposes a trace that exposes a
different symptom of the same broken engine is just as valuable, and
insisting on message-identical failures makes shrinking brittle.

Everything here is deterministic: the chunk schedule depends only on
the trace length, so a given (case, engine set) always shrinks to the
same reproducer — which is what makes the ``repro-fuzz`` artifact
files byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.common.types import Access
from repro.conformance.fuzzer import FuzzCase
from repro.conformance.oracle import CaseFailure, run_case
from repro.trace.core import Trace


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of shrinking one failing case.

    Attributes:
        case: the original case with its trace replaced by the minimal
            reproducer.
        failure: the oracle failure the minimal trace still produces.
        original_ops: access count before shrinking.
        ops: access count after shrinking.
        tests: number of oracle replays the shrink consumed.
    """

    case: FuzzCase
    failure: CaseFailure
    original_ops: int
    ops: int
    tests: int


def ddmin(
    items: Sequence[Access],
    failing: Callable[[list[Access]], bool],
) -> list[Access]:
    """Reduce ``items`` to a 1-minimal subsequence that still fails.

    Args:
        items: the failing input (``failing(list(items))`` must be True).
        failing: the predicate; called on candidate subsequences.

    Returns:
        A minimal failing subsequence (program order preserved).
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        size = len(current) / granularity
        complements = [
            current[: int(i * size)] + current[int((i + 1) * size):]
            for i in range(granularity)
        ]
        for complement in complements:
            if failing(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                break
        else:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
            continue
    return current


def shrink_case(
    case: FuzzCase,
    failure: CaseFailure | None = None,
    **engine_overrides,
) -> ShrinkResult:
    """Shrink a failing case to a minimal reproducer.

    Args:
        case: the failing case.
        failure: the already-observed failure (re-derived when None).
        engine_overrides: keyword overrides forwarded to
            :func:`repro.conformance.oracle.run_case` — pass the same
            injected engines that made the case fail.

    Returns:
        A :class:`ShrinkResult` whose trace is 1-minimal.

    Raises:
        ValueError: if the case does not actually fail under the given
            engines.
    """
    counter = {"tests": 0}
    last_failure: dict[str, CaseFailure | None] = {"failure": None}

    def failing(accesses: list[Access]) -> bool:
        counter["tests"] += 1
        candidate = case.with_trace(
            Trace(accesses, name=f"{case.trace.name}-shrunk")
        )
        result = run_case(candidate, **engine_overrides)
        if result is not None:
            last_failure["failure"] = result
        return result is not None

    original = list(case.trace)
    if not failing(original):
        raise ValueError(
            f"case {case.describe()} does not fail under the given engines"
        )
    if failure is None:
        failure = last_failure["failure"]
    minimal = ddmin(original, failing)
    # Re-derive the failure the *minimal* trace produces (it may be an
    # earlier symptom than the original trace's).
    failing(minimal)
    return ShrinkResult(
        case=case.with_trace(
            Trace(minimal, name=f"{case.trace.name}-shrunk")
        ),
        failure=last_failure["failure"] or failure,
        original_ops=len(original),
        ops=len(minimal),
        tests=counter["tests"],
    )
