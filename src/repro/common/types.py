"""Fundamental value types shared across the simulator.

The whole system speaks in terms of :class:`Access` records: a processor
identifier, an operation (read or write), and a byte address.  Traces are
sequences of accesses; machines consume accesses one at a time.

Addresses are plain integers (byte addresses).  Blocks and pages are derived
by shifting; see :class:`repro.common.config.MachineConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of bytes in one machine word.  The SPLASH-era machines the paper
#: simulates were 32-bit, so a word is four bytes.
WORD_SIZE = 4


class Op(enum.Enum):
    """A memory operation kind."""

    READ = "R"
    WRITE = "W"

    @property
    def is_write(self) -> bool:
        """Return True when the operation modifies memory."""
        return self is Op.WRITE

    @property
    def is_read(self) -> bool:
        """Return True when the operation only observes memory."""
        return self is Op.READ


@dataclass(frozen=True, slots=True)
class Access:
    """One shared-memory reference issued by a processor.

    Attributes:
        proc: issuing processor id, ``0 <= proc < num_procs``.
        op: whether the reference reads or writes.
        addr: byte address referenced.
    """

    proc: int
    op: Op
    addr: int

    def __str__(self) -> str:
        return f"P{self.proc} {self.op.value} 0x{self.addr:x}"


def read(proc: int, addr: int) -> Access:
    """Convenience constructor for a read access."""
    return Access(proc, Op.READ, addr)


def write(proc: int, addr: int) -> Access:
    """Convenience constructor for a write access."""
    return Access(proc, Op.WRITE, addr)
