"""Exception hierarchy for the repro package.

All errors raised by the simulator derive from :class:`ReproError` so that
callers can distinguish simulator problems from ordinary Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class ProtocolError(ReproError):
    """A coherence protocol observed an impossible event or state.

    Raising (rather than silently ignoring) keeps state-machine bugs from
    masquerading as benign behaviour; the protocol implementations treat
    unreachable transitions as hard errors.
    """


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class TelemetryError(ReproError):
    """A telemetry record, metric, or exporter was misused.

    Raised for schema-invalid event records, metric name/kind conflicts,
    and merges of incompatible registries.
    """


class WorkloadError(ReproError):
    """A simulated parallel program misused the workload engine API."""


class DeadlockError(WorkloadError):
    """Every runnable thread in the workload engine is blocked."""
