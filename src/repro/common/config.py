"""Machine and cache configuration objects.

:class:`MachineConfig` captures the parameters of the simulated
multiprocessor used throughout the paper's evaluation: sixteen processors,
four-way set-associative LRU caches, 4 KByte pages, and block sizes swept
from 16 to 256 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of one per-processor cache.

    Attributes:
        size_bytes: total capacity.  ``None`` simulates an infinite cache
            (no capacity or conflict misses), which the paper uses for the
            block-size sweep of Table 3.
        block_size: coherence/line granularity in bytes.
        associativity: number of ways per set (ignored for infinite caches).
        replacement: ``"lru"``, ``"fifo"`` or ``"random"``; the paper uses
            LRU, the alternatives exist for ablations.
    """

    size_bytes: int | None = 64 * 1024
    block_size: int = 16
    associativity: int = 4
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_size):
            raise ConfigError(f"block_size must be a power of two: {self.block_size}")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ConfigError(f"unknown replacement policy: {self.replacement!r}")
        if self.size_bytes is not None:
            if self.size_bytes <= 0:
                raise ConfigError("cache size must be positive or None (infinite)")
            if self.associativity <= 0:
                raise ConfigError("associativity must be positive")
            lines = self.size_bytes // self.block_size
            if lines == 0:
                raise ConfigError("cache smaller than one block")
            if lines % self.associativity != 0:
                raise ConfigError(
                    f"cache of {lines} lines not divisible into "
                    f"{self.associativity}-way sets"
                )

    @property
    def is_infinite(self) -> bool:
        """True when the cache never evicts."""
        return self.size_bytes is None

    @property
    def num_lines(self) -> int:
        """Total number of cache lines (undefined for infinite caches)."""
        if self.size_bytes is None:
            raise ConfigError("infinite cache has no line count")
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        """Number of sets (undefined for infinite caches)."""
        return self.num_lines // self.associativity


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Parameters of the simulated multiprocessor.

    Attributes:
        num_procs: number of processing nodes (the paper uses 16).
        cache: per-node cache geometry.
        page_size: virtual-memory page size used by page placement.
        eviction_notification: whether dropping a clean cache entry sends a
            notification message to the block's home directory.  The paper
            charges this message at full cost; it can be disabled for an
            ablation.
    """

    num_procs: int = 16
    cache: CacheConfig = field(default_factory=CacheConfig)
    page_size: int = 4096
    eviction_notification: bool = True

    def __post_init__(self) -> None:
        if self.num_procs <= 0:
            raise ConfigError("num_procs must be positive")
        if not _is_power_of_two(self.page_size):
            raise ConfigError(f"page_size must be a power of two: {self.page_size}")
        if self.page_size < self.cache.block_size:
            raise ConfigError("page_size must be at least one block")

    @property
    def block_size(self) -> int:
        """Coherence granularity in bytes."""
        return self.cache.block_size

    def block_of(self, addr: int) -> int:
        """Return the block number containing byte address ``addr``."""
        return addr // self.cache.block_size

    def page_of(self, addr: int) -> int:
        """Return the page number containing byte address ``addr``."""
        return addr // self.page_size

    def page_of_block(self, block: int) -> int:
        """Return the page number containing block number ``block``."""
        return (block * self.cache.block_size) // self.page_size
