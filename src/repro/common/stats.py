"""Statistics counters used by both machine models.

The paper's central metric is the number of inter-node messages, split into
messages *without* data (requests, acknowledgements, invalidations,
replacement notifications) and messages *with* data (miss replies,
writebacks).  :class:`MessageStats` accumulates those two counts plus a
breakdown by cause, so experiments can report the same columns as Tables 2
and 3.

The bus machine counts transactions instead of messages;
:class:`BusStats` accumulates per-transaction-kind counts, and the two bus
cost models of Section 4.3 are applied on top by
:mod:`repro.snooping.costmodels`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(slots=True)
class MessageStats:
    """Inter-node message counters for the directory machine."""

    short: int = 0
    data: int = 0
    by_cause_short: Counter = field(default_factory=Counter)
    by_cause_data: Counter = field(default_factory=Counter)

    def charge(self, cause: str, short: int, data: int) -> None:
        """Add ``short`` short messages and ``data`` data-carrying messages.

        Args:
            cause: a label such as ``"read_miss"`` or ``"eviction"`` used
                for the per-cause breakdown.
            short: number of messages that carry no data block.
            data: number of messages that carry a data block.
        """
        if short < 0 or data < 0:
            raise ValueError("message counts must be non-negative")
        self.short += short
        self.data += data
        if short:
            self.by_cause_short[cause] += short
        if data:
            self.by_cause_data[cause] += data

    @property
    def total(self) -> int:
        """All inter-node messages, short plus data-carrying."""
        return self.short + self.data

    def weighted_total(self, data_weight: float = 1.0) -> float:
        """Total cost when data messages cost ``data_weight`` units each."""
        return self.short + data_weight * self.data

    def byte_cost(self, block_size: int, unit_bytes: int = 16) -> float:
        """Cost model charging one unit per message plus one unit per
        ``unit_bytes`` bytes of data transmitted (Section 4.1)."""
        return self.total + self.data * (block_size / unit_bytes)

    def merged(self, other: "MessageStats") -> "MessageStats":
        """Return a new stats object summing self and ``other``."""
        out = MessageStats(short=self.short + other.short, data=self.data + other.data)
        out.by_cause_short = self.by_cause_short + other.by_cause_short
        out.by_cause_data = self.by_cause_data + other.by_cause_data
        return out

    def snapshot(self) -> tuple[int, int]:
        """Return ``(short, data)`` as a plain tuple."""
        return (self.short, self.data)


@dataclass(slots=True)
class CacheStats:
    """Per-machine cache event counters."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    upgrades: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0

    @property
    def accesses(self) -> int:
        """Total references observed."""
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def misses(self) -> int:
        """Total read plus write misses."""
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        """Fraction of references that missed (0.0 when no references)."""
        total = self.accesses
        return self.misses / total if total else 0.0


@dataclass(slots=True)
class BusStats:
    """Bus transaction counters for the snooping machine.

    Each field counts whole (split) bus transactions; the two cost models
    of Section 4.3 weight them differently.
    """

    read_miss: int = 0
    write_miss: int = 0
    invalidation: int = 0
    writeback: int = 0
    update: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, kind: str) -> None:
        """Count one bus transaction of the given kind."""
        if kind == "read_miss":
            self.read_miss += 1
        elif kind == "write_miss":
            self.write_miss += 1
        elif kind == "invalidation":
            self.invalidation += 1
        elif kind == "writeback":
            self.writeback += 1
        elif kind == "update":
            # Word-update broadcasts used by the write-update and
            # competitive hybrid protocols.
            self.update += 1
        else:
            raise ValueError(f"unknown bus transaction kind: {kind!r}")
        self.by_kind[kind] += 1

    @property
    def total(self) -> int:
        """Total number of bus transactions."""
        return (
            self.read_miss
            + self.write_miss
            + self.invalidation
            + self.writeback
            + self.update
        )
