"""Shared value types, configuration, statistics and errors."""

from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    TraceError,
    WorkloadError,
)
from repro.common.stats import BusStats, CacheStats, MessageStats
from repro.common.types import WORD_SIZE, Access, Op, read, write

__all__ = [
    "Access",
    "BusStats",
    "CacheConfig",
    "CacheStats",
    "ConfigError",
    "DeadlockError",
    "MachineConfig",
    "MessageStats",
    "Op",
    "ProtocolError",
    "ReproError",
    "TraceError",
    "WORD_SIZE",
    "WorkloadError",
    "read",
    "write",
]
