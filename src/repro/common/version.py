"""Shared ``--version`` plumbing for the console scripts.

All five CLIs (``repro-experiments``, ``repro-fuzz``, ``repro-stats``,
``repro-serve``, ``repro-verify``) — plus the service client and load
generator modules — report the same
version string: the installed package metadata when the distribution is
present (``pip install -e .``), falling back to the source tree's
``repro.__version__`` when running straight from a checkout
(``PYTHONPATH=src``), where no metadata exists.
"""

from __future__ import annotations

import argparse
from importlib import metadata

#: Distribution name as declared in setup.py.
DISTRIBUTION = "repro"


def package_version() -> str:
    """The version string the CLIs report."""
    try:
        return metadata.version(DISTRIBUTION)
    except metadata.PackageNotFoundError:
        import repro

        return getattr(repro, "__version__", "0.0.0+unknown")


def add_version_argument(parser: argparse.ArgumentParser) -> None:
    """Install the standard ``--version`` flag on a CLI parser."""
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {package_version()}",
        help="print the package version and exit",
    )
