"""Classification tracing: explain why a block was (or was not)
classified migratory.

Wraps :class:`~repro.directory.protocol.DirectoryProtocol` so every
classification-relevant event is recorded with its before/after state.
The result answers the debugging questions a protocol architect asks:
"when did this block get promoted?", "what reset the evidence streak?",
"why did the conservative protocol miss this block?".

Used by tooling and tests; ``explain_block`` renders one block's history
as human-readable lines (the library equivalent of
``examples/protocol_explorer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.types import Access, Op
from repro.directory.entry import DirState
from repro.directory.policy import AdaptivePolicy
from repro.directory.protocol import DirectoryProtocol


@dataclass(frozen=True, slots=True)
class ClassificationEvent:
    """One protocol event observed at the directory."""

    index: int  # running event number, per protocol instance
    block: int
    kind: str  # read_miss / write_miss / write_hit / uncached
    proc: int | None
    before: DirState
    after: DirState
    streak_after: int

    @property
    def promoted(self) -> bool:
        return not self.before.migratory and self.after.migratory

    @property
    def demoted(self) -> bool:
        return self.before.migratory and not self.after.migratory

    def describe(self) -> str:
        """One human-readable line."""
        actor = f"P{self.proc}" if self.proc is not None else "-"
        arrow = f"{self.before.value} -> {self.after.value}"
        note = ""
        if self.promoted:
            note = "  [classified migratory]"
        elif self.demoted:
            note = "  [declassified]"
        return (
            f"#{self.index:<5} {self.kind:<10} {actor:<4} {arrow}"
            f" (streak={self.streak_after}){note}"
        )


class TracingDirectoryProtocol(DirectoryProtocol):
    """A protocol that records every classification event."""

    def __init__(self, policy: AdaptivePolicy):
        super().__init__(policy)
        self.events: list[ClassificationEvent] = []

    def _record(self, block, kind, proc, before, run):
        result = run()
        ent = self.entry(block)
        self.events.append(
            ClassificationEvent(
                index=len(self.events),
                block=block,
                kind=kind,
                proc=proc,
                before=before,
                after=ent.state,
                streak_after=ent.streak,
            )
        )
        return result

    def read_miss(self, block, proc, dirty):
        before = self.entry(block).state
        return self._record(
            block, "read_miss", proc, before,
            lambda: super(TracingDirectoryProtocol, self).read_miss(
                block, proc, dirty
            ),
        )

    def write_miss(self, block, proc, dirty):
        before = self.entry(block).state
        return self._record(
            block, "write_miss", proc, before,
            lambda: super(TracingDirectoryProtocol, self).write_miss(
                block, proc, dirty
            ),
        )

    def write_hit(self, block, proc, sole_copy):
        before = self.entry(block).state
        return self._record(
            block, "write_hit", proc, before,
            lambda: super(TracingDirectoryProtocol, self).write_hit(
                block, proc, sole_copy
            ),
        )

    def note_uncached(self, block):
        before = self.entry(block).state
        return self._record(
            block, "uncached", None, before,
            lambda: super(TracingDirectoryProtocol, self).note_uncached(block),
        )

    def events_for(self, block: int) -> list[ClassificationEvent]:
        """All recorded events for one block, in order."""
        return [e for e in self.events if e.block == block]


def trace_classification(
    trace: Iterable[Access],
    policy: AdaptivePolicy,
    config=None,
    placement=None,
):
    """Run a trace with classification tracing enabled.

    Returns:
        ``(machine, tracing_protocol)`` — the machine has processed the
        whole trace; the protocol holds the event log.
    """
    from repro.common.config import MachineConfig
    from repro.system.machine import DirectoryMachine

    machine = DirectoryMachine(
        config or MachineConfig(), policy, placement
    )
    tracer = TracingDirectoryProtocol(policy)
    machine.protocol = tracer  # swap in before any access is processed
    machine.run(trace)
    return machine, tracer


def explain_block(
    tracer: TracingDirectoryProtocol, block: int
) -> list[str]:
    """Human-readable classification history of one block."""
    events = tracer.events_for(block)
    if not events:
        return [f"block {block}: never touched the directory"]
    lines = [f"block {block}: {len(events)} directory events"]
    lines.extend(event.describe() for event in events)
    promotions = sum(1 for e in events if e.promoted)
    demotions = sum(1 for e in events if e.demoted)
    lines.append(
        f"summary: {promotions} promotion(s), {demotions} demotion(s), "
        f"final state {events[-1].after.value}"
    )
    return lines
