"""Directory-based coherence: entries, policies, and the adaptive protocol."""

from repro.directory.entry import DirectoryEntry, DirState
from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    PAPER_POLICIES,
    STENSTROM,
    AdaptivePolicy,
    policy_by_name,
)
from repro.directory.protocol import DirectoryProtocol
from repro.directory.tracing import (
    ClassificationEvent,
    TracingDirectoryProtocol,
    explain_block,
    trace_classification,
)
from repro.directory.representation import (
    DirectoryRepresentation,
    FullMapDirectory,
    LimitedPointerDirectory,
)

__all__ = [
    "AGGRESSIVE",
    "AdaptivePolicy",
    "ClassificationEvent",
    "BASIC",
    "CONSERVATIVE",
    "CONVENTIONAL",
    "DirState",
    "DirectoryEntry",
    "DirectoryProtocol",
    "DirectoryRepresentation",
    "FullMapDirectory",
    "LimitedPointerDirectory",
    "PAPER_POLICIES",
    "STENSTROM",
    "TracingDirectoryProtocol",
    "explain_block",
    "policy_by_name",
    "trace_classification",
]
