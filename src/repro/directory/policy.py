"""The adaptive protocol family (Section 2 and Section 4.1).

A policy point fixes the three axes the paper identifies:

1. **Hysteresis** — how many successive migratory-evidence events are
   required before a block is classified migratory
   (``migratory_threshold``).  The *conservative* protocol requires two
   (the ``one migration`` flag of Figure 3); *basic* and *aggressive*
   require one.  ``None`` disables adaptation entirely (the conventional
   protocol).
2. **Initial classification** — whether a never-seen (or forgotten) block
   starts migratory (``initial_migratory``); only the *aggressive*
   protocol does.
3. **Memory across uncached intervals** — whether the classification
   (and the last-invalidator/hysteresis machinery) survives the block
   becoming uncached (``remember_uncached``).  The paper's directory
   protocols remember; the snooping protocol structurally cannot, and
   an ablation covers forgetting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class AdaptivePolicy:
    """One member of the adaptive-protocol family.

    Attributes:
        name: display label used in experiment tables.
        migratory_threshold: successive evidence events needed to classify
            a block migratory; ``None`` means never (conventional).
        initial_migratory: classification assumed for blocks with no
            history.
        remember_uncached: keep classification state while uncached.
        demote_on_migratory_write_miss: also reclassify on *any* write
            miss to a migratory block, as the contemporaneous Stenström
            et al. protocol does (Cox & Fowler only demote when the
            migratory copy is found clean).  Section 5 notes the two
            rules behave consistently because there is very little
            dynamic reclassification in the SPLASH programs.
    """

    name: str
    migratory_threshold: int | None = 1
    initial_migratory: bool = False
    remember_uncached: bool = True
    demote_on_migratory_write_miss: bool = False

    def __post_init__(self) -> None:
        if self.migratory_threshold is not None and self.migratory_threshold < 1:
            raise ConfigError("migratory_threshold must be >= 1 or None")
        if self.migratory_threshold is None and self.initial_migratory:
            raise ConfigError(
                "a non-adaptive policy cannot start blocks as migratory"
            )

    @property
    def adaptive(self) -> bool:
        """True when the policy ever classifies blocks as migratory."""
        return self.migratory_threshold is not None or self.initial_migratory


#: The conventional replicate-on-read-miss protocol (no adaptation).
CONVENTIONAL = AdaptivePolicy(
    "conventional", migratory_threshold=None, initial_migratory=False
)

#: Starts non-migratory; needs two successive events to classify (Fig. 3).
CONSERVATIVE = AdaptivePolicy("conservative", migratory_threshold=2)

#: Starts non-migratory; classifies after a single event.
BASIC = AdaptivePolicy("basic", migratory_threshold=1)

#: Starts migratory; reclassifies after a single event.
AGGRESSIVE = AdaptivePolicy(
    "aggressive", migratory_threshold=1, initial_migratory=True
)

#: The Stenström/Brorsson/Sandberg adaptive protocol (ISCA '93, same
#: conference): identical shift-in rule, but also shifts out of
#: migratory mode on any write miss to a migratory block.
STENSTROM = AdaptivePolicy(
    "stenstrom", migratory_threshold=1, demote_on_migratory_write_miss=True
)

#: The four protocols evaluated in Tables 2 and 3, in the paper's order.
PAPER_POLICIES = (CONVENTIONAL, CONSERVATIVE, BASIC, AGGRESSIVE)


def policy_by_name(name: str) -> AdaptivePolicy:
    """Look up one of the paper's named policies."""
    for policy in PAPER_POLICIES:
        if policy.name == name:
            return policy
    raise ConfigError(f"unknown policy name: {name!r}")
