"""Directory representations: full-map and limited-pointer schemes.

The paper's machine model assumes a directory that can name every
sharer.  Real CC-NUMA designs of the era economised: DASH-class machines
and the LimitLESS work the paper cites use *limited pointer* directories
that track only ``i`` sharers exactly.  Two classic overflow policies:

* **Dir_iB (broadcast)** — on overflow the directory stops tracking
  identities; a later invalidation must broadcast to every node (and
  collect an acknowledgement from each).
* **Dir_iNB (no broadcast)** — the directory *never* overflows: adding
  an (i+1)-th sharer forcibly invalidates one existing copy to free a
  pointer.

Both interact interestingly with migratory detection: migratory blocks
live on a single pointer and never overflow, while read-shared blocks
bear the overflow costs — so limited directories *increase* the relative
value of handling migratory data well.

The representation layer only affects message *costs* and forced
invalidations; the simulator's ground-truth copy set stays exact.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.directory.entry import DirectoryEntry


class DirectoryRepresentation:
    """Cost/behaviour model of the directory's sharer-tracking scheme."""

    name = "abstract"

    def on_sharer_added(
        self, entry: DirectoryEntry, node: int
    ) -> int | None:
        """React to a new sharer.

        Returns:
            A node whose copy must be forcibly invalidated to make room
            (Dir_iNB), or None.
        """
        return None

    def invalidation_targets(
        self, entry: DirectoryEntry, writer: int, home: int, num_procs: int
    ) -> int:
        """``||DistantCopies||`` to charge for an invalidation burst."""
        return len(entry.copyset - {writer, home})

    def on_exclusive(self, entry: DirectoryEntry) -> None:
        """The block became exclusively held (or uncached)."""


class FullMapDirectory(DirectoryRepresentation):
    """One presence bit per node: always exact (the paper's model)."""

    name = "full-map"


class LimitedPointerDirectory(DirectoryRepresentation):
    """``i`` sharer pointers with broadcast or forced-eviction overflow.

    Args:
        pointers: number of exact sharer pointers (``i``).
        broadcast: True for Dir_iB (broadcast on overflow), False for
            Dir_iNB (invalidate a copy to free a pointer).
    """

    def __init__(self, pointers: int, broadcast: bool = True):
        if pointers < 1:
            raise ConfigError("a limited directory needs at least 1 pointer")
        self.pointers = pointers
        self.broadcast = broadcast
        kind = "B" if broadcast else "NB"
        self.name = f"dir{pointers}{kind}"

    def on_sharer_added(self, entry, node):
        if len(entry.copyset) <= self.pointers:
            return None
        if self.broadcast:
            entry.overflowed = True
            return None
        # Dir_iNB: evict some other sharer's copy to stay exact.
        for victim in sorted(entry.copyset):
            if victim != node:
                return victim
        return None

    def invalidation_targets(self, entry, writer, home, num_procs):
        if self.broadcast and entry.overflowed:
            # Identities lost: invalidate (and await acks from) everyone
            # except the writer; the home node invalidates locally.
            return num_procs - len({writer, home})
        return len(entry.copyset - {writer, home})

    def on_exclusive(self, entry):
        entry.overflowed = False
