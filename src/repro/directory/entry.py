"""Directory entries for the CC-NUMA machine.

Following Figure 3, the directory state of a block encodes *how many copies
have been created since the block was last held exclusively* — not how many
currently exist — together with the migratory classification.  This choice
keeps a block from being misclassified as migratory merely because a third
copy was silently dropped from some cache.

The entry also records the *copy set* (the nodes currently believed to hold
a copy; exact when replacement notifications are enabled), the identity of
the last invalidator, and the evidence streak that implements hysteresis
(the ``one migration`` flag of the pseudo-code generalises to a counter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DirState(enum.Enum):
    """Directory copies-created state (Figure 3)."""

    UNCACHED = "uncached"
    UNCACHED_MIG = "uncached/migratory"
    ONE_COPY = "one copy"
    ONE_COPY_MIG = "one copy/migratory"
    TWO_COPIES = "two copies"
    THREE_PLUS = "three or more copies"

    @property
    def migratory(self) -> bool:
        """True for the migratory-classified states."""
        return self in (DirState.UNCACHED_MIG, DirState.ONE_COPY_MIG)

    @property
    def cached(self) -> bool:
        """True when at least one copy is believed cached."""
        return self not in (DirState.UNCACHED, DirState.UNCACHED_MIG)


@dataclass(slots=True)
class DirectoryEntry:
    """Per-block directory record.

    Attributes:
        state: copies-created + classification state.
        copyset: nodes believed to hold a valid copy.
        last_invalidator: node that most recently obtained exclusive
            (write) access, or None.
        streak: consecutive migratory-evidence events observed; compared
            against the policy's ``migratory_threshold``.
        overflowed: sharer identities lost (limited-pointer broadcast
            directories only; see
            :mod:`repro.directory.representation`).
    """

    state: DirState = DirState.UNCACHED
    copyset: set[int] = field(default_factory=set)
    last_invalidator: int | None = None
    streak: int = 0
    overflowed: bool = False

    @property
    def migratory(self) -> bool:
        """True when the block is currently classified migratory."""
        return self.state.migratory
