"""Directory-based adaptive coherence protocol (Figure 3).

:class:`DirectoryProtocol` implements the classification state machine of
the paper's pseudo-code, generalised over the policy axes of
:class:`repro.directory.policy.AdaptivePolicy`.  It is deliberately free of
message accounting and cache bookkeeping: it answers *policy questions*
("should this read miss migrate or replicate the block?", "how does this
write change the classification?") while
:class:`repro.system.machine.DirectoryMachine` owns caches, copysets, and
cost charging.

Fidelity notes (documented deviations from the literal pseudo-code):

* ``one migration`` generalises to an evidence ``streak`` counter so that
  hysteresis depths other than two can be studied; threshold 2 reproduces
  the flag exactly and threshold 1 reproduces the basic/aggressive single
  event behaviour.
* The pseudo-code's write-miss handler would demote an
  ``UNCACHED/MIGRATORY`` block to ``ONE COPY`` (its final ``else`` arm).
  A write miss is fully consistent with migratory use (a visit may write
  first), and the paper's conclusions emphasise remembering
  classifications across uncached intervals, so we keep the block
  migratory there.  This matches the aggressive protocol the conclusions
  recommend.
* In the evidence branches that the pseudo-code leaves without an explicit
  state assignment, the invalidation itself forces the block to a single
  copy, so ``state`` becomes ``ONE COPY`` (or ``ONE COPY/MIGRATORY`` on
  promotion).
* The pseudo-code's read-miss handler appears to reset ``one migration``
  on *every* replicating read miss.  Read literally, the conservative
  protocol could then never classify read-then-write migratory data: the
  two successive write-hit evidence events always have a read miss between
  them ("migrate twice ... before it is classified"), which would wipe the
  flag.  That contradicts Table 2, where the conservative protocol saves
  39-46 % on MP3D/Water/Cholesky.  We therefore reset the evidence streak
  only where the pseudo-code's ``ONE COPY/MIGRATORY`` demotion case does
  (a migratory block found clean) and on non-evidence writes.
"""

from __future__ import annotations

from collections import Counter

from repro.directory.entry import DirectoryEntry, DirState
from repro.directory.policy import AdaptivePolicy


class DirectoryProtocol:
    """Classification engine for one machine run.

    Entries are created lazily; a block with no entry behaves as
    ``UNCACHED`` (or ``UNCACHED/MIGRATORY`` under an initially-migratory
    policy).

    ``transitions`` aggregates classification activity across the run:
    ``promote`` (the migratory bit turned on), ``demote`` (it turned
    off), ``evidence`` (the hysteresis streak advanced without reaching
    the threshold), and ``forget`` (a forgetting policy's eviction reset
    flipped the bit outside any access).  Promote/demote/evidence bumps
    happen only inside the miss/upgrade handlers — steps where the
    machine fires its ``step_hook`` for the same block — so for the
    remembering policies they match, one for one, the classification
    events a :class:`repro.telemetry.recorder.DirectoryRecorder` emits.
    """

    __slots__ = ("policy", "_entries", "transitions")

    def __init__(self, policy: AdaptivePolicy):
        self.policy = policy
        self._entries: dict[int, DirectoryEntry] = {}
        self.transitions: Counter = Counter()

    @property
    def entries(self) -> dict[int, DirectoryEntry]:
        """All directory entries created so far (read-only use expected)."""
        return self._entries

    def entry(self, block: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for ``block``."""
        ent = self._entries.get(block)
        if ent is None:
            ent = DirectoryEntry(state=self._initial_state())
            self._entries[block] = ent
        return ent

    def peek(self, block: int) -> DirectoryEntry | None:
        """Return the entry for ``block`` without creating one."""
        return self._entries.get(block)

    def is_migratory(self, block: int) -> bool:
        """Whether ``block`` is currently classified migratory."""
        ent = self._entries.get(block)
        if ent is None:
            return self.policy.initial_migratory
        return ent.migratory

    def _initial_state(self) -> DirState:
        if self.policy.initial_migratory:
            return DirState.UNCACHED_MIG
        return DirState.UNCACHED

    def _record_evidence(self, ent: DirectoryEntry) -> bool:
        """Count one migratory-evidence event; True when it promotes."""
        threshold = self.policy.migratory_threshold
        if threshold is None:
            return False
        ent.streak += 1
        if ent.streak >= threshold:
            # Every caller applies the promotion when we return True.
            self.transitions["promote"] += 1
            return True
        self.transitions["evidence"] += 1
        return False

    # ------------------------------------------------------------------
    # Event handlers (one per pseudo-code fragment in Figure 3)
    # ------------------------------------------------------------------

    def read_miss(self, block: int, proc: int, dirty: bool) -> bool:
        """Handle a read miss by ``proc``; returns True to migrate.

        Args:
            dirty: whether the block is currently modified in the (single)
                holder's cache; meaningful only for the one-copy states.
                The real hardware discovers this when the request is
                forwarded to the owner.
        """
        ent = self.entry(block)
        state = ent.state
        if state is DirState.UNCACHED:
            ent.state = DirState.ONE_COPY
        elif state is DirState.UNCACHED_MIG:
            ent.state = DirState.ONE_COPY_MIG
        elif state is DirState.ONE_COPY:
            ent.state = DirState.TWO_COPIES
        elif state is DirState.ONE_COPY_MIG:
            if not dirty:
                # Migrated but never written: counter-evidence; demote.
                ent.state = DirState.TWO_COPIES
                ent.streak = 0
                self.transitions["demote"] += 1
        elif state is DirState.TWO_COPIES:
            ent.state = DirState.THREE_PLUS
        # THREE_PLUS stays THREE_PLUS.
        return ent.state is DirState.ONE_COPY_MIG

    def write_miss(self, block: int, proc: int, dirty: bool) -> None:
        """Handle a write miss by ``proc`` (invalidates all other copies).

        After this event the block is exclusively dirty at ``proc``; the
        machine performs the invalidations and cache fills.
        """
        ent = self.entry(block)
        state = ent.state
        if state is DirState.ONE_COPY_MIG:
            if not dirty or self.policy.demote_on_migratory_write_miss:
                # Demote: the copy was never written (Cox & Fowler), or
                # the policy treats any write miss to a migratory block
                # as counter-evidence (Stenström et al.).
                ent.state = DirState.ONE_COPY
                ent.streak = 0
                self.transitions["demote"] += 1
        elif state is DirState.UNCACHED_MIG:
            # Deviation (see module docstring): stay migratory.
            ent.state = DirState.ONE_COPY_MIG
        elif state is DirState.ONE_COPY and ent.last_invalidator != proc:
            # Write miss to a single-copy block: migratory evidence.
            if self._record_evidence(ent):
                ent.state = DirState.ONE_COPY_MIG
        else:
            ent.state = DirState.ONE_COPY
            ent.streak = 0
        ent.last_invalidator = proc

    def write_hit(self, block: int, proc: int, sole_copy: bool) -> None:
        """Handle a write hit to a clean block held (at least) by ``proc``.

        Args:
            sole_copy: True when ``proc`` holds the only cached copy (the
                pseudo-code's "write hit on a clean, exclusively-held
                block"); False when other copies must be invalidated.
        """
        ent = self.entry(block)
        if sole_copy:
            if ent.state is DirState.ONE_COPY and ent.last_invalidator != proc:
                if self._record_evidence(ent):
                    ent.state = DirState.ONE_COPY_MIG
        elif ent.state is DirState.TWO_COPIES and ent.last_invalidator != proc:
            # The classic detection: the newer of exactly two copies
            # writes, invalidating the older.
            if self._record_evidence(ent):
                ent.state = DirState.ONE_COPY_MIG
            else:
                ent.state = DirState.ONE_COPY
        else:
            ent.state = DirState.ONE_COPY
            ent.streak = 0
        ent.last_invalidator = proc

    def note_uncached(self, block: int) -> None:
        """Record that the last cached copy of ``block`` was dropped."""
        ent = self.entry(block)
        if not self.policy.remember_uncached:
            # Forget everything, as a snooping protocol must.  A reset
            # that flips the migratory bit happens during some *other*
            # block's step, so it is tallied separately from the
            # promote/demote transitions the step hook can observe.
            fresh = DirectoryEntry(state=self._initial_state())
            if ent.migratory != fresh.migratory:
                self.transitions["forget"] += 1
            self._entries[block] = fresh
            return
        if ent.state is DirState.ONE_COPY_MIG:
            ent.state = DirState.UNCACHED_MIG
        elif ent.state is not DirState.UNCACHED_MIG:
            ent.state = DirState.UNCACHED
