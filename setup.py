"""Setuptools entry point.

A classic setup.py is used (rather than a PEP 517 build-system table in
pyproject.toml) so that ``pip install -e .`` works in offline environments
without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Cox & Fowler, 'Adaptive Cache Coherency for "
        "Detecting Migratory Shared Data' (ISCA 1993)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
            "repro-fuzz=repro.conformance.cli:main",
            "repro-stats=repro.telemetry.cli:main",
            "repro-serve=repro.service.cli:main",
            "repro-cluster=repro.service.cluster:main",
            "repro-verify=repro.verification.cli:main",
        ]
    },
)
