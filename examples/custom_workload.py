#!/usr/bin/env python3
"""Write your own parallel program against the workload engine.

Implements a small pipelined image-filter-style program (stage queues
hand tiles between processor groups), traces it, classifies its sharing
patterns off-line, and measures how much the adaptive protocols help —
the full user journey for studying a new workload with this library.

Run:  python examples/custom_workload.py
"""

from repro import CacheConfig, DirectoryMachine, MachineConfig
from repro.analysis import SharingPattern, summarize_sharing
from repro.directory import PAPER_POLICIES
from repro.system import make_placement
from repro.workloads import (
    BarrierWait,
    Engine,
    Heap,
    ReadEffect,
    SharedTaskQueue,
    WriteEffect,
)

NUM_PROCS = 8
TILES = 48
TILE_WORDS = 16
STAGES = 3


def build_pipeline_trace(seed: int = 0):
    """A three-stage pipeline: each stage RMWs a tile then passes it on.

    Tiles migrate from stage to stage (processor group to processor
    group) — a textbook migratory pattern the adaptive protocols should
    detect — while a read-shared filter-coefficient table is consulted by
    every stage.
    """
    heap = Heap()
    tiles = [heap.alloc_words(TILE_WORDS) for _ in range(TILES)]
    coefficients = heap.alloc_words(32)
    queues = [
        SharedTaskQueue(heap, f"stage-{s}", capacity=TILES + 1)
        for s in range(STAGES)
    ]
    queues[0].preload(range(TILES))
    done = [0]  # tiles fully processed (Python-side bookkeeping)

    def worker(proc: int):
        stage = proc % STAGES
        my_queue = queues[stage]
        next_queue = queues[stage + 1] if stage + 1 < STAGES else None
        while done[0] < TILES:
            tile = yield from my_queue.pop()
            if tile is None:
                # Nothing to do yet; poll the queue head.
                yield ReadEffect(my_queue.head_addr)
                continue
            # Consult the read-shared coefficient table.
            for w in range(4):
                yield ReadEffect(coefficients + ((tile + w) % 32) * 4)
            # Read-modify-write the tile (the migratory payload).
            base = tiles[tile]
            for w in range(TILE_WORDS):
                yield ReadEffect(base + w * 4)
            for w in range(TILE_WORDS):
                yield WriteEffect(base + w * 4)
            if next_queue is not None:
                yield from next_queue.push(tile)
            else:
                done[0] += 1

    engine = Engine(NUM_PROCS, seed=seed, max_quantum=4)
    for proc in range(NUM_PROCS):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "pipeline"
    return trace


def main() -> None:
    trace = build_pipeline_trace()
    print(f"pipeline trace: {len(trace)} references, "
          f"{trace.footprint_bytes()} bytes shared\n")

    summary = summarize_sharing(trace, block_size=16)
    print("off-line sharing census (by block):")
    for pattern in SharingPattern:
        share = 100 * summary.block_fraction(pattern)
        if share:
            print(f"  {pattern.value:<18} {share:5.1f}%")

    config = MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=64 * 1024, block_size=16),
    )
    placement = make_placement("best_static", config, trace)
    print("\nprotocol comparison (directory machine):")
    baseline = None
    for policy in PAPER_POLICIES:
        machine = DirectoryMachine(config, policy, placement)
        stats = machine.run(trace)
        if baseline is None:
            baseline = stats.total
        saving = 100.0 * (baseline - stats.total) / baseline
        print(f"  {policy.name:<13} total={stats.total:6d}  "
              f"saving={saving:5.1f}%")


if __name__ == "__main__":
    main()
