#!/usr/bin/env python3
"""Protocol explorer: watch the directory classify a block step by step.

Replays hand-written access scenarios through the adaptive directory
machine and prints, after every reference, the directory state, the
copy set, and the cumulative message count — the same walk-through as the
paper's Section 2 narrative ("the block is dirty in P_i's cache ...").

Run:  python examples/protocol_explorer.py
"""

from repro import CacheConfig, DirectoryMachine, MachineConfig
from repro.directory import BASIC, CONSERVATIVE
from repro.system.machine import CState

BLOCK = 0


def show(machine: DirectoryMachine, label: str) -> None:
    ent = machine.protocol.entry(BLOCK)
    holders = []
    for node in range(machine.config.num_procs):
        line = machine.caches[node].lookup(BLOCK)
        if line is not None:
            tag = "E" if line.state is CState.EXCL else "S"
            if line.dirty:
                tag += "+dirty"
            holders.append(f"P{node}:{tag}")
    stats = machine.stats
    print(f"  {label:<24} dir={ent.state.value:<22} "
          f"copies=[{', '.join(holders) or 'none'}]  "
          f"msgs(short={stats.short}, data={stats.data})")


def scenario(title: str, policy, steps) -> None:
    print(f"\n=== {title} (policy: {policy.name}) ===")
    config = MachineConfig(
        num_procs=4, cache=CacheConfig(size_bytes=None, block_size=16)
    )
    machine = DirectoryMachine(config, policy, check=True)
    for proc, op, label in steps:
        machine.access(proc, op == "W", BLOCK * 16)
        show(machine, f"P{proc} {op}: {label}")


def main() -> None:
    migratory_steps = [
        (1, "W", "first writer"),
        (2, "R", "replicate (2 copies)"),
        (2, "W", "newer copy writes: evidence!"),
        (3, "R", "migrates with write permission"),
        (3, "W", "silent write (no messages)"),
        (1, "R", "migrates again"),
        (1, "W", "silent write"),
    ]
    scenario("Migratory detection", BASIC, migratory_steps)
    scenario("Migratory detection with hysteresis", CONSERVATIVE,
             migratory_steps)

    scenario(
        "Read-shared data is left alone",
        BASIC,
        [
            (0, "W", "initialised once"),
            (1, "R", "reader 1 (2 copies)"),
            (2, "R", "reader 2 (3 copies)"),
            (3, "R", "reader 3"),
            (1, "R", "hits locally, free"),
        ],
    )

    scenario(
        "Demotion: a migratory block that stops migrating",
        BASIC,
        [
            (1, "W", "writer"),
            (2, "R", "replicate"),
            (2, "W", "evidence: classified migratory"),
            (3, "R", "migrates (exclusive, clean)"),
            (0, "R", "still clean: demoted, replicated"),
            (1, "R", "plain shared copy"),
        ],
    )


if __name__ == "__main__":
    main()
