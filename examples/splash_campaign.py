#!/usr/bin/env python3
"""Full reproduction campaign: every table and figure from the paper.

Equivalent to ``repro-experiments all`` but importable/scriptable.  At the
default scale this takes a few minutes of pure-Python simulation; pass a
smaller ``--scale`` for a quick pass.

Run:  python examples/splash_campaign.py [--scale 0.5] [--out results.txt]
"""

import argparse
import sys
import time

from repro.experiments.runner import COMMANDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep experiments")
    args = parser.parse_args(argv)

    sections = []
    for name, command in COMMANDS.items():
        started = time.time()
        body = command(args)
        elapsed = time.time() - started
        header = f"==== {name} (scale={args.scale}, {elapsed:.1f}s) ===="
        sections.append(f"{header}\n{body}\n")
        print(sections[-1])
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(sections))
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
