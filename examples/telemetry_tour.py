#!/usr/bin/env python3
"""Telemetry tour: record a run, then read its story back from the log.

Attaches a telemetry recorder to the CC-NUMA directory machine, replays
a mixed migratory + read-shared workload, and then reconstructs — from
the JSONL event log alone — what the adaptive protocol learned: the
transition totals, each hot block's classification timeline, and the
final migratory set.  The metrics registry is dumped in Prometheus text
format alongside the log.

Run:  python examples/telemetry_tour.py [--out DIR]
"""

import argparse
import tempfile
from pathlib import Path

from repro import BASIC, CacheConfig, DirectoryMachine, MachineConfig
from repro.telemetry import (
    JsonlSink,
    MetricsRegistry,
    attach_recorder,
    build_timelines,
    classification_counts,
    hot_block_table,
    migratory_blocks,
    read_jsonl,
    render_timelines,
    write_prometheus,
)
from repro.trace import synth


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for events.jsonl + metrics.prom "
                        "(default: a fresh temporary directory)")
    args = parser.parse_args()
    out = args.out or Path(tempfile.mkdtemp(prefix="repro-telemetry-"))

    # Eight migratory records passed around 16 processors, interleaved
    # with a read-shared table the protocol must leave alone.
    trace = synth.interleave(
        [synth.migratory(num_procs=16, num_objects=8, visits=60, seed=7),
         synth.read_shared(num_procs=16, num_objects=8, rounds=12,
                           base=1 << 20, seed=8)],
        chunk=8, seed=9,
    )
    config = MachineConfig(
        num_procs=16, cache=CacheConfig(size_bytes=64 * 1024, block_size=16)
    )

    # -- record -----------------------------------------------------------
    machine = DirectoryMachine(config, BASIC)
    registry = MetricsRegistry()
    log = out / "events.jsonl"
    with JsonlSink(log) as sink:
        recorder = attach_recorder(machine, registry=registry, sink=sink)
        machine.run(trace)
    write_prometheus(registry, out / "metrics.prom")
    print(f"replayed {len(trace)} accesses; recorded {recorder.steps} "
          f"protocol-visible steps\n  events  -> {log}\n"
          f"  metrics -> {out / 'metrics.prom'}\n")

    # -- read the story back, from the log alone --------------------------
    records = list(read_jsonl(log))
    counts = classification_counts(records)
    engine = recorder.engine
    print(f"classification transitions seen by {engine}:")
    for direction in ("promote", "demote", "evidence"):
        print(f"  {direction:<9} {counts.get((engine, direction), 0):4d}")

    timelines = build_timelines(records)
    print("\nper-block classification timelines (5 most active):")
    print(render_timelines(timelines, top=5))

    print("\nhot blocks by coherence traffic:")
    print(hot_block_table(records, top=5))

    rebuilt = migratory_blocks(timelines, engine)
    actual = {b for b, e in machine.protocol.entries.items() if e.migratory}
    assert rebuilt == actual, "event log must reproduce the migratory set"
    print(f"\nthe log pins down all {len(rebuilt)} migratory blocks — "
          f"identical to the directory's own end-of-run state")
    print(f"\ninspect it yourself:  repro-stats timeline {log}")


if __name__ == "__main__":
    main()
