#!/usr/bin/env python3
"""False-sharing study: what block size does to migratory detection.

Builds the same logical workload twice — per-processor counters packed
densely into shared blocks versus padded to one block each — and shows:

1. packed records ping-pong and inflate traffic at every protocol;
2. the adaptive protocol still helps (the ping-pong *is* migration at
   block granularity), but padding helps far more;
3. the off-line classifier sees the packed variant's blocks as
   migratory/other rather than private — the Table 3 effect in miniature.

Run:  python examples/false_sharing_study.py
"""

from repro import CacheConfig, DirectoryMachine, MachineConfig
from repro.analysis import SharingPattern, summarize_sharing
from repro.directory import BASIC, CONVENTIONAL
from repro.workloads import Engine, Heap, ReadEffect, WriteEffect

NUM_PROCS = 8
UPDATES = 200
BLOCK = 64


def build_trace(padded: bool, seed: int = 0):
    """Each processor repeatedly read-modify-writes its own counter."""
    heap = Heap()
    if padded:
        slots = [heap.alloc(4, align=BLOCK) for _ in range(NUM_PROCS)]
    else:
        slots = [heap.alloc(4) for _ in range(NUM_PROCS)]

    def worker(proc):
        addr = slots[proc]
        for _ in range(UPDATES):
            yield ReadEffect(addr)
            yield WriteEffect(addr)

    engine = Engine(NUM_PROCS, seed=seed, max_quantum=2)
    for proc in range(NUM_PROCS):
        engine.spawn(proc, worker(proc))
    trace = engine.run()
    trace.name = "padded" if padded else "packed"
    return trace


def measure(trace):
    config = MachineConfig(
        num_procs=NUM_PROCS,
        cache=CacheConfig(size_bytes=None, block_size=BLOCK),
    )
    out = {}
    for policy in (CONVENTIONAL, BASIC):
        machine = DirectoryMachine(config, policy)
        machine.run(trace)
        out[policy.name] = machine.stats.total
    return out


def main() -> None:
    for padded in (False, True):
        trace = build_trace(padded)
        totals = measure(trace)
        summary = summarize_sharing(trace, BLOCK)
        private = 100 * summary.block_fraction(SharingPattern.PRIVATE)
        layout = "padded (one counter per block)" if padded else (
            "packed (eight counters per block)"
        )
        saving = 100 * (1 - totals["basic"] / totals["conventional"]) if (
            totals["conventional"]
        ) else 0.0
        print(f"{layout}:")
        print(f"  blocks classified private : {private:5.1f}%")
        print(f"  conventional messages     : {totals['conventional']:6d}")
        print(f"  basic adaptive messages   : {totals['basic']:6d} "
              f"({saving:.1f}% saved)")
        print()
    print("padding removes the traffic entirely; the adaptive protocol")
    print("only halves the ping-pong it cannot remove — fix layout first,")
    print("then let the protocol handle the truly migratory data.")


if __name__ == "__main__":
    main()
