#!/usr/bin/env python3
"""Quickstart: detect migratory data and halve its coherence traffic.

Builds a lock-protected-counter style migratory workload, then runs it
through the CC-NUMA directory machine under the paper's four protocols
and through the bus-based snooping machine under MESI and the adaptive
extension.  The adaptive protocols should approach the theoretical 50 %
message reduction.

Run:  python examples/quickstart.py
"""

from repro import (
    BASIC,
    CONVENTIONAL,
    PAPER_POLICIES,
    AdaptiveSnoopingProtocol,
    BusMachine,
    CacheConfig,
    DirectoryMachine,
    MachineConfig,
    MesiProtocol,
)
from repro.snooping import model1_cost, percent_reduction
from repro.trace import synth


def main() -> None:
    # A shared datum that migrates: 16 processors take turns
    # read-modifying-writing eight lock-protected records.
    trace = synth.migratory(
        num_procs=16, num_objects=8, visits=200,
        reads_per_visit=2, writes_per_visit=2, seed=42,
    )
    print(f"workload: {len(trace)} shared references, "
          f"{trace.footprint_bytes()} bytes of shared data\n")

    config = MachineConfig(
        num_procs=16, cache=CacheConfig(size_bytes=64 * 1024, block_size=16)
    )

    print("CC-NUMA directory machine (inter-node messages):")
    baseline = None
    for policy in PAPER_POLICIES:
        machine = DirectoryMachine(config, policy)
        stats = machine.run(trace)
        if baseline is None:
            baseline = stats.total
        saving = 100.0 * (baseline - stats.total) / baseline
        print(f"  {policy.name:<13} short={stats.short:6d}  "
              f"data={stats.data:6d}  total={stats.total:6d}  "
              f"saving={saving:5.1f}%")

    print("\nBus-based snooping machine (bus transactions, cost model 1):")
    mesi = BusMachine(config, MesiProtocol())
    mesi_stats = mesi.run(trace)
    adaptive = BusMachine(config, AdaptiveSnoopingProtocol())
    adaptive_stats = adaptive.run(trace)
    saving = percent_reduction(
        model1_cost(mesi_stats), model1_cost(adaptive_stats)
    )
    print(f"  mesi         transactions={mesi_stats.total:6d}")
    print(f"  adaptive     transactions={adaptive_stats.total:6d}  "
          f"saving={saving:5.1f}%")

    # Inspect what the directory learned.
    machine = DirectoryMachine(config, BASIC)
    machine.run(trace)
    migratory = sum(
        1 for ent in machine.protocol.entries.values() if ent.migratory
    )
    print(f"\nthe basic protocol classified {migratory} of "
          f"{len(machine.protocol.entries)} blocks as migratory")


if __name__ == "__main__":
    main()
