#!/usr/bin/env python3
"""Latency study: adaptive coherence vs latency *tolerance* techniques.

Runs one application (MP3D analogue) through the three timing models —
closed-form, oracle-prefetched, and event-driven with controller
contention — under the conventional and basic adaptive protocols, and
prints the execution-time story the paper's related-work section tells:

* the adaptive protocol *removes* traffic (helps everywhere, no software
  support needed);
* prefetching *hides* latency (helps more, needs compiler support,
  leaves the traffic in place);
* under contention, removed traffic compounds: queueing relief makes
  even unrelated misses faster.

Run:  python examples/latency_tolerance_study.py [--app mp3d] [--scale 0.5]
"""

import argparse

from repro.analysis.oracle import read_exclusive_hints
from repro.directory import BASIC, CONVENTIONAL
from repro.experiments import common
from repro.system.machine import DirectoryMachine
from repro.timing import (
    EventDrivenSimulator,
    PrefetchingTimingSimulator,
    TimingSimulator,
)


def machine(policy, config, placement):
    return DirectoryMachine(config, policy, placement)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="mp3d")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    trace = common.get_trace(args.app, seed=0, scale=args.scale)
    config = common.directory_config(64 * 1024, 16, 16)
    placement = common.get_placement("round_robin", trace, config)
    hints = read_exclusive_hints(trace, config.block_size)

    print(f"{args.app}: {len(trace)} shared references\n")
    print(f"{'model':<34}{'conv cycles':>14}{'basic cycles':>14}"
          f"{'reduction':>11}")
    print("-" * 73)

    rows = [
        (
            "closed-form (no contention)",
            lambda policy: TimingSimulator(
                machine(policy, config, placement)
            ).run(trace),
        ),
        (
            "event-driven (controller queueing)",
            lambda policy: EventDrivenSimulator(
                machine(policy, config, placement)
            ).run(trace),
        ),
        (
            "oracle prefetch-exclusive",
            lambda policy: PrefetchingTimingSimulator(
                machine(policy, config, placement), coverage=1.0
            ).run(trace, exclusive_hints=hints),
        ),
    ]
    for label, runner in rows:
        base = runner(CONVENTIONAL).execution_time
        adaptive = runner(BASIC).execution_time
        reduction = 100.0 * (base - adaptive) / base if base else 0.0
        print(f"{label:<34}{base:>14}{adaptive:>14}{reduction:>10.1f}%")

    print()
    print("prefetch-exclusive already removed the upgrade stalls, so the")
    print("adaptive protocol adds little on top of it — but it needed the")
    print("hint oracle; the adaptive protocol got its row with no software")
    print("support at all, and gains the most where controllers queue.")


if __name__ == "__main__":
    main()
