"""Unit tests for the Section 4.3 bus cost models."""

import pytest

from repro.common.stats import BusStats
from repro.snooping.costmodels import model1_cost, model2_cost, percent_reduction
from repro.snooping.protocols import AdaptiveSnoopingProtocol, MesiProtocol
from repro.snooping.states import SnoopState


def stats(rm=0, wm=0, inv=0, wb=0):
    s = BusStats()
    for _ in range(rm):
        s.record("read_miss")
    for _ in range(wm):
        s.record("write_miss")
    for _ in range(inv):
        s.record("invalidation")
    for _ in range(wb):
        s.record("writeback")
    return s


class TestModel1:
    def test_unit_cost(self):
        assert model1_cost(stats(rm=3, wm=2, inv=4, wb=1)) == 10

    def test_empty(self):
        assert model1_cost(BusStats()) == 0


class TestModel2:
    def test_conventional_invalidations_cost_one(self):
        s = stats(rm=3, wm=2, inv=4, wb=1)
        # misses cost 2, invalidations and writebacks cost 1
        assert model2_cost(s, MesiProtocol()) == 2 * 5 + 4 + 1

    def test_adaptive_invalidations_cost_two(self):
        s = stats(rm=3, wm=2, inv=4, wb=1)
        # misses and invalidations cost 2, writebacks 1
        assert model2_cost(s, AdaptiveSnoopingProtocol()) == 2 * 9 + 1

    def test_flag_drives_difference(self):
        s = stats(inv=10)
        assert model2_cost(s, AdaptiveSnoopingProtocol()) == 20
        assert model2_cost(s, MesiProtocol()) == 10


class TestPercentReduction:
    def test_basic(self):
        assert percent_reduction(200, 100) == pytest.approx(50.0)

    def test_negative_when_worse(self):
        assert percent_reduction(100, 110) == pytest.approx(-10.0)

    def test_zero_base(self):
        assert percent_reduction(0, 10) == 0.0


class TestSnoopStateProperties:
    def test_writable_states(self):
        writable = {s for s in SnoopState if s.is_writable}
        assert writable == {SnoopState.E, SnoopState.D, SnoopState.MC,
                            SnoopState.MD}

    def test_exclusive_states(self):
        exclusive = {s for s in SnoopState if s.is_exclusive}
        assert exclusive == {SnoopState.E, SnoopState.D, SnoopState.MC,
                             SnoopState.MD}

    def test_migratory_states(self):
        migratory = {s for s in SnoopState if s.is_migratory}
        assert migratory == {SnoopState.MC, SnoopState.MD}
