"""Exhaustive state-space verification of every protocol.

Each test explores the *entire* reachable global state space of a
protocol (single block, 3 processors, every read/write interleaving) and
asserts the safety invariants in every state, plus structural facts the
paper states about the protocols.
"""

import pytest

from repro.directory.policy import (
    AGGRESSIVE,
    BASIC,
    CONSERVATIVE,
    CONVENTIONAL,
    AdaptivePolicy,
)
from repro.snooping.protocols import (
    AdaptiveSnoopingProtocol,
    AlwaysMigrateProtocol,
    MesiProtocol,
)
from repro.snooping.update_protocols import (
    CompetitiveUpdateProtocol,
    WriteUpdateProtocol,
)
from repro.verification.space import (
    directory_states_seen,
    explore_directory,
    explore_snooping,
)


class TestSnoopingStateSpaces:
    def test_mesi_safe_and_minimal(self):
        result = explore_snooping(MesiProtocol)
        assert result.ok, result.violations
        assert result.line_states_seen() == {"E", "S", "D"}
        assert len(result.states) == 11

    def test_adaptive_safe_uses_all_six_states(self):
        result = explore_snooping(AdaptiveSnoopingProtocol)
        assert result.ok, result.violations
        assert result.line_states_seen() == {"E", "S", "S2", "D", "MC", "MD"}

    def test_initial_migratory_kills_the_exclusive_state(self):
        """Figure 1's remark, proven over the model: with
        migrate-on-read-miss as the initial policy, E has no
        in-transitions and is never reached."""
        result = explore_snooping(
            lambda: AdaptiveSnoopingProtocol(initial_migratory=True)
        )
        assert result.ok, result.violations
        assert "E" not in result.line_states_seen()
        assert result.line_states_seen() == {"S", "S2", "D", "MC", "MD"}

    def test_always_migrate_safe(self):
        result = explore_snooping(AlwaysMigrateProtocol)
        assert result.ok, result.violations
        # S2/MD never used by the non-adaptive protocol
        assert "S2" not in result.line_states_seen()
        assert "MD" not in result.line_states_seen()

    def test_write_update_safe(self):
        result = explore_snooping(WriteUpdateProtocol)
        assert result.ok, result.violations

    @pytest.mark.parametrize("threshold", [0, 1, 2])
    def test_competitive_update_safe(self, threshold):
        result = explore_snooping(
            lambda: CompetitiveUpdateProtocol(threshold)
        )
        assert result.ok, result.violations

    def test_transition_relation_total(self):
        """Every (state, processor, op) has exactly one successor."""
        result = explore_snooping(AdaptiveSnoopingProtocol)
        assert len(result.transitions) == len(result.states) * 3 * 2

    def test_four_processors(self):
        result = explore_snooping(AdaptiveSnoopingProtocol, num_procs=4)
        assert result.ok, result.violations


class TestDirectoryStateSpaces:
    @pytest.mark.parametrize(
        "policy", [CONVENTIONAL, CONSERVATIVE, BASIC, AGGRESSIVE],
        ids=lambda p: p.name,
    )
    def test_safe(self, policy):
        result = explore_directory(policy)
        assert result.ok, result.violations

    def test_conventional_never_reaches_migratory_states(self):
        result = explore_directory(CONVENTIONAL)
        assert "ONE_COPY_MIG" not in directory_states_seen(result)
        assert "UNCACHED_MIG" not in directory_states_seen(result)

    def test_adaptive_reaches_migratory_state(self):
        for policy in (CONSERVATIVE, BASIC, AGGRESSIVE):
            result = explore_directory(policy)
            assert "ONE_COPY_MIG" in directory_states_seen(result), policy

    def test_aggressive_never_returns_to_plain_uncached(self):
        """Without evictions the block never becomes uncached again, and
        the aggressive protocol starts migratory-uncached."""
        result = explore_directory(AGGRESSIVE)
        seen = directory_states_seen(result)
        assert "UNCACHED_MIG" in seen
        assert "UNCACHED" not in seen

    def test_hysteresis_expands_the_state_space(self):
        """Hysteresis multiplies states (the paper: "adding hysteresis
        ... would multiplicatively increase the number of states")."""
        basic = explore_directory(BASIC)
        conservative = explore_directory(CONSERVATIVE)
        deep = explore_directory(
            AdaptivePolicy("deep", migratory_threshold=3)
        )
        assert len(conservative.states) > len(basic.states)
        assert len(deep.states) > len(conservative.states)

    def test_streak_is_bounded(self):
        """The evidence streak cannot exceed the threshold (it promotes
        or resets), keeping directory entries finite."""
        for policy, bound in ((CONSERVATIVE, 2), (BASIC, 1)):
            result = explore_directory(policy)
            for state in result.states:
                assert state[2] <= bound, (policy.name, state)

    def test_four_processors(self):
        result = explore_directory(BASIC, num_procs=4)
        assert result.ok, result.violations


class TestDirectoryWithEvictions:
    """State spaces including replacement (notification/writeback) paths."""

    @pytest.mark.parametrize(
        "policy", [CONVENTIONAL, CONSERVATIVE, BASIC, AGGRESSIVE],
        ids=lambda p: p.name,
    )
    def test_safe_with_evictions(self, policy):
        result = explore_directory(policy, with_evictions=True)
        assert result.ok, result.violations

    def test_uncached_states_reachable_with_evictions(self):
        """Evicting the last copy reaches the UNCACHED* states that the
        eviction-free exploration cannot."""
        result = explore_directory(BASIC, with_evictions=True)
        seen = directory_states_seen(result)
        assert "UNCACHED" in seen
        assert "UNCACHED_MIG" in seen  # classification remembered

    def test_forgetful_policy_never_remembers(self):
        forgetful = AdaptivePolicy(
            "forgetful", migratory_threshold=1, remember_uncached=False
        )
        result = explore_directory(forgetful, with_evictions=True)
        assert result.ok, result.violations
        assert "UNCACHED_MIG" not in directory_states_seen(result)

    def test_eviction_expands_state_space(self):
        plain = explore_directory(BASIC)
        with_ev = explore_directory(BASIC, with_evictions=True)
        assert len(with_ev.states) > len(plain.states)


class TestSnoopingWithEvictions:
    """Silent replacement enlarges the snooping state space (e.g. a lone
    plain-S copy exists only after its S2 partner was dropped)."""

    @pytest.mark.parametrize(
        "factory",
        [MesiProtocol, AdaptiveSnoopingProtocol, AlwaysMigrateProtocol,
         WriteUpdateProtocol],
        ids=["mesi", "adaptive", "always-migrate", "write-update"],
    )
    def test_safe_with_evictions(self, factory):
        result = explore_snooping(factory, with_evictions=True)
        assert result.ok, result.violations

    def test_eviction_expands_adaptive_space(self):
        plain = explore_snooping(AdaptiveSnoopingProtocol)
        with_ev = explore_snooping(AdaptiveSnoopingProtocol,
                                   with_evictions=True)
        assert len(with_ev.states) > len(plain.states)

    def test_lone_plain_s_copy_reachable_only_via_eviction(self):
        def lone_s(result):
            # Snooping globals are (per-proc lines, protocol block state).
            return any(
                sum(1 for line in lines if line is not None) == 1
                and any(line and line[0] == "S" for line in lines)
                for lines, _pstate in result.states
            )

        assert not lone_s(explore_snooping(AdaptiveSnoopingProtocol))
        assert lone_s(
            explore_snooping(AdaptiveSnoopingProtocol, with_evictions=True)
        )
