"""Kernel fallback accounting (``repro_kernel_fallback_total``).

Every ``try_replay`` gate that routes a replay back to the legacy
packed loop must say *why*: the module counter
(:data:`repro.kernels.registry.fallbacks`) keyed ``(engine, reason)``,
the ambient telemetry counter labelled the same way, and a DEBUG log
line.  An engaged kernel replay must count nothing — fallbacks measure
envelope gaps, not traffic.
"""

import logging

import pytest

from repro.common.config import CacheConfig, MachineConfig
from repro.common.types import Access, Op
from repro.directory.policy import BASIC
from repro.kernels import registry
from repro.snooping.machine import BusMachine
from repro.snooping.protocols import MesiProtocol
from repro.system.machine import DirectoryMachine
from repro.trace.core import Trace

NUM_PROCS = 4


def _trace(num_procs: int = NUM_PROCS, blocks: int = 2) -> Trace:
    accesses = []
    for _ in range(4):
        for proc in range(num_procs):
            for block in range(blocks):
                accesses.append(Access(proc, Op.READ, 16 * block))
                accesses.append(Access(proc, Op.WRITE, 16 * block))
    return Trace(accesses, name="fallback-probe")


def _config(num_procs: int = NUM_PROCS,
            size_bytes: int | None = None) -> MachineConfig:
    return MachineConfig(
        num_procs=num_procs,
        cache=CacheConfig(size_bytes=size_bytes, block_size=16),
    )


@pytest.fixture(autouse=True)
def _fresh_counters():
    registry.engagements.clear()
    registry.fallbacks.clear()
    yield
    registry.engagements.clear()
    registry.fallbacks.clear()


class TestNoFalsePositives:
    def test_engaged_directory_replay_counts_nothing(self):
        machine = DirectoryMachine(_config(), BASIC)
        machine.run(_trace())
        assert registry.engagements["directory"] == 1
        assert not registry.fallbacks

    def test_engaged_bus_replay_counts_nothing(self):
        machine = BusMachine(_config(), MesiProtocol())
        machine.run(_trace())
        assert registry.engagements["bus"] == 1
        assert not registry.fallbacks

    def test_engaged_stream_replay_counts_nothing(self):
        from repro.kernels.streaming import replay_stream

        machine = DirectoryMachine(_config(), BASIC)
        replay_stream(machine, _trace().pack(), chunk=16)
        assert registry.engagements["directory-stream"] == 1
        assert not registry.fallbacks

    def test_stream_fallback_is_counted_under_its_own_engine(self):
        from repro.kernels.streaming import replay_stream

        machine = DirectoryMachine(_config(size_bytes=64), BASIC)
        replay_stream(machine, _trace(blocks=8).pack(), chunk=16)
        assert registry.fallbacks[("directory-stream", "finite-cache")] == 1
        # ... and the fallback replay itself still engaged the batch
        # kernel, so nothing else was counted against the envelope.
        assert registry.engagements["directory"] == 1


class TestReasons:
    def test_disabled_context_manager(self):
        with registry.disabled():
            DirectoryMachine(_config(), BASIC).run(_trace())
            BusMachine(_config(), MesiProtocol()).run(_trace())
        assert registry.fallbacks[("directory", "disabled")] == 1
        assert registry.fallbacks[("bus", "disabled")] == 1
        assert registry.engagements["directory"] == 0
        assert registry.engagements["bus"] == 0

    def test_no_kernel_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        DirectoryMachine(_config(), BASIC).run(_trace())
        assert registry.fallbacks[("directory", "disabled")] == 1

    def test_not_fresh_machine(self):
        machine = DirectoryMachine(_config(), BASIC)
        machine.run(_trace())
        machine.run(_trace())  # second replay on a warm machine
        assert registry.engagements["directory"] == 1
        assert registry.fallbacks[("directory", "not-fresh")] == 1

    def test_evictions_on_a_tiny_finite_cache_engage(self):
        # 4 blocks of cache, 8 distinct blocks touched: replacement is
        # observable, and the eviction-aware group walks replay it —
        # the replay must engage and count NO fallback (segment
        # restarts are not fallbacks).
        machine = DirectoryMachine(_config(size_bytes=64), BASIC)
        machine.run(_trace(blocks=8))
        assert registry.engagements["directory"] == 1
        assert not registry.fallbacks
        assert (machine.cache_stats.evictions_dirty
                + machine.cache_stats.evictions_clean) > 0

    def test_random_replacement_falls_back(self):
        config = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16,
                              replacement="random"),
        )
        DirectoryMachine(config, BASIC).run(_trace(blocks=8))
        assert registry.fallbacks[("directory", "replacement-random")] == 1
        BusMachine(config, MesiProtocol()).run(_trace(blocks=8))
        assert registry.fallbacks[("bus", "replacement-random")] == 1

    def test_random_replacement_without_conflicts_engages(self):
        # The RNG is only unobservable when a set can actually evict;
        # a conflict-free replay engages whatever the replacement says.
        config = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16,
                              replacement="random"),
        )
        DirectoryMachine(config, BASIC).run(_trace(blocks=2))
        assert registry.engagements["directory"] == 1
        assert not registry.fallbacks

    def test_silent_clean_evictions_fall_back(self):
        config = MachineConfig(
            num_procs=NUM_PROCS,
            cache=CacheConfig(size_bytes=64, block_size=16),
            eviction_notification=False,
        )
        DirectoryMachine(config, BASIC).run(_trace(blocks=8))
        assert registry.engagements["directory"] == 0
        assert registry.fallbacks[("directory", "eviction-silent")] == 1
        # Without conflicts the notification flag is moot: engage.
        registry.fallbacks.clear()
        registry.engagements.clear()
        DirectoryMachine(config, BASIC).run(_trace(blocks=2))
        assert registry.engagements["directory"] == 1
        assert not registry.fallbacks

    def test_bus_not_fresh(self):
        machine = BusMachine(_config(), MesiProtocol())
        machine.run(_trace())
        machine.run(_trace())
        assert registry.engagements["bus"] == 1
        assert registry.fallbacks[("bus", "not-fresh")] == 1

    def test_clear_resets_fallbacks(self):
        registry.record_fallback("directory", "probe")
        assert registry.fallbacks
        registry.clear()
        assert not registry.fallbacks


class TestSweepEnvelope:
    """Paper-sweep geometries stay on the kernel fast path.

    Table 2 (cache-size sweep) runs finite, evicting caches under
    best-static placement — exactly the configurations the
    eviction-aware walks brought inside the envelope.  The sweep must
    record *zero* eviction- or placement-shaped fallbacks.
    """

    def test_table2_style_sweep_records_no_envelope_fallbacks(self, monkeypatch):
        from repro.experiments import common, table2

        monkeypatch.setenv("REPRO_RESULT_CACHE", "off")
        common.clear_caches()
        table2.run(apps=("mp3d",), cache_sizes=(4096,),
                   scale=0.1, num_procs=8)
        common.clear_caches()
        assert registry.engagements["directory"] > 0
        reasons = {reason for (_engine, reason) in registry.fallbacks}
        assert not reasons & {"evictions", "placement",
                              "replacement-random", "eviction-silent"}, (
            dict(registry.fallbacks))


class TestTelemetryMirror:
    def test_counter_lands_in_the_active_session(self, tmp_path):
        from repro.telemetry import runtime

        with runtime.session(tmp_path) as sess:
            with registry.disabled():
                DirectoryMachine(_config(), BASIC).run(_trace())
        counter = sess.registry.counter(registry.FALLBACK_METRIC)
        assert counter.value(engine="directory", reason="disabled") == 1

    def test_free_noop_without_a_session(self):
        # Must not raise (and must still count module-side).
        registry.record_fallback("bus", "probe")
        assert registry.fallbacks[("bus", "probe")] == 1


class TestDebugLog:
    def test_reason_logged_at_debug(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.kernels"):
            registry.record_fallback("directory", "evictions")
        assert any("engine=directory" in message
                   and "reason=evictions" in message
                   for message in caplog.messages)

    def test_quiet_above_debug(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.kernels"):
            registry.record_fallback("directory", "evictions")
        assert not caplog.messages
